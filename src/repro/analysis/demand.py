"""Demand-driven analysis: query-rooted points-to without re-indexing.

The exhaustive pipeline (``repro index`` -> store -> ``repro query``)
answers every question from facts computed once, up front.  Its blind
spot is the edit loop: one changed line makes the store stale for the
changed procedure and all its transitive callers, and until a full
re-index runs the daemon either refuses or silently serves outdated
facts.  This module closes that gap with the *demand* mode the paper's
top-down PTF scheme naturally supports (and the Lazy Pointer Analysis /
GPG line of work makes explicit): a query needs only the PTFs on its
demand slice — callees for summaries, callers for invocation contexts.

Three layers:

:class:`DemandSlice` / :func:`compute_demand_slice`
    The slice over the *static* call graph, computed on the SCC
    condensation from :mod:`repro.analysis.scc`.  Because the analyzer
    is rooted at the entry procedure (``main``, §2.3), the set of
    procedures any sound answer can require is the entry shard's
    forward closure; a target outside that closure is never analyzed —
    by the exhaustive run either — so its answers are the empty facts,
    no analysis needed (the *unreachable fast path*).

:class:`DemandAnalysis` / :class:`DemandEngine`
    A lazily-run analysis plus a :class:`~repro.query.engine.QueryEngine`
    subclass that materializes per-procedure index records from it on
    first touch, through the *same* record builders
    (:func:`repro.query.store.procedure_record`) the indexer uses —
    which is what makes demand answers byte-identical to what a fresh
    ``repro index`` + store query would produce.  PTFs are memoized
    across queries at two levels: the analysis result itself (one
    fixpoint per source generation) and the engine's answer LRU.

:class:`DemandTier`
    The staleness-aware fallback wired into ``QueryEngine.query``:
    it probes the indexed sources (stat signature -> content hash ->
    :func:`repro.query.invalidate.compute_stale`), and when the stored
    fact a query depends on is stale, either answers from a fresh
    demand analysis (``mode: demand``) or — when disabled with
    ``--no-demand`` — lets the store answer through annotated
    ``stale: true``.  Probe state is memoized per source content, so a
    live daemon pays one lowering + one slice analysis per edit, then
    answers subsequent queries from cache.

Byte-identity has one process-level precondition: PTF uids (which the
stored alias tables embed) and memory-block uids are allocated from
process-global counters.  :func:`fresh_analysis_state` restarts both,
and the tier calls it before every re-lowering; this is safe because
location sets compare their base blocks by object identity, never by
uid, so objects from different analysis generations cannot be confused
(see :mod:`repro.memory.locset`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import threading
import time
from dataclasses import dataclass
from typing import Optional

from ..query.engine import QueryEngine
from ..query.store import STORE_FORMAT, pointed_by_index, procedure_record
from .results import AnalysisResult, run_analysis
from .scc import address_taken_procs, build_plan, static_call_graph

__all__ = [
    "DemandAnalysis",
    "DemandEngine",
    "DemandSlice",
    "DemandTier",
    "compute_demand_slice",
    "demand_call_graph",
    "fresh_analysis_state",
    "options_from_store",
]


def fresh_analysis_state() -> None:
    """Restart the process-global uid counters a stored fact embeds.

    Must run *before* lowering the program it protects (lowering
    allocates memory blocks).  Never call it between analyses that
    share memory blocks or PTFs; across generations it is safe because
    block identity is object identity everywhere facts are compared.
    """
    from ..memory.pointsto import reset_interning
    from .ptf import reset_ptf_counter

    reset_interning()
    reset_ptf_counter()


def options_from_store(store: dict):
    """Reconstruct :class:`~repro.analysis.engine.AnalyzerOptions` from
    a store's recorded non-default option fields — the demand analysis
    must run under the same budgets/policies the store was built with,
    or its facts could legitimately differ."""
    from .engine import AnalyzerOptions

    recorded = store.get("options") or {}
    known = {f.name for f in dataclasses.fields(AnalyzerOptions)}
    return AnalyzerOptions(
        **{k: v for k, v in recorded.items() if k in known}
    )


# ---------------------------------------------------------------------------
# demand slices over the SCC condensation
# ---------------------------------------------------------------------------


def demand_call_graph(program) -> dict:
    """:func:`static_call_graph` widened for external higher-order calls.

    The libc models invoke their callback arguments (qsort, bsearch,
    atexit, signal), so a procedure whose address escapes can be
    analyzed even though no *internal* call site names it — which the
    static graph, internal-edges-only, cannot see.  Any call that can
    reach an external therefore gets edges to every address-taken
    procedure.  Over-approximating reachability here is safe: a
    "reachable" procedure the fixpoint never actually visits has no
    PTFs, and its records are the same empty facts the exhaustive store
    records for it.
    """
    from .guards import _direct_targets

    graph = static_call_graph(program)
    taken = address_taken_procs(program)
    internal = set(program.procedures)
    for name, proc in program.procedures.items():
        for node in proc.call_nodes():
            direct = _direct_targets(node)
            if direct and direct - internal:
                graph[name] = graph[name] | taken
                break
    return graph


@dataclass(frozen=True)
class DemandSlice:
    """The procedures a query rooted at ``target`` can depend on.

    ``procs`` is the analysis slice: the forward closure of the entry
    shard on the SCC condensation — exactly the set the top-down
    analyzer evaluates, and therefore the set whose PTFs the answer is
    built from.  ``context_procs`` is the subset that supplies the
    target's invocation contexts (its transitive callers within the
    slice).  ``reachable`` is False when the target lies outside the
    entry's closure: no context ever invokes it, the exhaustive run
    never analyzes it, and its demand answers are the empty facts.
    """

    target: str
    entry: str
    reachable: bool
    procs: tuple
    context_procs: tuple
    shards: int
    waves: int


def compute_demand_slice(
    program, target: str, entry: str = "main", plan=None
) -> DemandSlice:
    """Compute the demand slice for ``target`` on the static call graph.

    ``plan`` is an optional precomputed :class:`~repro.analysis.scc.ShardPlan`
    for the program's :func:`demand_call_graph` (callers repeating
    queries should build it once).  That graph over-approximates the
    analysis-resolved one — indirect calls and external higher-order
    calls widen to every address-taken procedure — so "unreachable
    here" implies "never analyzed".
    """
    if plan is None:
        plan = build_plan(demand_call_graph(program))
    shard_of: dict[str, int] = {}
    for i, shard in enumerate(plan.shards):
        for name in shard.procs:
            shard_of[name] = i
    if entry not in shard_of or target not in shard_of:
        return DemandSlice(
            target=target, entry=entry, reachable=False,
            procs=(), context_procs=(), shards=0, waves=0,
        )
    # forward closure of the entry shard (deps point caller -> callee)
    closure = {shard_of[entry]}
    frontier = [shard_of[entry]]
    while frontier:
        nxt = []
        for i in frontier:
            for dep in plan.deps.get(i, ()):
                if dep not in closure:
                    closure.add(dep)
                    nxt.append(dep)
        frontier = nxt
    if shard_of[target] not in closure:
        return DemandSlice(
            target=target, entry=entry, reachable=False,
            procs=(), context_procs=(), shards=0, waves=0,
        )
    procs = sorted(
        name for i in closure for name in plan.shards[i].procs
    )
    # context shards: ancestors of the target within the closure
    rdeps: dict[int, set] = {}
    for i, deps in plan.deps.items():
        for dep in deps:
            rdeps.setdefault(dep, set()).add(i)
    contexts = {shard_of[target]}
    frontier = [shard_of[target]]
    while frontier:
        nxt = []
        for i in frontier:
            for caller in rdeps.get(i, ()):
                if caller in closure and caller not in contexts:
                    contexts.add(caller)
                    nxt.append(caller)
        frontier = nxt
    context_procs = sorted(
        name for i in contexts for name in plan.shards[i].procs
    )
    waves = sum(
        1 for wave in plan.waves if any(i in closure for i in wave)
    )
    return DemandSlice(
        target=target,
        entry=entry,
        reachable=True,
        procs=tuple(procs),
        context_procs=tuple(context_procs),
        shards=len(closure),
        waves=waves,
    )


# ---------------------------------------------------------------------------
# lazily-run analysis + record materialization
# ---------------------------------------------------------------------------


class DemandAnalysis:
    """One program, analyzed at most once, with per-procedure index
    records materialized on demand.

    The unreachable fast path never runs the fixpoint: a target outside
    the entry closure gets its records from a *null result* (an
    un-run analyzer wrapped in :class:`AnalysisResult` — empty PTF
    tables, exactly what the exhaustive run records for procedures it
    never reached).  Thread-safe; all laziness is guarded by one
    re-entrant lock.
    """

    def __init__(
        self, program, options=None, entry: str = "main", tracer=None
    ) -> None:
        self.program = program
        self.options = options
        self.entry = entry
        self.trace = tracer
        self._lock = threading.RLock()
        self._plan = None
        self._slices: dict[str, DemandSlice] = {}
        self._records: dict[str, dict] = {}
        self._result: Optional[AnalysisResult] = None
        self._null: Optional[AnalysisResult] = None
        self._pointed_by: Optional[dict] = None
        self._callsites: Optional[list] = None
        self._call_graph: Optional[dict] = None
        #: fixpoint runs (0 or 1 per generation) and their wall time
        self.analyses = 0
        self.analysis_seconds = 0.0

    # -- slices ------------------------------------------------------------

    def plan(self):
        with self._lock:
            if self._plan is None:
                self._plan = build_plan(demand_call_graph(self.program))
            return self._plan

    def slice_for(self, target: str) -> DemandSlice:
        with self._lock:
            sl = self._slices.get(target)
            if sl is None:
                sl = compute_demand_slice(
                    self.program, target, entry=self.entry, plan=self.plan()
                )
                self._slices[target] = sl
                if self.trace is not None:
                    self.trace.instant(
                        "demand.slice",
                        "demand",
                        target=target,
                        entry=self.entry,
                        reachable=sl.reachable,
                        procs=len(sl.procs),
                        contexts=len(sl.context_procs),
                        shards=sl.shards,
                    )
            return sl

    def slice_sizes(self) -> dict:
        """target -> slice size, for every slice computed so far."""
        with self._lock:
            return {
                target: len(sl.procs)
                for target, sl in sorted(self._slices.items())
            }

    # -- results -----------------------------------------------------------

    def run_result(self) -> AnalysisResult:
        """The analyzed result (one fixpoint per generation, memoized)."""
        with self._lock:
            if self._result is None:
                started = time.perf_counter()
                self._result = run_analysis(self.program, self.options)
                self.analysis_seconds += time.perf_counter() - started
                self.analyses += 1
                if self.trace is not None:
                    entry_slice = self.slice_for(self.entry)
                    self.trace.instant(
                        "demand.analyze",
                        "demand",
                        entry=self.entry,
                        procs=len(entry_slice.procs),
                        seconds=round(self.analysis_seconds, 6),
                    )
            return self._result

    def _null_result(self) -> AnalysisResult:
        """Empty facts without running anything: an un-run analyzer has
        no PTFs, and every fact accessor is empty-safe over that."""
        with self._lock:
            if self._null is None:
                from .engine import Analyzer

                self._null = AnalysisResult(Analyzer(self.program, self.options))
            return self._null

    def _program_result(self) -> AnalysisResult:
        if self.entry in self.program.procedures:
            return self.run_result()
        return self._null_result()

    def degraded(self) -> bool:
        """True once an actually-run analysis degraded (guards tripped);
        an un-run analysis is not degraded — it is merely lazy."""
        with self._lock:
            if self._result is None:
                return False
            return not self._result.degradation.ok

    # -- index records -----------------------------------------------------

    def record(self, proc: str) -> dict:
        """The per-procedure index record, built through the same
        builder as ``repro index`` (:func:`procedure_record`)."""
        with self._lock:
            rec = self._records.get(proc)
            if rec is None:
                sl = self.slice_for(proc)
                result = self.run_result() if sl.reachable else self._null_result()
                rec = procedure_record(result, proc)
                self._records[proc] = rec
            return rec

    def pointed_by_table(self) -> dict:
        with self._lock:
            if self._pointed_by is None:
                procedures = {
                    name: self.record(name)
                    for name in sorted(self.program.procedures)
                }
                self._pointed_by = pointed_by_index(procedures)
            return self._pointed_by

    def callsite_table(self) -> list:
        with self._lock:
            if self._callsites is None:
                self._callsites = self._program_result().callsites()
            return self._callsites

    def call_graph_table(self) -> dict:
        with self._lock:
            if self._call_graph is None:
                self._call_graph = {
                    caller: sorted(callees)
                    for caller, callees in sorted(
                        self._program_result().call_graph().items()
                    )
                }
            return self._call_graph


class DemandEngine(QueryEngine):
    """A :class:`QueryEngine` whose index is a live demand analysis.

    It shares every code path that shapes an answer — dispatch,
    caching, alias arithmetic, explain-command rendering — with the
    store-backed engine, overriding only the accessor seams that read
    the index.  Records come from :meth:`DemandAnalysis.record`, so an
    answer's bytes equal what the same query against a freshly indexed
    store of the same sources would return.
    """

    def __init__(
        self,
        analysis: DemandAnalysis,
        sources: Optional[list] = None,
        metrics=None,
        tracer=None,
        cache_size: int = 256,
        program_name: Optional[str] = None,
    ) -> None:
        synthetic = {
            "format": STORE_FORMAT,
            "program": program_name or analysis.program.name,
            "sources": [{"path": str(p)} for p in (sources or [])],
            "snapshot": {"degradation": {"ok": True}},
            "call_graph": {},
            "ir": {},
            "index": {"procedures": {}, "pointed_by": {}, "callsites": []},
        }
        super().__init__(
            synthetic, metrics=metrics, tracer=tracer, cache_size=cache_size
        )
        self.analysis = analysis

    @property
    def degraded(self) -> bool:
        return self.analysis.degraded()

    def _proc_record_or_none(self, name: str) -> Optional[dict]:
        if name not in self.analysis.program.procedures:
            return None
        return self.analysis.record(name)

    def _has_proc(self, name: str) -> bool:
        return name in self.analysis.program.procedures

    def _pointed_by_table(self) -> dict:
        return self.analysis.pointed_by_table()

    def _callsite_table(self) -> list:
        return self.analysis.callsite_table()

    def _graph(self) -> dict:
        return self.analysis.call_graph_table()


# ---------------------------------------------------------------------------
# the fallback tier
# ---------------------------------------------------------------------------

#: ops whose answers depend on program-wide structure (the call graph
#: or the reverse points-to index): any staleness at all routes them
_PROGRAM_WIDE_OPS = frozenset(("pointed_by", "reaches", "callees", "callers"))


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


class DemandTier:
    """Staleness probe + demand fallback for one store's sources.

    Attached to a :class:`QueryEngine` (its ``demand`` slot), consulted
    on every query under the engine lock.  ``route`` classifies the
    request: ``None`` (store fresh for this fact — serve normally),
    ``"stale"`` (serve the store answer annotated ``stale: true``), or
    ``"demand"`` (answer from the demand engine).  A tier with
    ``enabled=False`` still probes — that is what powers the honest
    ``stale: true`` annotation under ``--no-demand``.

    The probe is cheap by design: a stat signature guards a content
    hash guards a re-lowering.  Unchanged files cost ``len(sources)``
    stats per query; an edit costs one hash pass, one lowering, one
    :func:`compute_stale`, and (on the first routed query) one slice
    analysis — all memoized until the sources move again.  Stores
    without recorded sources (in-memory tests, ``--stdin`` pipelines)
    are never probed and never stale.

    Probe failures (vanished files, parse errors mid-edit) never break
    serving: the tier degrades to "everything stale, no demand engine",
    so the store keeps answering with ``stale: true`` until the sources
    parse again.
    """

    def __init__(
        self,
        store: dict,
        enabled: bool = True,
        options=None,
        entry: str = "main",
        tracer=None,
        cache_size: int = 256,
    ) -> None:
        self.store = store
        self.enabled = enabled
        self.entry = entry
        self.trace = tracer
        self.cache_size = cache_size
        self.options = (
            options if options is not None else options_from_store(store)
        )
        records = store.get("sources") or []
        self.paths = [rec.get("path") for rec in records if rec.get("path")]
        self._stored_digests = tuple(rec.get("sha256") for rec in records)
        self._lock = threading.RLock()
        self._sig = None
        self._content = None
        self._verdict = "fresh"
        self._stale: frozenset = frozenset()
        self._globals_changed = False
        self._any_stale = False
        self._engine: Optional[DemandEngine] = None
        self._error: Optional[str] = None
        # cumulative counters (carried across reloads by :meth:`for_store`)
        self.fallbacks = 0
        self.stale_served = 0
        self.probes = 0

    # -- probing -----------------------------------------------------------

    def _signature(self):
        sig = []
        for path in self.paths:
            st = os.stat(path)
            sig.append((path, st.st_mtime_ns, st.st_size))
        return tuple(sig)

    def probe(self) -> str:
        """Re-check the sources; returns ``"fresh"`` or ``"stale"``
        (the error state reports as stale — the store provably no
        longer matches the sources)."""
        with self._lock:
            self.probes += 1
            if not self.paths:
                return "fresh"
            try:
                sig = self._signature()
            except OSError as exc:
                return self._enter_error(f"cannot stat sources: {exc}")
            if sig == self._sig:
                return self._verdict
            try:
                content = tuple(_sha256_file(path) for path in self.paths)
            except OSError as exc:
                return self._enter_error(f"cannot hash sources: {exc}")
            self._sig = sig
            if content == self._content:
                return self._verdict  # touched but not changed since last look
            self._content = content
            if content == self._stored_digests:
                # sources returned to the indexed content: store valid again
                self._verdict = "fresh"
                self._stale = frozenset()
                self._globals_changed = False
                self._any_stale = False
                self._engine = None
                self._error = None
                return self._verdict
            return self._refresh()

    def _refresh(self) -> str:
        """Sources changed: lower them, diff digests, arm the engine."""
        from ..frontend.parser import load_project_files
        from ..query.invalidate import compute_stale

        fresh_analysis_state()
        try:
            program = load_project_files(
                list(self.paths), name=self.store.get("program", "<project>")
            )
        except Exception as exc:  # parse errors mid-edit must not kill serving
            return self._enter_error(f"sources no longer lower: {exc}")
        report = compute_stale(self.store, program)
        self._stale = frozenset(report.stale) | frozenset(report.removed)
        self._globals_changed = report.globals_changed
        self._any_stale = not report.up_to_date
        self._error = None
        self._verdict = "stale" if self._any_stale else "fresh"
        self._engine = DemandEngine(
            DemandAnalysis(
                program,
                options=self.options,
                entry=self.entry,
                tracer=self.trace,
            ),
            sources=self.paths,
            tracer=self.trace,
            cache_size=self.cache_size,
            program_name=self.store.get("program"),
        )
        if self.trace is not None:
            self.trace.instant(
                "demand.stale",
                "demand",
                stale=len(report.stale),
                changed=len(report.changed),
                added=len(report.added),
                removed=len(report.removed),
                globals_changed=report.globals_changed,
            )
        return self._verdict

    def _enter_error(self, message: str) -> str:
        stored = (self.store.get("ir") or {}).get("procedures") or {}
        self._stale = frozenset(stored)
        self._globals_changed = True
        self._any_stale = True
        self._engine = None
        self._error = message
        self._verdict = "stale"
        return self._verdict

    # -- routing -----------------------------------------------------------

    def route(self, request: dict, engine) -> Optional[str]:
        """Classify one request; must never raise (a broken probe must
        not take down store answers)."""
        try:
            verdict = self.probe()
        except Exception:
            return None
        if verdict == "fresh":
            return None
        op = request.get("op")
        if op in _PROGRAM_WIDE_OPS:
            affected = self._any_stale
        else:
            proc = request.get("proc", "main")
            affected = (
                self._globals_changed
                or proc in self._stale
                # a brand-new procedure is absent from the store's
                # tables entirely; stale covers added procs already,
                # but guard the direct probe too
                or (self._engine is not None and not engine._has_proc(proc)
                    and self._engine._has_proc(proc))
            )
        if not affected:
            return None
        if self.enabled and self._engine is not None:
            return "demand"
        with self._lock:
            self.stale_served += 1
        return "stale"

    def answer(self, request: dict, budget=None, info: Optional[dict] = None) -> dict:
        """Answer a routed request from the demand engine."""
        with self._lock:
            self.fallbacks += 1
            engine = self._engine
        if self.trace is not None:
            self.trace.instant(
                "demand.fallback",
                "demand",
                op=request.get("op", ""),
                proc=request.get("proc", request.get("name", "")),
            )
        answer = engine.query(request, budget=budget, info=info)
        if info is not None:
            info["mode"] = "demand"
            if engine.degraded:
                info["demand_degraded"] = True
        return answer

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            out = {
                "enabled": self.enabled,
                "verdict": self._verdict,
                "probes": self.probes,
                "fallbacks": self.fallbacks,
                "stale_served": self.stale_served,
                "stale_procs": len(self._stale),
                "globals_changed": self._globals_changed,
            }
            if self._error:
                out["error"] = self._error
            engine = self._engine
        if engine is not None:
            analysis = engine.analysis
            out["analyses"] = analysis.analyses
            out["analysis_seconds"] = round(analysis.analysis_seconds, 6)
            out["slices"] = analysis.slice_sizes()
        return out

    def for_store(self, store: dict) -> "DemandTier":
        """A fresh tier over a hot-swapped store, carrying the
        cumulative counters (the daemon's reload path)."""
        tier = DemandTier(
            store,
            enabled=self.enabled,
            entry=self.entry,
            tracer=self.trace,
            cache_size=self.cache_size,
        )
        with self._lock:
            tier.fallbacks = self.fallbacks
            tier.stale_served = self.stale_served
            tier.probes = self.probes
        return tier
