"""Baseline analyses the paper compares against (§6–7)."""

from .andersen import AndersenAnalysis, andersen_analyze
from .invocation import InvocationGraph, build_invocation_graph, syntactic_call_graph
from .steensgaard import SteensgaardAnalysis, steensgaard_analyze

__all__ = [
    "AndersenAnalysis",
    "andersen_analyze",
    "SteensgaardAnalysis",
    "steensgaard_analyze",
    "InvocationGraph",
    "build_invocation_graph",
    "syntactic_call_graph",
]
