"""Steensgaard-style baseline: unification-based, near-linear points-to.

The fastest-but-coarsest point in the design space: points-to relations are
*equivalence classes* maintained with union-find, so ``p = q`` merges the
things p and q point to.  Block-granular (field-insensitive), flow- and
context-insensitive.  Used in the precision-spectrum benchmarks as the
lower bound on precision / upper bound on speed.
"""

from __future__ import annotations

from typing import Optional

from ..ir.expr import (
    AddressTerm,
    AdjustTerm,
    ContentsTerm,
    DerefLoc,
    GlobalSymbol,
    LocalSymbol,
    LocExpr,
    ProcSymbol,
    StringSymbol,
    Symbol,
    SymbolLoc,
    UnknownTerm,
    ValueExpr,
)
from ..ir.nodes import AssignNode, CallNode
from ..ir.program import Procedure, Program
from ..memory.blocks import HeapBlock, MemoryBlock, ProcedureBlock

__all__ = ["SteensgaardAnalysis", "steensgaard_analyze"]


class _Cell:
    """A union-find node; ``pointee`` is the cell this class points to."""

    __slots__ = ("parent", "rank", "pointee", "blocks", "uid")

    _counter = 0

    def __init__(self) -> None:
        self.parent: Optional["_Cell"] = None
        self.rank = 0
        self.pointee: Optional["_Cell"] = None
        self.blocks: set[MemoryBlock] = set()
        _Cell._counter += 1
        self.uid = _Cell._counter

    def find(self) -> "_Cell":
        root = self
        while root.parent is not None:
            root = root.parent
        # path compression
        node = self
        while node.parent is not None:
            nxt = node.parent
            node.parent = root
            node = nxt
        return root


class SteensgaardAnalysis:
    """Unification-based points-to over memory blocks."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._cells: dict[int, _Cell] = {}  # block uid -> cell
        self._blocks: dict[int, MemoryBlock] = {}
        self._heap: dict[str, HeapBlock] = {}

    # -- union-find --------------------------------------------------------

    def cell_of(self, block: MemoryBlock) -> _Cell:
        cell = self._cells.get(block.uid)
        if cell is None:
            cell = _Cell()
            cell.blocks.add(block)
            self._cells[block.uid] = cell
            self._blocks[block.uid] = block
        return cell.find()

    def pointee_of(self, cell: _Cell) -> _Cell:
        cell = cell.find()
        if cell.pointee is None:
            cell.pointee = _Cell()
        return cell.pointee.find()

    def union(self, a: _Cell, b: _Cell) -> _Cell:
        a, b = a.find(), b.find()
        if a is b:
            return a
        if a.rank < b.rank:
            a, b = b, a
        b.parent = a
        if a.rank == b.rank:
            a.rank += 1
        a.blocks |= b.blocks
        b.blocks = set()
        # pointees unify recursively (the Steensgaard join)
        pa, pb = a.pointee, b.pointee
        a.pointee = pa if pa is not None else pb
        if pa is not None and pb is not None and pa.find() is not pb.find():
            a.pointee = self.union(pa, pb)
        return a

    def join(self, a: _Cell, b: _Cell) -> _Cell:
        return self.union(a, b)

    # -- driver -------------------------------------------------------------

    def run(self) -> "SteensgaardAnalysis":
        self.program.finalize()
        for init in self.program.global_inits:
            self._assign_cells(self._loc_cell(None, init.dst), self._value_cell(None, init.src))
        # single pass suffices for unification; one more to catch call order
        for _ in range(2):
            for proc in self.program.procedures.values():
                for node in proc.nodes():
                    if isinstance(node, AssignNode) and node.dst is not None:
                        self._assign_cells(
                            self._loc_cell(proc, node.dst),
                            self._value_cell(proc, node.src),
                        )
                    elif isinstance(node, CallNode):
                        self._do_call(proc, node)
        return self

    def _assign_cells(self, dst: Optional[_Cell], src: Optional[_Cell]) -> None:
        """``dst-storage = src-targets``: unify pts(dst) with the targets."""
        if dst is None or src is None:
            return
        self.union(self.pointee_of(dst), src)

    # -- evaluation to cells -------------------------------------------------

    def _block(self, proc: Optional[Procedure], symbol: Symbol) -> MemoryBlock:
        if isinstance(symbol, LocalSymbol):
            assert proc is not None
            return proc.local_block(symbol)
        if isinstance(symbol, GlobalSymbol):
            return self.program.add_global(symbol)
        if isinstance(symbol, ProcSymbol):
            return self.program.proc_block(symbol.name)
        if isinstance(symbol, StringSymbol):
            return self.program.string_block(symbol)
        raise TypeError(symbol)

    def _loc_cell(self, proc: Optional[Procedure], loc: LocExpr) -> Optional[_Cell]:
        """The *storage class* of a location expression: the union-find
        class containing the blocks it may name."""
        if isinstance(loc, SymbolLoc):
            return self.cell_of(self._block(proc, loc.symbol))
        assert isinstance(loc, DerefLoc)
        ptr_targets = self._value_cell(proc, loc.pointer)
        return ptr_targets  # the blocks *p names are exactly p's targets

    def _value_cell(self, proc: Optional[Procedure], value: ValueExpr) -> Optional[_Cell]:
        """The *targets class* of a value: the class of blocks the value may
        point to (None when the value carries no pointers)."""
        result: Optional[_Cell] = None

        def merge(c: Optional[_Cell]) -> None:
            nonlocal result
            if c is None:
                return
            result = c if result is None else self.union(result, c)

        for term in value.terms:
            if isinstance(term, UnknownTerm):
                continue
            if isinstance(term, AddressTerm):
                # the value points at the location itself
                merge(self._loc_cell(proc, term.loc))
            elif isinstance(term, ContentsTerm):
                storage = self._loc_cell(proc, term.loc)
                if storage is not None:
                    merge(self.pointee_of(storage))
            elif isinstance(term, AdjustTerm):
                merge(self._value_cell(proc, term.value))
        return result

    def _do_call(self, proc: Procedure, node: CallNode) -> None:
        names: set[str] = set()
        for term in node.target.terms:
            if isinstance(term, AddressTerm) and isinstance(term.loc, SymbolLoc):
                if isinstance(term.loc.symbol, ProcSymbol):
                    names.add(term.loc.symbol.name)
        # indirect call: unify with every function whose address is taken
        # (classical Steensgaard treatment, very coarse)
        if not names:
            names = {
                p for p in self.program.procedures
                if self.program.proc_blocks.get(p) is not None
            }
        for name in names:
            callee = self.program.procedures.get(name)
            if callee is None:
                self._do_library(proc, node, name)
                continue
            for i, formal in enumerate(callee.formals):
                if i >= len(node.args):
                    continue
                val = self._value_cell(proc, node.args[i])
                block = callee.local_block(formal)
                if val is not None:
                    self.union(self.pointee_of(self.cell_of(block)), val)
            if node.dst is not None:
                ret = self.cell_of(callee.return_block)
                dst = self._loc_cell(proc, node.dst)
                if dst is not None:
                    self.union(self.pointee_of(dst), self.pointee_of(ret))

    def _do_library(self, proc: Procedure, node: CallNode, name: str) -> None:
        if name in ("malloc", "calloc", "realloc", "strdup", "fopen") and node.dst is not None:
            block = self._heap.get(node.site)
            if block is None:
                block = HeapBlock(node.site)
                self._heap[node.site] = block
            dst = self._loc_cell(proc, node.dst)
            if dst is not None:
                self.union(self.pointee_of(dst), self.cell_of(block))

    # -- queries ------------------------------------------------------------

    def points_to_names(self, proc_name: str, var: str) -> set[str]:
        proc = self.program.procedures[proc_name]
        symbol = proc.locals.get(var)
        if symbol is not None:
            block = proc.local_block(symbol)
        elif var in self.program.globals:
            block = self.program.global_block(var)
        else:
            return set()
        cell = self.cell_of(block)
        if cell.pointee is None:
            return set()
        return {
            b.name.split("::")[-1] for b in cell.pointee.find().blocks
        }

    def may_alias(self, proc_name: str, a: str, b: str) -> bool:
        proc = self.program.procedures[proc_name]
        cells = []
        for var in (a, b):
            symbol = proc.locals.get(var)
            if symbol is not None:
                block = proc.local_block(symbol)
            elif var in self.program.globals:
                block = self.program.global_block(var)
            else:
                return False
            cells.append(self.pointee_of(self.cell_of(block)))
        return cells[0].find() is cells[1].find()

    def class_count(self) -> int:
        roots = {c.find().uid for c in self._cells.values()}
        return len(roots)


def steensgaard_analyze(program: Program) -> SteensgaardAnalysis:
    """Run the unification-based baseline on ``program``."""
    return SteensgaardAnalysis(program).run()
