"""Andersen-style baseline: flow-insensitive, context-insensitive,
inclusion-based points-to analysis over the same IR and location sets.

This is the comparison point the paper's context-sensitive analysis is
measured against: one global points-to map, no strong updates, no calling
contexts — values from every call site merge into the callee's formals, and
summaries smear back to every caller (the *unrealizable paths* problem,
§1).  Precision comparisons in the benchmarks use this baseline.
"""

from __future__ import annotations

from typing import Optional

from ..frontend.ctypes_model import WORD_SIZE
from ..ir.expr import (
    AddressTerm,
    AdjustTerm,
    ContentsTerm,
    DerefLoc,
    GlobalSymbol,
    LocalSymbol,
    LocExpr,
    ProcSymbol,
    StringSymbol,
    Symbol,
    SymbolLoc,
    UnknownTerm,
    ValueExpr,
)
from ..ir.nodes import AssignNode, CallNode
from ..ir.program import Procedure, Program
from ..memory.blocks import HeapBlock, MemoryBlock, ProcedureBlock
from ..memory.locset import LocationSet

__all__ = ["AndersenAnalysis", "andersen_analyze"]

EMPTY: frozenset = frozenset()


class AndersenAnalysis:
    """One global inclusion-based points-to solution."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: the single flow-insensitive points-to map
        self.points_to: dict[LocationSet, set[LocationSet]] = {}
        self._heap: dict[str, HeapBlock] = {}
        self._changed = False
        self.iterations = 0

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self) -> "AndersenAnalysis":
        self.program.finalize()
        self._seed_global_inits()
        for _ in range(1000):
            self._changed = False
            self.iterations += 1
            for proc in self.program.procedures.values():
                for node in proc.nodes():
                    if isinstance(node, AssignNode):
                        self._do_assign(proc, node)
                    elif isinstance(node, CallNode):
                        self._do_call(proc, node)
            if not self._changed:
                break
        return self

    # ------------------------------------------------------------------
    # environment
    # ------------------------------------------------------------------

    def _block(self, proc: Optional[Procedure], symbol: Symbol) -> MemoryBlock:
        if isinstance(symbol, LocalSymbol):
            assert proc is not None
            owner = self.program.procedures.get(symbol.proc_name, proc)
            return owner.local_block(symbol)
        if isinstance(symbol, GlobalSymbol):
            return self.program.add_global(symbol)
        if isinstance(symbol, ProcSymbol):
            return self.program.proc_block(symbol.name)
        if isinstance(symbol, StringSymbol):
            return self.program.string_block(symbol)
        raise TypeError(symbol)

    def _seed_global_inits(self) -> None:
        for init in self.program.global_inits:
            dsts = self._eval_loc(None, init.dst)
            vals = self._eval_value(None, init.src)
            for d in dsts:
                self._add(d, vals)

    # ------------------------------------------------------------------
    # transfer
    # ------------------------------------------------------------------

    def _add(self, loc: LocationSet, values: frozenset) -> None:
        if not values:
            return
        cell = self.points_to.setdefault(loc, set())
        before = len(cell)
        cell |= values
        if len(cell) != before:
            self._changed = True

    def _lookup(self, loc: LocationSet, width: int = WORD_SIZE) -> frozenset:
        out: set[LocationSet] = set()
        for key, vals in self.points_to.items():
            if key.base is loc.base and loc.overlaps(key, width=width, other_width=1):
                out |= vals
        return frozenset(out)

    def _eval_loc(self, proc: Optional[Procedure], loc: LocExpr) -> list[LocationSet]:
        if isinstance(loc, SymbolLoc):
            block = self._block(proc, loc.symbol)
            return [LocationSet(block, loc.offset, loc.stride)]
        assert isinstance(loc, DerefLoc)
        out = []
        for v in self._eval_value(proc, loc.pointer):
            if loc.blur:
                out.append(v.blurred())
            else:
                t = v.with_offset(loc.offset)
                if loc.stride:
                    t = t.with_stride(loc.stride)
                out.append(t)
        return out

    def _eval_value(self, proc: Optional[Procedure], value: ValueExpr) -> frozenset:
        result: set[LocationSet] = set()
        for term in value.terms:
            if isinstance(term, UnknownTerm):
                continue
            if isinstance(term, AddressTerm):
                result.update(self._eval_loc(proc, term.loc))
            elif isinstance(term, ContentsTerm):
                for loc in self._eval_loc(proc, term.loc):
                    result |= self._lookup(loc, max(term.size, 1))
            elif isinstance(term, AdjustTerm):
                for v in self._eval_value(proc, term.value):
                    if term.blur:
                        result.add(v.blurred())
                    else:
                        t = v.with_offset(term.offset)
                        if term.stride:
                            t = t.with_stride(term.stride)
                        result.add(t)
        return frozenset(result)

    def _do_assign(self, proc: Procedure, node: AssignNode) -> None:
        if node.dst is None:
            return
        vals = self._eval_value(proc, node.src)
        if not vals:
            return
        for dst in self._eval_loc(proc, node.dst):
            self._add(dst, vals)

    # ------------------------------------------------------------------
    # calls (context-insensitive: all sites merge)
    # ------------------------------------------------------------------

    def _do_call(self, proc: Procedure, node: CallNode) -> None:
        targets = self._call_targets(proc, node)
        for name in targets:
            callee = self.program.procedures.get(name)
            if callee is not None:
                self._bind_call(proc, node, callee)
            else:
                self._do_library(proc, node, name)

    def _call_targets(self, proc: Procedure, node: CallNode) -> set[str]:
        out: set[str] = set()
        for v in self._eval_value(proc, node.target):
            if isinstance(v.base, ProcedureBlock):
                out.add(v.base.proc_name)
        return out

    def _bind_call(self, proc: Procedure, node: CallNode, callee: Procedure) -> None:
        for i, formal in enumerate(callee.formals):
            if i >= len(node.args):
                continue
            vals = self._eval_value(proc, node.args[i])
            block = callee.local_block(formal)
            self._add(LocationSet(block, 0, 0), vals)
        if node.dst is not None:
            ret = self._lookup(LocationSet(callee.return_block, 0, 0))
            if ret:
                for dst in self._eval_loc(proc, node.dst):
                    self._add(dst, ret)

    def _do_library(self, proc: Procedure, node: CallNode, name: str) -> None:
        if name in ("malloc", "calloc", "realloc", "strdup", "fopen", "tmpfile"):
            block = self._heap.get(node.site)
            if block is None:
                block = HeapBlock(node.site)
                self._heap[node.site] = block
            if node.dst is not None:
                for dst in self._eval_loc(proc, node.dst):
                    self._add(dst, frozenset({LocationSet(block, 0, 0)}))
        elif name in ("strcpy", "strncpy", "strcat", "strncat", "memset",
                      "fgets", "gets", "memcpy", "memmove"):
            if node.dst is not None and node.args:
                vals = self._eval_value(proc, node.args[0])
                for dst in self._eval_loc(proc, node.dst):
                    self._add(dst, vals)
        elif name in ("strchr", "strrchr", "strstr", "strpbrk", "strtok", "memchr",
                      "bsearch"):
            if node.dst is not None and node.args:
                arg = node.args[1] if name == "bsearch" and len(node.args) > 1 else node.args[0]
                vals = frozenset(v.blurred() for v in self._eval_value(proc, arg))
                for dst in self._eval_loc(proc, node.dst):
                    self._add(dst, vals)
        elif name in ("qsort",):
            # the comparator gets pointers into the base array
            if len(node.args) >= 4:
                base = frozenset(
                    v.blurred() for v in self._eval_value(proc, node.args[0])
                )
                for v in self._eval_value(proc, node.args[3]):
                    if isinstance(v.base, ProcedureBlock):
                        callee = self.program.procedures.get(v.base.proc_name)
                        if callee is not None:
                            for formal in callee.formals[:2]:
                                block = callee.local_block(formal)
                                self._add(LocationSet(block, 0, 0), base)
        # everything else: no pointer effects (flow-insensitive best effort)

    # ------------------------------------------------------------------
    # queries (mirror AnalysisResult's shape)
    # ------------------------------------------------------------------

    def points_to_names(self, proc_name: str, var: str) -> set[str]:
        out = set()
        for loc in self.points_to_locations(proc_name, var):
            name = loc.base.name
            out.add(name.split("::")[-1])
        return out

    def points_to_locations(self, proc_name: str, var: str) -> set[LocationSet]:
        proc = self.program.procedures[proc_name]
        symbol = proc.locals.get(var)
        if symbol is not None:
            block = proc.local_block(symbol)
        elif var in self.program.globals:
            block = self.program.global_block(var)
        else:
            return set()
        return set(self._lookup(LocationSet(block, 0, 0)))

    def average_points_to_size(self) -> float:
        sizes = [len(v) for v in self.points_to.values() if v]
        return sum(sizes) / len(sizes) if sizes else 0.0


def andersen_analyze(program: Program) -> AndersenAnalysis:
    """Run the flow/context-insensitive baseline on ``program``."""
    return AndersenAnalysis(program).run()
