"""Emami-style invocation graphs (§6–7).

Emami et al.'s context-sensitive analysis reanalyzes a procedure for every
calling context, driven by an *invocation graph* with one node per procedure
per context.  Its size is exponential in the call-graph depth; the paper
reports that for the 37-procedure ``compiler`` benchmark it blows up past
700,000 nodes, while the PTF approach needs ~1.14 PTFs per procedure.

This module builds that graph (with the standard treatment of recursion:
a back node per recursive cycle edge, no re-expansion) so the benchmarks can
reproduce the comparison.  Construction is capped: once ``limit`` nodes have
been created we stop and report the graph as truncated — the point of the
experiment is precisely that the count explodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.program import Program

__all__ = ["InvocationGraph", "build_invocation_graph"]


@dataclass
class InvocationGraph:
    """Size statistics for an invocation graph."""

    nodes: int = 0
    approximate_nodes: int = 0  # recursive back edges
    truncated: bool = False
    limit: int = 1_000_000
    depth: int = 0

    @property
    def display(self) -> str:
        mark = ">" if self.truncated else ""
        return f"{mark}{self.nodes:,}"


def build_invocation_graph(
    program: Program,
    call_graph: Optional[dict[str, set[str]]] = None,
    root: str = "main",
    limit: int = 1_000_000,
) -> InvocationGraph:
    """Count invocation-graph nodes for ``program``.

    ``call_graph`` maps caller name to callee names; when omitted, a
    syntactic graph (direct calls only) is extracted.  Each *call site*
    spawns a child node per possible callee; a callee already on the current
    path becomes an approximate (recursive) node and is not expanded.
    """
    if call_graph is None:
        call_graph = syntactic_call_graph(program)
    sites = call_sites_by_proc(program, call_graph)

    graph = InvocationGraph(limit=limit)
    on_path: set[str] = set()

    def visit(proc: str, depth: int) -> None:
        if graph.truncated:
            return
        graph.nodes += 1
        graph.depth = max(graph.depth, depth)
        if graph.nodes >= limit:
            graph.truncated = True
            return
        if proc not in sites:
            return
        on_path.add(proc)
        try:
            for callees in sites[proc]:
                for callee in sorted(callees):
                    if graph.truncated:
                        return
                    if callee in on_path:
                        graph.nodes += 1
                        graph.approximate_nodes += 1
                        if graph.nodes >= limit:
                            graph.truncated = True
                        continue
                    if callee in sites or callee in call_graph:
                        visit(callee, depth + 1)
        finally:
            on_path.discard(proc)

    from ..analysis.recursion import ensure_recursion_limit

    # raise-only: restoring the old limit here would race a concurrent
    # deep analysis in the same process (see analysis/recursion.py)
    ensure_recursion_limit(100_000)
    visit(root, 1)
    return graph


def syntactic_call_graph(program: Program) -> dict[str, set[str]]:
    """Direct-call edges only (no function-pointer resolution)."""
    from ..ir.expr import AddressTerm, ProcSymbol, SymbolLoc

    graph: dict[str, set[str]] = {}
    for name, proc in program.procedures.items():
        callees: set[str] = set()
        for node in proc.call_nodes():
            for term in node.target.terms:
                if isinstance(term, AddressTerm) and isinstance(term.loc, SymbolLoc):
                    if isinstance(term.loc.symbol, ProcSymbol):
                        callees.add(term.loc.symbol.name)
        graph[name] = callees
    return graph


def call_sites_by_proc(
    program: Program, call_graph: dict[str, set[str]]
) -> dict[str, list[set[str]]]:
    """For each procedure, the list of its call sites, each with the set of
    *internal* procedures it may invoke."""
    from ..ir.expr import AddressTerm, ProcSymbol, SymbolLoc

    out: dict[str, list[set[str]]] = {}
    for name, proc in program.procedures.items():
        sites: list[set[str]] = []
        for node in proc.call_nodes():
            direct: set[str] = set()
            for term in node.target.terms:
                if isinstance(term, AddressTerm) and isinstance(term.loc, SymbolLoc):
                    if isinstance(term.loc.symbol, ProcSymbol):
                        direct.add(term.loc.symbol.name)
            if not direct:
                # indirect site: all edges the provided call graph allows
                direct = set(call_graph.get(name, set()))
            internal = {d for d in direct if d in program.procedures}
            if internal:
                sites.append(internal)
        out[name] = sites
    return out
