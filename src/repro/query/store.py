"""The on-disk analysis store — analyze once, answer many queries.

Every earlier layer of this repo answers questions about *one run in one
process*: the engine computes, the snapshot pins down what it computed,
and then the process exits and the next question re-runs the whole
analysis from source.  The store is the persistence layer that breaks
that cycle (``repro index`` writes it, ``repro query`` / ``repro
serve`` read it): a single JSON document from which the demand engine
(:mod:`repro.query.engine`) answers points-to, alias, MOD/REF,
pointed-by and call-graph reachability queries **without re-running the
analysis**.

Document layout (format tag ``repro-store/1``)::

    {
      "format":   "repro-store/1",
      "program":  name,
      "created":  ISO-8601 UTC,
      "sources":  [{"path": ..., "sha256": ...}, ...],
      "options":  non-default AnalyzerOptions (unhashed, provenance),
      "snapshot": the full canonical run snapshot (repro-snapshot/1 —
                  byte-for-byte what ``repro snapshot`` would have
                  written, digests included),
      "ir":       per-procedure lowered-IR digests + the global
                  environment digest (repro.query.invalidate),
      "call_graph": caller -> sorted callees (the analysis-resolved one),
      "index":    the merged per-procedure fact tables below
    }

The ``index`` is where the demand API's speed comes from — every fact a
query needs, merged over all PTFs/contexts and pre-translated at build
time so a query is a dict probe, not a PTF walk:

* ``procedures[P].vars[V]`` — the caller-space points-to facts of
  variable ``V`` at the exit of ``P`` (targets by display name + the
  precise location sets), exactly
  :meth:`~repro.analysis.results.AnalysisResult.points_to_names` /
  ``points_to`` would answer live;
* ``procedures[P].alias[V]`` — per-PTF target sets in the PTF's own
  name space (``AnalysisResult.targets_by_ptf``), kept *per PTF* so the
  stored alias verdict compares targets within one context exactly like
  ``AnalysisResult.may_alias`` does (merging across PTFs would
  manufacture spurious may-aliases);
* ``procedures[P].modref`` — caller-visible MOD/REF location sets
  derived from PTF side effects (``AnalysisResult.mod_ref``);
* ``pointed_by[T]`` — the reverse points-to index: which ``(proc,
  var)`` pairs may point at block ``T``;
* ``callsites`` — per-call-site resolved targets, for
  ``modref(callsite)``.

Writes are atomic (:func:`repro.ioutil.atomic_write_text`: a unique
``<path>.tmp.<pid>`` sibling created with ``O_EXCL``, then
``os.replace``) so a crashed indexer never leaves a truncated store
behind and two concurrent indexers against the same path serialize to
last-replace-wins instead of corrupting each other's temporary file.

Readers are defensive (:func:`load_store`): the format tag, the
document shape, and — since the ``integrity`` record was added — a
whole-store SHA-256 are all validated before a single query is
answered.  The digest is computed at build time over the canonical
compact serialization of every section *except* ``integrity`` itself
(:func:`store_integrity_digest`), so any post-write corruption — a
truncated replace, a flipped byte, a hand edit — turns into a
:class:`StoreError` with a stable ``repro:``-friendly message instead
of a wrong answer or a traceback deep inside the engine.  Stores
written before the record existed load without the check (there is
nothing to verify); ``verify=False`` skips it explicitly (the serve
daemon never does).
Consistency with the run it was built from is *provable*: the embedded
snapshot diffs bit-identical against a fresh ``repro snapshot`` of the
same sources (``repro diff`` reports ``bit-identical``), and the
query/snapshot agreement property tests pin the index to the snapshot's
merged facts.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import IO, TYPE_CHECKING, Optional, Union

from ..diagnostics.snapshot import build_snapshot
from ..ioutil import atomic_write_text
from .invalidate import program_ir_digests

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.engine import AnalyzerOptions
    from ..analysis.results import AnalysisResult

__all__ = [
    "STORE_FORMAT",
    "StoreError",
    "build_store",
    "write_store",
    "load_store",
    "pointed_by_index",
    "procedure_record",
    "seal_store",
    "source_records",
    "store_integrity_digest",
    "verify_store_integrity",
]

#: bumped whenever the index layout changes incompatibly; the engine
#: refuses to query stores of a different format
STORE_FORMAT = "repro-store/1"

#: top-level sections a loadable store must carry as JSON objects (the
#: engine indexes into all of them unconditionally)
_REQUIRED_SECTIONS = ("snapshot", "ir", "call_graph", "index")


class StoreError(ValueError):
    """A store document that cannot be loaded or trusted.

    Raised for unknown format tags, truncated/invalid JSON, missing
    sections, and integrity-digest mismatches.  A ``ValueError``
    subclass so existing ``except ValueError`` call sites keep working;
    the CLI maps it to a ``repro:``-prefixed stderr line and exit 2,
    the daemon's ``reload`` op to a ``reload-failed`` error envelope
    (while the old store keeps serving).
    """


# ---------------------------------------------------------------------------
# location serialization
# ---------------------------------------------------------------------------


def _loc_key(base) -> str:
    """A stable identity key for a memory block across store/load.

    Block identity inside one process is object identity (``is``); on
    disk it becomes ``kind:qualified-name``.  Extended parameters are
    additionally qualified by their owning procedure — their bare names
    (``1_p``) are only unique within one PTF, and the per-PTF alias
    tables carry the PTF uid alongside for exactly that reason.
    """
    from ..memory.blocks import ExtendedParameter

    if isinstance(base, ExtendedParameter):
        rep = base.representative()
        if rep.global_block is not None:
            return f"{rep.global_block.kind}:{rep.global_block.name}"
        return f"xparam:{rep.proc_name}:{rep.name}"
    return f"{base.kind}:{base.name}"


def _loc_record(result: "AnalysisResult", loc) -> list:
    """``[key, display, offset, stride]`` — what the engine needs for
    rendering (display) and overlap arithmetic (offset/stride under the
    key's block)."""
    return [
        _loc_key(loc.base),
        result.display_name(loc.base),
        loc.offset,
        loc.stride,
    ]


# ---------------------------------------------------------------------------
# index construction
# ---------------------------------------------------------------------------


def _var_table(result: "AnalysisResult", proc_name: str) -> dict:
    """Caller-space points-to facts for every queryable variable of one
    procedure (empty answers are omitted — the engine distinguishes
    "no pointer values" from "unknown variable" via the program's name
    tables, which travel in the snapshot's solution)."""
    out: dict[str, dict] = {}
    for var in result.queryable_vars(proc_name):
        locs = result.points_to(proc_name, var)
        if not locs:
            continue
        records = sorted(
            (_loc_record(result, loc) for loc in locs), key=lambda r: (r[0], r[2], r[3])
        )
        out[var] = {
            "targets": sorted({r[1] for r in records}),
            "locs": records,
        }
    return out


def _alias_table(result: "AnalysisResult", proc_name: str) -> dict:
    """Per-PTF target sets in PTF name space, for alias verdicts."""
    out: dict[str, list] = {}
    for var in result.queryable_vars(proc_name):
        rows = []
        for ptf, targets in result.targets_by_ptf(proc_name, var):
            rows.append(
                {
                    "ptf": ptf.uid,
                    "locs": sorted(
                        ([_loc_key(t.base), t.offset, t.stride] for t in targets),
                        key=lambda r: (r[0], r[1], r[2]),
                    ),
                }
            )
        if rows:
            out[var] = rows
    return out


def procedure_record(result: "AnalysisResult", proc_name: str) -> dict:
    """The full per-procedure index record for one procedure.

    Shared between exhaustive indexing (:func:`build_store`) and the
    demand engine (:mod:`repro.analysis.demand`), which materializes
    records lazily from its own analysis — using the same builder is
    what makes demand answers byte-identical to stored ones.
    """
    vars_ = _var_table(result, proc_name)
    modref = result.mod_ref(proc_name)
    return {
        # every name a query may legally ask about in this procedure
        # (locals + globals); the engine uses this to distinguish
        # "unknown variable" (an error) from "no pointer values"
        # (an empty answer)
        "queryable": result.queryable_vars(proc_name),
        "vars": vars_,
        "alias": _alias_table(result, proc_name),
        "modref": modref,
        # locally pure *including* callee effects: the summary keys
        # already fold in everything callees did to caller-visible
        # memory, so an empty MOD set is transitively meaningful
        "pure": not modref["mod"],
    }


def pointed_by_index(procedures: dict) -> dict:
    """Invert per-procedure var tables into ``target -> [[proc, var]]``."""
    pointed_by: dict[str, set] = {}
    for proc_name, record in procedures.items():
        for var, rec in record["vars"].items():
            for name in rec["targets"]:
                pointed_by.setdefault(name, set()).add((proc_name, var))
    return {
        name: sorted(list(pair) for pair in pairs)
        for name, pairs in sorted(pointed_by.items())
    }


def _build_index(result: "AnalysisResult") -> dict:
    procedures = {
        proc_name: procedure_record(result, proc_name)
        for proc_name in sorted(result.program.procedures)
    }
    return {
        "procedures": procedures,
        "pointed_by": pointed_by_index(procedures),
        "callsites": result.callsites(),
    }


# ---------------------------------------------------------------------------
# store assembly + I/O
# ---------------------------------------------------------------------------


def source_records(paths: list) -> list:
    """``[{"path", "sha256"}, ...]`` for the indexed source files —
    recorded so query answers can carry ready-made ``repro explain``
    invocations and so ``repro index`` can cheaply detect unchanged
    inputs before even re-lowering."""
    out = []
    for path in paths:
        with open(path, "rb") as fh:
            digest = hashlib.sha256(fh.read()).hexdigest()
        out.append({"path": str(path), "sha256": digest})
    return out


def build_store(
    result: "AnalysisResult",
    options: Optional["AnalyzerOptions"] = None,
    program_name: Optional[str] = None,
    sources: Optional[list] = None,
) -> dict:
    """Assemble the persistent store for a finished analysis.

    ``sources`` is the list of indexed file paths (recorded with content
    hashes); omit it for in-memory programs (tests).  The embedded
    snapshot always includes the full canonical solution — the store is
    the archival artifact, slimming it would break the agreement
    property tests and ``repro diff`` provability.
    """
    snapshot = build_snapshot(
        result, options=options, program_name=program_name, include_solution=True
    )
    from ..analysis.scc import address_taken_procs, indirect_call_procs

    ir = program_ir_digests(result.program)
    # recorded so staleness checks can widen across function-pointer
    # retargeting edits: an edit that makes a changed procedure
    # address-taken creates indirect call edges the *stored* call graph
    # cannot know about (see query/invalidate.py)
    ir["address_taken"] = sorted(address_taken_procs(result.program))
    ir["indirect_callers"] = sorted(indirect_call_procs(result.program))
    return seal_store({
        "format": STORE_FORMAT,
        "program": snapshot["program"],
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "sources": source_records(list(sources)) if sources else [],
        "options": snapshot["options"],
        "snapshot": snapshot,
        "ir": ir,
        "call_graph": snapshot["call_graph"],
        "index": _build_index(result),
    })


def store_integrity_digest(store: dict) -> str:
    """The whole-store SHA-256: over the canonical compact JSON of every
    section except ``integrity`` itself (a document cannot contain its
    own hash).  Key order is canonical (``sort_keys``) so the digest is
    independent of dict construction order."""
    body = {k: v for k, v in store.items() if k != "integrity"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def seal_store(store: dict) -> dict:
    """Stamp (or refresh) the ``integrity`` record in place and return
    the store.  ``build_store`` seals every store it assembles; callers
    that mutate a store document afterwards must re-seal before writing
    or readers will refuse it as corrupted — which is the point."""
    store["integrity"] = {
        "algorithm": "sha256",
        "digest": store_integrity_digest(store),
    }
    return store


def verify_store_integrity(store: dict, label: str = "store") -> bool:
    """Recompute and check the whole-store digest.

    Returns True when the record was present and matched, False for
    pre-integrity stores (nothing to verify); raises :class:`StoreError`
    on a malformed record or a mismatch.
    """
    record = store.get("integrity")
    if record is None:
        return False
    if not isinstance(record, dict) or record.get("algorithm") != "sha256" \
            or not record.get("digest"):
        raise StoreError(f"{label}: malformed integrity record {record!r}")
    recorded = record["digest"]
    actual = store_integrity_digest(store)
    if actual != recorded:
        raise StoreError(
            f"{label}: integrity check failed — recorded sha256 "
            f"{recorded[:12]}... does not match the document "
            f"({actual[:12]}...); refusing to serve a corrupted store"
        )
    return True


def write_store(store: dict, path: Union[str, IO]) -> None:
    """Serialize ``store`` to ``path`` atomically (unique per-process
    tmp + ``os.replace``); ``-`` or an open file object writes directly."""
    payload = json.dumps(store, indent=2, sort_keys=True) + "\n"
    if path == "-":
        import sys

        sys.stdout.write(payload)
        return
    if hasattr(path, "write"):
        path.write(payload)
        return
    atomic_write_text(path, payload)


def load_store(source: Union[str, IO], verify: bool = True) -> dict:
    """Read and validate a store from a path or open file object.

    Every failure mode — truncated or non-JSON bytes, a non-object
    document, an unknown format tag, missing sections, an integrity
    mismatch — raises :class:`StoreError` with a message naming the
    store, never a raw decoder traceback.  ``verify=False`` skips only
    the whole-store digest check (the shape checks always run).
    """
    if hasattr(source, "read"):
        label = f"store {getattr(source, 'name', '<stream>')}"
        try:
            store = json.load(source)
        except ValueError as exc:
            raise StoreError(
                f"{label} is not valid JSON (truncated or corrupted): {exc}"
            ) from exc
    else:
        label = f"store {source}"
        try:
            with open(source, "r", encoding="utf-8") as fh:
                store = json.load(fh)
        except ValueError as exc:
            # UnicodeDecodeError lands here too (it is a ValueError)
            raise StoreError(
                f"{label} is not valid JSON (truncated or corrupted): {exc}"
            ) from exc
    if not isinstance(store, dict):
        raise StoreError(
            f"{label} is not a JSON object "
            f"(got {type(store).__name__})"
        )
    fmt = store.get("format")
    if fmt != STORE_FORMAT:
        raise StoreError(
            f"{label}: unsupported store format {fmt!r} "
            f"(expected {STORE_FORMAT!r})"
        )
    for section in _REQUIRED_SECTIONS:
        if not isinstance(store.get(section), dict):
            raise StoreError(
                f"{label}: missing or malformed {section!r} section"
            )
    if not isinstance(store["index"].get("procedures"), dict):
        raise StoreError(f"{label}: index carries no procedure tables")
    if verify:
        verify_store_integrity(store, label=label)
    return store
