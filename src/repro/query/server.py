"""The long-lived query daemon behind ``repro serve``.

One :class:`QueryServer` wraps one :class:`~repro.query.engine.QueryEngine`
(one loaded store) and speaks **JSON lines**: each request is one JSON
value on one line, each response is one JSON object on one line.  Two
transports share the protocol:

* **stdio** (:meth:`QueryServer.serve_stdio`) — the default; suited to
  editor integrations and test harnesses that own the child process;
* **TCP** (:meth:`QueryServer.serve_tcp`) — a threading server so many
  clients share one engine (and therefore one LRU cache: a fact one
  client warmed is a hit for every other).

Protocol
--------

A request is either a single object or an **array of objects** (a
batch — answered in order, one response line per request, so a client
can pipeline without framing ambiguity)::

    {"op": "points_to", "var": "p", "proc": "main", "id": 1}
    [{"op": "alias", "a": "p", "b": "q"}, {"op": "stats"}]

Every response is an **envelope** mirroring the CLI's 0/2/4 exit-code
convention (:mod:`repro.cli`):

* ``{"id", "ok": true,  "status": 0, "result": {...}}`` — answered;
* ``{"id", "ok": true,  "status": 4, "result": {...}}`` — answered, but
  the store was built from a *degraded* (partial) run, so the answer is
  conservative (same meaning as exit 4);
* ``{"id", "ok": false, "status": 2, "error": {"code", "message"}}`` —
  the request failed; ``code`` is the stable
  :class:`~repro.query.engine.QueryError` code (or ``deadline`` /
  ``bad-json`` / ``internal``).

Control operations (handled by the server, not the engine): ``ping``
(liveness; echoes the program name), ``shutdown`` (graceful stop; the
stdio loop returns, the TCP server unwinds and closes its socket so no
orphan remains).

Deadlines: construct the server with ``deadline_seconds`` and every
request is answered under its own armed
:class:`~repro.analysis.guards.AnalysisBudget` — the same guards
machinery as the analysis engine; an expired budget maps to an error
envelope with code ``deadline``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import sys
import threading
from typing import IO, Optional

from ..analysis.guards import AnalysisBudget, GuardTripped
from .engine import QueryEngine, QueryError

__all__ = ["QueryServer"]

#: control ops the server answers itself (everything else goes to the
#: engine's OPS vocabulary)
CONTROL_OPS = ("ping", "shutdown")


class QueryServer:
    """JSON-lines request/response loop around one query engine."""

    def __init__(
        self,
        engine: QueryEngine,
        deadline_seconds: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.deadline_seconds = deadline_seconds
        #: set once a ``shutdown`` request is handled; both transports
        #: poll it to unwind cleanly
        self.shutting_down = threading.Event()
        #: requests handled (all envelopes, including errors)
        self.requests_handled = 0
        self._count_lock = threading.Lock()

    # -- envelopes ---------------------------------------------------------

    def _ok_status(self) -> int:
        return 4 if self.engine.degraded else 0

    def _envelope_ok(self, request_id, result: dict) -> dict:
        return {
            "id": request_id,
            "ok": True,
            "status": self._ok_status(),
            "result": result,
        }

    @staticmethod
    def _envelope_error(request_id, code: str, message: str) -> dict:
        return {
            "id": request_id,
            "ok": False,
            "status": 2,
            "error": {"code": code, "message": message},
        }

    # -- request handling --------------------------------------------------

    def _budget(self) -> Optional[AnalysisBudget]:
        if self.deadline_seconds is None:
            return None
        budget = AnalysisBudget(deadline_seconds=self.deadline_seconds)
        budget.start()
        return budget

    def handle_request(self, request) -> dict:
        """Answer one request object with one envelope (never raises)."""
        with self._count_lock:
            self.requests_handled += 1
        if not isinstance(request, dict):
            return self._envelope_error(
                None, "bad-request", "request must be a JSON object"
            )
        request_id = request.get("id")
        op = request.get("op")
        if op == "ping":
            return self._envelope_ok(
                request_id, {"op": "ping", "program": self.engine.program}
            )
        if op == "shutdown":
            self.shutting_down.set()
            return self._envelope_ok(request_id, {"op": "shutdown"})
        try:
            result = self.engine.query(request, budget=self._budget())
        except QueryError as exc:
            return self._envelope_error(request_id, exc.code, str(exc))
        except GuardTripped as exc:
            return self._envelope_error(request_id, exc.reason, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return self._envelope_error(request_id, "internal", str(exc))
        return self._envelope_ok(request_id, result)

    def handle_line(self, line: str) -> list[str]:
        """Answer one input line: one JSON request or a batch array.

        Returns one serialized envelope per request (batch answers stay
        in request order).  Malformed JSON yields a single ``bad-json``
        error envelope.
        """
        text = line.strip()
        if not text:
            return []
        try:
            payload = json.loads(text)
        except ValueError as exc:
            return [
                json.dumps(
                    self._envelope_error(None, "bad-json", str(exc)),
                    sort_keys=True,
                )
            ]
        requests = payload if isinstance(payload, list) else [payload]
        return [
            json.dumps(self.handle_request(req), sort_keys=True)
            for req in requests
        ]

    # -- stdio transport ---------------------------------------------------

    def serve_stdio(
        self, stdin: Optional[IO[str]] = None, stdout: Optional[IO[str]] = None
    ) -> int:
        """Serve JSON lines until EOF or a ``shutdown`` request.

        Returns the exit status for the CLI: 0 on a clean stop (the
        degraded state is carried per-envelope, not in the exit code —
        a daemon that answered every request shut down cleanly).
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        for line in stdin:
            for answer in self.handle_line(line):
                stdout.write(answer + "\n")
            stdout.flush()
            if self.shutting_down.is_set():
                break
        return 0

    # -- TCP transport -----------------------------------------------------

    def serve_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_cb=None,
        log=None,
    ) -> int:
        """Serve JSON lines over TCP until a ``shutdown`` request.

        ``port=0`` binds an ephemeral port; the actual address is
        announced via ``ready_cb((host, port))`` (tests) and one
        ``repro: serving <program> on HOST:PORT`` line on ``log``
        (defaults to stderr — the CLI contract scripts can wait for).
        The server thread pool drains and the listening socket closes
        before this returns, so a clean shutdown leaves no orphan
        socket behind.
        """
        outer = self
        log = log if log is not None else sys.stderr

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                while not outer.shutting_down.is_set():
                    raw = self.rfile.readline()
                    if not raw:
                        break
                    line = raw.decode("utf-8", errors="replace")
                    for answer in outer.handle_line(line):
                        self.wfile.write(answer.encode("utf-8") + b"\n")
                    self.wfile.flush()
                    if outer.shutting_down.is_set():
                        # answered the shutdown envelope; stop the server
                        # from a helper thread (shutdown() must not be
                        # called from the handler thread it would join)
                        threading.Thread(
                            target=self.server.shutdown, daemon=True
                        ).start()
                        break

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        with Server((host, port), Handler) as server:
            bound_host, bound_port = server.server_address[:2]
            log.write(
                f"repro: serving {self.engine.program} on "
                f"{bound_host}:{bound_port}\n"
            )
            log.flush()
            if ready_cb is not None:
                ready_cb((bound_host, bound_port))
            server.serve_forever(poll_interval=0.05)
        return 0


def _probe_tcp(host: str, port: int, timeout: float = 0.2) -> bool:
    """Whether something is listening on ``host:port`` (used by the
    daemon tests to assert no orphan socket survives a shutdown)."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
