"""The long-lived query daemon behind ``repro serve``.

One :class:`QueryServer` wraps one :class:`~repro.query.engine.QueryEngine`
(one loaded store) and speaks **JSON lines**: each request is one JSON
value on one line, each response is one JSON object on one line.  Two
transports share the protocol:

* **stdio** (:meth:`QueryServer.serve_stdio`) — the default; suited to
  editor integrations and test harnesses that own the child process;
* **TCP** (:meth:`QueryServer.serve_tcp`) — a threading server so many
  clients share one engine (and therefore one LRU cache: a fact one
  client warmed is a hit for every other).

Protocol
--------

A request is either a single object or an **array of objects** (a
batch — answered in order, one response line per request, so a client
can pipeline without framing ambiguity)::

    {"op": "points_to", "var": "p", "proc": "main", "id": 1}
    [{"op": "alias", "a": "p", "b": "q"}, {"op": "stats"}]

Every response is an **envelope** mirroring the CLI's 0/2/4 exit-code
convention (:mod:`repro.cli`):

* ``{"id", "ok": true,  "status": 0, "result": {...}}`` — answered;
* ``{"id", "ok": true,  "status": 4, "result": {...}}`` — answered, but
  the store was built from a *degraded* (partial) run, so the answer is
  conservative (same meaning as exit 4);
* ``{"id", "ok": false, "status": 2, "error": {"code", "message"}}`` —
  the request failed; ``code`` is the stable
  :class:`~repro.query.engine.QueryError` code (or ``deadline`` /
  ``bad-json`` / ``internal``).

Control operations (handled by the server, not the engine): ``ping``
(liveness; echoes the program name), ``shutdown`` (graceful stop; the
stdio loop returns, the TCP server unwinds and closes its socket so no
orphan remains), ``stats`` (the engine's live counters plus the
server-side telemetry snapshot — answered from the registry, never
touching the LRU), ``health`` (a cheap liveness/level probe: uptime,
in-flight count, degraded flag), and ``reload`` (hot store swap, below).

Fault tolerance (``docs/ROBUSTNESS.md`` §8)
-------------------------------------------

**Hot store swap.**  The ``reload`` admin op (or the optional
``--watch`` mtime poller, :meth:`QueryServer.start_watch`) re-reads the
store path, verifies its integrity digest, and atomically promotes a
fresh :class:`QueryEngine` under live traffic.  Every request line pins
the engine reference once when processing begins, so an in-flight
request is answered **entirely from the old or entirely from the new
store — never a torn mix**.  The LRU survives selectively: the stale
slice (procedures whose IR digests moved, plus dependents — computed by
:func:`~repro.query.invalidate.compute_stale_between_stores` from the
recorded digests, no re-lowering) is dropped, the clean slice carries
over.  A reload target that fails to load or fails its integrity check
is refused with a ``reload-failed`` error envelope while the old store
keeps serving.

**Overload protection.**  An optional max in-flight admission gate and
a token-bucket rate limiter (:class:`~repro.diagnostics.telemetry.TokenBucket`)
shed request lines *before* the engine is consulted: every request on a
shed line gets an error envelope with the stable code ``overloaded``
and a ``retry_after_ms`` hint.  Control-only lines (ping / health /
stats / shutdown / reload) are exempt — an overloaded daemon must stay
probeable and stoppable.  Accepted TCP connections carry a read/idle
socket timeout (default 300 s) so a stalled peer releases its handler
thread; releases are counted as ``idle_timeouts``.  Because shedding
happens before the engine, every *non*-shed answer stays byte-identical
to an unlimited server's.

**Serve-path chaos.**  Pass a :class:`~repro.diagnostics.faults.FaultPlan`
with serve sites and the daemon deterministically injects slow handlers
(``slow``), mid-request disconnects (``disconnect`` — the line is read
and processed but the answer is never written), and corrupt reload
targets (``corrupt_reload``) — the substrate of the chaos gate
(``repro loadtest --chaos``), which proves zero crashes and
byte-identical non-shed answers under sustained injected failure.

Deadlines: construct the server with ``deadline_seconds`` and every
request is answered under its own armed
:class:`~repro.analysis.guards.AnalysisBudget` — the same guards
machinery as the analysis engine; an expired budget maps to an error
envelope with code ``deadline``.

Telemetry (``docs/OBSERVABILITY.md`` §5)
----------------------------------------

Pass a :class:`~repro.diagnostics.telemetry.TelemetryRegistry` and every
request is measured **from line-read to envelope-write** on the
monotonic clock: the transport stamps ``perf_counter_ns`` the moment a
line arrives, writes and flushes the answer envelopes, and only then
finalizes — so the recorded latency covers parse, compute, serialize
*and* the write.  Requests in one batch line share the line's latency
(the batch is one wire unit).  Per request the server maintains:

* histograms ``latency`` and ``latency.<op>`` (log-bucketed, 1%
  relative error, p50/p90/p99 in every snapshot);
* counters ``requests`` / ``errors`` / ``deadlines`` / ``slow`` /
  ``cache_hits`` / ``cache_misses`` (cache disposition comes from the
  engine via :meth:`QueryEngine.query`'s ``info`` out-param — the
  answer envelopes stay byte-identical to a telemetry-off server);
* gauge ``in_flight`` (lines currently being answered);
* a server-assigned monotone request id ``rid`` (distinct from the
  client's ``id``, which the server echoes but never interprets).

The structured **access log** (``--access-log``, ``-`` = stdout) gets
one JSON line per request::

    {"cache": "hit", "code": null, "id": 7, "ms": 0.41, "ok": true,
     "op": "points_to", "peer": "127.0.0.1:52114", "rid": 12,
     "status": 0, "t": 1754550000.123456}

When a tracer is attached, each finalized request emits a
``server.request`` instant (and ``server.slow`` above the slow-request
threshold) under the vocabulary in :mod:`repro.diagnostics.trace`.

Graceful shutdown: :meth:`QueryServer.install_signal_handlers` maps
SIGTERM/SIGINT to the same path as the in-band ``shutdown`` op — stop
accepting, drain in-flight lines, flush the access log, write a final
telemetry snapshot to the announce stream, exit 0.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import socket
import socketserver
import sys
import threading
import time
from typing import IO, Optional

from ..analysis.guards import AnalysisBudget, GuardTripped
from ..diagnostics.telemetry import TelemetryRegistry, TokenBucket
from .engine import QueryEngine, QueryError
from .invalidate import compute_stale_between_stores
from .store import StoreError, load_store

__all__ = ["QueryServer"]

#: control ops the server answers itself (everything else goes to the
#: engine's OPS vocabulary); ``stats`` and ``health`` answer from the
#: live telemetry registry without touching the LRU; control-only lines
#: are exempt from overload shedding
CONTROL_OPS = ("ping", "shutdown", "stats", "health", "reload", "metrics")

#: default slow-request threshold for the ``server.slow`` instant and
#: the ``slow`` counter (milliseconds)
DEFAULT_SLOW_MS = 100.0

#: default per-connection read/idle socket timeout (seconds); a peer
#: that sends nothing for this long releases its handler thread
DEFAULT_IDLE_TIMEOUT = 300.0

#: retry-after hint on in-flight-gate sheds (the level drains in
#: request time, not bucket-refill time, so a fixed small hint fits)
DEFAULT_RETRY_AFTER_MS = 50.0


class _ShutdownSignal(Exception):
    """Raised inside the stdio read loop by the signal handler so a
    blocking ``readline`` unwinds into the graceful-shutdown path."""

    def __init__(self, signame: str) -> None:
        self.signame = signame
        super().__init__(signame)


class _Pending:
    """One answered request awaiting finalization (envelope already
    serialized; telemetry/access-log recorded after the write)."""

    __slots__ = ("text", "rid", "request_id", "op", "ok", "status", "code",
                 "cache", "mode")

    def __init__(self, text, rid, request_id, op, ok, status, code, cache,
                 mode=None):
        self.text = text
        self.rid = rid
        self.request_id = request_id
        self.op = op
        self.ok = ok
        self.status = status
        self.code = code
        self.cache = cache
        self.mode = mode


class QueryServer:
    """JSON-lines request/response loop around one query engine."""

    def __init__(
        self,
        engine: QueryEngine,
        deadline_seconds: Optional[float] = None,
        telemetry: Optional[TelemetryRegistry] = None,
        access_log: Optional[IO[str]] = None,
        tracer=None,
        slow_ms: float = DEFAULT_SLOW_MS,
        store_path: Optional[str] = None,
        max_in_flight: Optional[int] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        faults=None,
    ) -> None:
        self.engine = engine
        self.deadline_seconds = deadline_seconds
        #: telemetry registry (None = telemetry off; answers are
        #: byte-identical either way)
        self.telemetry = telemetry
        #: structured JSONL access log stream (None = no access log)
        self.access_log = access_log
        self.trace = tracer
        self.slow_ms = slow_ms
        #: the path the store was loaded from — the ``reload`` admin op
        #: and the ``--watch`` poller re-read it; None = in-memory
        #: store, reload refused
        self.store_path = store_path
        #: admission gate: shed a request line when this many lines are
        #: already in flight (None = no gate)
        self.max_in_flight = max_in_flight
        #: token-bucket rate limiter (None = unlimited); one token per
        #: request, so a batch line of N requests costs N tokens
        self.rate_limit = rate_limit
        self._bucket: Optional[TokenBucket] = (
            TokenBucket(rate_limit, burst) if rate_limit else None
        )
        #: per-connection read/idle socket timeout in seconds
        #: (None or <= 0 disables — a stalled peer then pins its thread)
        self.idle_timeout = (
            idle_timeout if idle_timeout and idle_timeout > 0 else None
        )
        #: deterministic serve-fault plan (FaultPlan with serve sites),
        #: None = no injection
        self.faults = faults if faults is not None and getattr(
            faults, "serves_faults", False
        ) else None
        #: set once a ``shutdown`` request (in-band or signal) is
        #: handled; both transports poll it to unwind cleanly
        self.shutting_down = threading.Event()
        #: requests handled (all envelopes, including errors)
        self.requests_handled = 0
        #: requests fully finalized (envelope written; the number the
        #: ``stats``/``health`` admin ops report — exact even with
        #: telemetry off)
        self.requests_finalized = 0
        #: store generation: 1 for the store served at startup, +1 per
        #: successful hot swap
        self.generation = 1
        #: fault-tolerance counters (exact even with telemetry off;
        #: mirrored into the registry when telemetry is on)
        self.sheds = 0
        self.idle_timeouts = 0
        self.reloads = 0
        self.reload_failures = 0
        self.fault_slow = 0
        self.fault_disconnects = 0
        self.client_disconnects = 0
        #: answers recomputed by the demand tier because the store was
        #: stale for the queried fact (exact even with telemetry off)
        self.demand_fallbacks = 0
        self._count_lock = threading.Lock()
        self._access_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._reload_attempts = 0
        self._watch_thread: Optional[threading.Thread] = None
        self._rid = itertools.count(1)
        self._in_flight = 0
        self._started_mono = time.perf_counter()
        self._tcp_server: Optional[socketserver.ThreadingTCPServer] = None
        self._transport: Optional[str] = None
        self._signal_received: Optional[str] = None
        # instrument handles are resolved once here, not per request —
        # the registry lookup (a lock plus a dict probe per instrument)
        # would otherwise dominate the finalize path's cost
        if telemetry is not None:
            self._tel_in_flight = telemetry.gauge("in_flight")
            self._tel_requests = telemetry.counter("requests")
            self._tel_errors = telemetry.counter("errors")
            self._tel_deadlines = telemetry.counter("deadlines")
            self._tel_cache_hits = telemetry.counter("cache_hits")
            self._tel_cache_misses = telemetry.counter("cache_misses")
            self._tel_slow = telemetry.counter("slow")
            self._tel_latency = telemetry.histogram("latency")
            self._tel_sheds = telemetry.counter("sheds")
            self._tel_sheds_rate = telemetry.counter("sheds.rate")
            self._tel_sheds_in_flight = telemetry.counter("sheds.in_flight")
            self._tel_idle_timeouts = telemetry.counter("idle_timeouts")
            self._tel_reloads = telemetry.counter("reloads")
            self._tel_reload_failures = telemetry.counter("reload_failures")
            self._tel_fault_slow = telemetry.counter("fault_slow")
            self._tel_fault_disconnects = telemetry.counter(
                "fault_disconnects"
            )
            self._tel_client_disconnects = telemetry.counter(
                "client_disconnects"
            )
            self._tel_demand_fallbacks = telemetry.counter(
                "demand_fallbacks"
            )
            #: op -> per-op latency histogram, grown on first sighting.
            #: Benign data race: two threads may both resolve the same
            #: op, but the registry hands back one shared instance, so
            #: the assignments are identical.
            self._tel_latency_by_op: dict = {}

    # -- envelopes ---------------------------------------------------------

    def _ok_status(self, engine: Optional[QueryEngine] = None) -> int:
        engine = engine if engine is not None else self.engine
        return 4 if engine.degraded else 0

    def _envelope_ok(
        self, request_id, result: dict,
        engine: Optional[QueryEngine] = None,
    ) -> dict:
        return {
            "id": request_id,
            "ok": True,
            "status": self._ok_status(engine),
            "result": result,
        }

    @staticmethod
    def _envelope_error(request_id, code: str, message: str) -> dict:
        return {
            "id": request_id,
            "ok": False,
            "status": 2,
            "error": {"code": code, "message": message},
        }

    # -- admin results -----------------------------------------------------

    def uptime_seconds(self) -> float:
        return time.perf_counter() - self._started_mono

    def _stats_result(self, engine: Optional[QueryEngine] = None) -> dict:
        """The ``stats`` admin op: the engine's live counters (read
        directly — no LRU probe, no cache perturbation) plus the
        server-side block and, when enabled, the full telemetry
        snapshot."""
        engine = engine if engine is not None else self.engine
        result = engine.stats()
        result["server"] = {
            "requests": self.requests_finalized,
            "in_flight": self._in_flight,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "slow_ms": self.slow_ms,
            "access_log": self.access_log is not None,
            "generation": self.generation,
            "reloads": self.reloads,
            "reload_failures": self.reload_failures,
            "sheds": self.sheds,
            "idle_timeouts": self.idle_timeouts,
            "demand_fallbacks": self.demand_fallbacks,
            "telemetry": (
                self.telemetry.as_dict() if self.telemetry is not None else None
            ),
        }
        return result

    def _metrics_result(self, engine: Optional[QueryEngine] = None) -> dict:
        """The ``metrics`` admin op (also ``stats`` with ``format:
        "prometheus"``): the live registry rendered in the Prometheus
        text exposition format, server-side levels folded in as extra
        gauges — scrapeable with no JSON glue.  Works with telemetry
        off (the server gauges still render)."""
        from ..diagnostics.telemetry import prometheus_text

        engine = engine if engine is not None else self.engine
        extra = {
            "server.requests": self.requests_finalized,
            "server.in_flight": self._in_flight,
            "server.uptime_seconds": round(self.uptime_seconds(), 3),
            "server.generation": self.generation,
            "server.reloads": self.reloads,
            "server.reload_failures": self.reload_failures,
            "server.sheds": self.sheds,
            "server.idle_timeouts": self.idle_timeouts,
            "server.demand_fallbacks": self.demand_fallbacks,
            "server.degraded": engine.degraded,
        }
        return {
            "op": "metrics",
            "content_type": "text/plain; version=0.0.4",
            "text": prometheus_text(self.telemetry, extra_gauges=extra),
        }

    def _health_result(self, engine: Optional[QueryEngine] = None) -> dict:
        """The ``health`` admin op: a cheap liveness/level probe —
        counters and gauges only, nothing that touches the LRU or the
        store index."""
        engine = engine if engine is not None else self.engine
        return {
            "op": "health",
            "healthy": True,
            "program": engine.program,
            "degraded": engine.degraded,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "in_flight": self._in_flight,
            "requests": self.requests_finalized,
            "generation": self.generation,
        }

    # -- request handling --------------------------------------------------

    def _budget(self) -> Optional[AnalysisBudget]:
        if self.deadline_seconds is None:
            return None
        budget = AnalysisBudget(deadline_seconds=self.deadline_seconds)
        budget.start()
        return budget

    def handle_request(
        self, request, info: Optional[dict] = None,
        engine: Optional[QueryEngine] = None,
    ) -> dict:
        """Answer one request object with one envelope (never raises).

        ``info``, when given, receives per-call facts that must stay out
        of the (cached, shared) answer — see :meth:`QueryEngine.query`.
        ``engine`` is the engine pinned when this request's line arrived
        (the never-torn hot-swap guarantee: every request in a line is
        answered entirely from one store, even if a ``reload`` promotes
        a new one mid-flight).
        """
        engine = engine if engine is not None else self.engine
        with self._count_lock:
            self.requests_handled += 1
        if not isinstance(request, dict):
            return self._envelope_error(
                None, "bad-request", "request must be a JSON object"
            )
        request_id = request.get("id")
        op = request.get("op")
        if op == "ping":
            return self._envelope_ok(
                request_id, {"op": "ping", "program": engine.program}, engine
            )
        if op == "shutdown":
            self.request_shutdown()
            return self._envelope_ok(request_id, {"op": "shutdown"}, engine)
        if op == "stats":
            if request.get("format") == "prometheus":
                return self._envelope_ok(
                    request_id, self._metrics_result(engine), engine
                )
            return self._envelope_ok(
                request_id, self._stats_result(engine), engine
            )
        if op == "metrics":
            return self._envelope_ok(
                request_id, self._metrics_result(engine), engine
            )
        if op == "health":
            return self._envelope_ok(
                request_id, self._health_result(engine), engine
            )
        if op == "reload":
            try:
                result = self._reload(request.get("path"))
            except QueryError as exc:
                return self._envelope_error(request_id, exc.code, str(exc))
            # answer from the *new* engine: the swap already happened,
            # and the reload result should carry its degraded status
            return self._envelope_ok(request_id, result, self.engine)
        if info is None:
            # direct handle_request callers still get mode/stale
            # annotations; _process_request passes its own dict so the
            # access log can record the same facts
            info = {}
        try:
            result = engine.query(request, budget=self._budget(), info=info)
        except QueryError as exc:
            return self._envelope_error(request_id, exc.code, str(exc))
        except GuardTripped as exc:
            return self._envelope_error(request_id, exc.reason, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return self._envelope_error(request_id, "internal", str(exc))
        envelope = self._envelope_ok(request_id, result, engine)
        if info:
            # per-call annotations live in the envelope, never in the
            # result: results are shared cache entries whose bytes must
            # match across modes (the demand ≡ exhaustive contract)
            if info.get("mode") == "demand":
                envelope["mode"] = "demand"
                if info.get("demand_degraded") and envelope["status"] == 0:
                    envelope["status"] = 4
                with self._count_lock:
                    self.demand_fallbacks += 1
                if self.telemetry is not None:
                    self._tel_demand_fallbacks.inc()
            if info.get("stale"):
                envelope["stale"] = True
        return envelope

    # -- hot store swap ----------------------------------------------------

    def _reload(self, path: Optional[str] = None) -> dict:
        """Load a (new) store and atomically promote it under traffic.

        The swap is a single attribute rebind: request lines already in
        flight keep the engine they pinned (old store), lines read after
        the rebind see the new one — no request is ever answered from a
        torn mix.  The new engine shares the old engine's metrics (the
        cumulative counters survive the swap) and adopts the clean slice
        of its LRU: entries whose dependent procedures all have
        unchanged IR digests (per
        :func:`~repro.query.invalidate.compute_stale_between_stores`).

        Any load failure — unreadable file, invalid JSON, unknown
        format, integrity mismatch, injected ``corrupt_reload`` fault —
        raises :class:`QueryError` with code ``reload-failed`` and
        leaves the old engine serving.
        """
        target = path or self.store_path
        if target is None:
            raise QueryError(
                "reload-failed",
                "daemon was started from an in-memory store; pass "
                '{"op": "reload", "path": ...} or restart with a store path',
            )
        with self._reload_lock:
            self._reload_attempts += 1
            attempt = self._reload_attempts
            old = self.engine
            try:
                new_store = load_store(target)
                if self.faults is not None and self.faults.corrupt_reload(
                    f"{target}#{attempt}"
                ):
                    raise StoreError(
                        f"store {target}: integrity check failed "
                        "(injected corrupt_reload fault)"
                    )
            except (OSError, ValueError) as exc:
                with self._count_lock:
                    self.reload_failures += 1
                if self.telemetry is not None:
                    self._tel_reload_failures.inc()
                if self.trace is not None:
                    self.trace.instant(
                        "server.reload", "server",
                        ok=False, generation=self.generation,
                    )
                raise QueryError(
                    "reload-failed",
                    f"store {target} rejected; still serving generation "
                    f"{self.generation}: {exc}",
                )
            report = compute_stale_between_stores(old.store, new_store)
            new_engine = QueryEngine(
                new_store,
                metrics=old.metrics,
                tracer=old.trace,
                cache_size=old.cache_size,
                # a fresh tier over the new store (fresh probe state —
                # the old tier's verdict described the old sources),
                # carrying the cumulative fallback counters
                demand=(
                    old.demand.for_store(new_store)
                    if old.demand is not None else None
                ),
            )
            carried, dropped = new_engine.adopt_cache(old, report)
            self.engine = new_engine
            with self._count_lock:
                self.generation += 1
                self.reloads += 1
                generation = self.generation
            if self.telemetry is not None:
                self._tel_reloads.inc()
            if self.trace is not None:
                self.trace.instant(
                    "server.reload", "server",
                    ok=True, generation=generation,
                    stale=len(report.stale), carried=carried,
                )
            return {
                "op": "reload",
                "store": target,
                "program": new_engine.program,
                "generation": generation,
                "stale": {
                    "up_to_date": report.up_to_date,
                    "changed": len(report.changed),
                    "added": len(report.added),
                    "removed": len(report.removed),
                    "globals_changed": report.globals_changed,
                    "stale": len(report.stale),
                    "clean": len(report.clean),
                },
                "cache": {"carried": carried, "dropped": dropped},
            }

    def start_watch(self, interval: float, log: Optional[IO[str]] = None
                    ) -> None:
        """Poll the store path every ``interval`` seconds and hot-swap
        when its ``(mtime_ns, size)`` signature changes (``--watch``).

        A failed reload (still-being-written file, integrity mismatch)
        is logged and retried on the next change — the old store keeps
        serving throughout.  The poller is a daemon thread; it dies with
        the process and stops at shutdown.
        """
        if self.store_path is None:
            raise ValueError("--watch needs a store path to poll")
        if interval <= 0:
            raise ValueError(f"watch interval {interval} must be > 0")

        def _signature():
            try:
                st = os.stat(self.store_path)
            except OSError:
                return None
            return (st.st_mtime_ns, st.st_size)

        def _poll():
            last = _signature()
            while not self.shutting_down.wait(interval):
                sig = _signature()
                if sig is None or sig == last:
                    continue
                last = sig
                try:
                    result = self._reload()
                except QueryError as exc:
                    if log is not None:
                        log.write(f"repro: reload failed: {exc}\n")
                        log.flush()
                    continue
                if log is not None:
                    log.write(
                        f"repro: reload: generation "
                        f"{result['generation']}, "
                        f"{result['stale']['stale']} stale proc(s), "
                        f"{result['cache']['carried']} cache entr(ies) "
                        f"carried\n"
                    )
                    log.flush()

        self._watch_thread = threading.Thread(
            target=_poll, name="repro-store-watch", daemon=True
        )
        self._watch_thread.start()

    def _process_request(self, request, engine: QueryEngine) -> _Pending:
        with self._count_lock:
            rid = next(self._rid)
        info: dict = {}
        envelope = self.handle_request(request, info, engine)
        op = request.get("op") if isinstance(request, dict) else None
        error = envelope.get("error") or {}
        return _Pending(
            text=json.dumps(envelope, sort_keys=True),
            rid=rid,
            request_id=envelope.get("id"),
            op=op if isinstance(op, str) else "invalid",
            ok=bool(envelope.get("ok")),
            status=envelope.get("status"),
            code=error.get("code"),
            cache=info.get("cache"),
            mode=info.get("mode"),
        )

    def _process_line(self, line: str) -> list[_Pending]:
        """Answer one input line: one JSON request or a batch array.

        Returns one pending envelope per request (batch answers stay in
        request order).  Malformed JSON yields a single ``bad-json``
        error envelope.  Telemetry/access-log recording happens in
        :meth:`_finalize`, *after* the transport wrote the envelopes.
        """
        text = line.strip()
        if not text:
            return []
        try:
            payload = json.loads(text)
        except ValueError as exc:
            with self._count_lock:
                rid = next(self._rid)
            return [
                _Pending(
                    text=json.dumps(
                        self._envelope_error(None, "bad-json", str(exc)),
                        sort_keys=True,
                    ),
                    rid=rid,
                    request_id=None,
                    op="invalid",
                    ok=False,
                    status=2,
                    code="bad-json",
                    cache=None,
                )
            ]
        requests = payload if isinstance(payload, list) else [payload]
        # pin the engine once per line: every request in this line is
        # answered from the same store, even across a concurrent reload
        engine = self.engine
        shed_reason = self._admission(requests)
        if shed_reason is not None:
            pending = [self._shed_request(req, shed_reason)
                       for req in requests]
        else:
            pending = [self._process_request(req, engine)
                       for req in requests]
        if (
            self.faults is not None
            and pending
            and self.faults.slow_serve(text)
        ):
            with self._count_lock:
                self.fault_slow += 1
            if self.telemetry is not None:
                self._tel_fault_slow.inc()
            time.sleep(self.faults.slow_ms / 1000.0)
        return pending

    # -- overload protection -----------------------------------------------

    @staticmethod
    def _control_only(requests: list) -> bool:
        """Whether every request on the line is a control op (exempt
        from shedding: an overloaded daemon must stay probeable,
        reloadable and stoppable)."""
        return all(
            isinstance(req, dict) and req.get("op") in CONTROL_OPS
            for req in requests
        )

    def _admission(self, requests: list) -> Optional[tuple[str, float]]:
        """Decide whether to shed this line; returns ``(reason,
        retry_after_ms)`` to shed, None to admit.

        The in-flight gate is checked first and consumes no tokens (a
        shed caused by concurrency should not also starve the bucket);
        the token bucket then pays one token per request, so batches
        cost their true weight.
        """
        if self.max_in_flight is None and self._bucket is None:
            return None
        if not requests or self._control_only(requests):
            return None
        if self.max_in_flight is not None:
            with self._count_lock:
                level = self._in_flight  # includes this line
            if level > self.max_in_flight:
                return ("in_flight", DEFAULT_RETRY_AFTER_MS)
        if self._bucket is not None and not self._bucket.take(len(requests)):
            retry_s = self._bucket.retry_after_seconds(len(requests))
            return ("rate", max(1.0, round(retry_s * 1000.0, 3)))
        return None

    def _shed_request(self, request, reason: tuple[str, float]) -> _Pending:
        """One ``overloaded`` error envelope for a shed request.  The
        engine is never consulted, so every *non*-shed answer stays
        byte-identical to an unlimited server's."""
        why, retry_after_ms = reason
        with self._count_lock:
            rid = next(self._rid)
            self.requests_handled += 1
            self.sheds += 1
        if self.telemetry is not None:
            self._tel_sheds.inc()
            if why == "rate":
                self._tel_sheds_rate.inc()
            else:
                self._tel_sheds_in_flight.inc()
        request_id = request.get("id") if isinstance(request, dict) else None
        op = request.get("op") if isinstance(request, dict) else None
        envelope = {
            "id": request_id,
            "ok": False,
            "status": 2,
            "error": {
                "code": "overloaded",
                "message": (
                    "server is shedding load "
                    f"({'rate limit' if why == 'rate' else 'in-flight limit'}"
                    " exceeded); retry after the hint"
                ),
                "retry_after_ms": retry_after_ms,
            },
        }
        if self.trace is not None:
            self.trace.instant(
                "server.shed", "server", reason=why, rid=rid,
            )
        return _Pending(
            text=json.dumps(envelope, sort_keys=True),
            rid=rid,
            request_id=request_id,
            op=op if isinstance(op, str) else "invalid",
            ok=False,
            status=2,
            code="overloaded",
            cache=None,
        )

    def handle_line(self, line: str) -> list[str]:
        """Answer one input line, finalizing telemetry immediately.

        The transports use the :meth:`_process_line` / :meth:`_finalize`
        pair so the measured window closes after the envelope write;
        this convenience keeps the one-call protocol surface for tests
        and embedders (the window then covers parse + compute +
        serialize only).
        """
        received_ns = time.perf_counter_ns()
        self._note_begin()
        pending: list[_Pending] = []
        try:
            pending = self._process_line(line)
        finally:
            self._finalize(pending, received_ns)
        return [p.text for p in pending]

    # -- telemetry / access log --------------------------------------------

    def _note_begin(self) -> None:
        with self._count_lock:
            self._in_flight += 1
        if self.telemetry is not None:
            self._tel_in_flight.add(1)

    def _finalize(
        self,
        pending: list[_Pending],
        received_ns: int,
        peer: Optional[str] = None,
    ) -> None:
        """Record each answered request after its envelope was written:
        latency (line-read to envelope-write), counters, access-log
        line, trace instants.  Always decrements the in-flight level
        (paired with :meth:`_note_begin`).

        This is the per-request hot path, so bookkeeping is batched per
        *line*: one counter increment per condition class (not per
        request), one bulk histogram record for the shared line latency,
        and one buffered access-log write (flushed on shutdown, not per
        record — a tail ``-f`` may lag, a crash loses at most a buffer).
        """
        elapsed_ms = (time.perf_counter_ns() - received_ns) / 1e6
        telemetry = self.telemetry
        tracer = self.trace
        slow = elapsed_ms > self.slow_ms
        if telemetry is not None and pending:
            n = len(pending)
            self._tel_requests.inc(n)
            self._tel_latency.record_n(elapsed_ms, n)
            by_op = self._tel_latency_by_op
            errors = deadlines = hits = misses = 0
            for p in pending:
                hist = by_op.get(p.op)
                if hist is None:
                    hist = by_op[p.op] = telemetry.histogram(
                        f"latency.{p.op}"
                    )
                hist.record(elapsed_ms)
                if not p.ok:
                    errors += 1
                if p.code == "deadline":
                    deadlines += 1
                if p.cache == "hit":
                    hits += 1
                elif p.cache == "miss":
                    misses += 1
            if errors:
                self._tel_errors.inc(errors)
            if deadlines:
                self._tel_deadlines.inc(deadlines)
            if hits:
                self._tel_cache_hits.inc(hits)
            if misses:
                self._tel_cache_misses.inc(misses)
            if slow:
                self._tel_slow.inc(n)
        if telemetry is not None:
            self._tel_in_flight.add(-1)
        if tracer is not None:
            ms = round(elapsed_ms, 3)
            for p in pending:
                tracer.instant(
                    "server.request", "server",
                    op=p.op, status=p.status, ms=ms, rid=p.rid,
                )
                if slow:
                    tracer.instant(
                        "server.slow", "server", op=p.op, ms=ms, rid=p.rid,
                    )
        if self.access_log is not None and pending:
            now = round(time.time(), 6)
            ms = round(elapsed_ms, 3)
            peer_json = self._peer_json(peer)
            if len(pending) == 1:
                chunk = self._access_line(pending[0], now, ms, peer_json)
            else:
                chunk = "".join(
                    self._access_line(p, now, ms, peer_json)
                    for p in pending
                )
            with self._access_lock:
                self.access_log.write(chunk)
        with self._count_lock:
            self._in_flight -= 1
            self.requests_finalized += len(pending)

    #: encoded-op memo for the access log (ops form a tiny vocabulary;
    #: the fallback encodes adversarial op strings safely)
    _op_json_cache: dict = {}

    @classmethod
    def _op_json(cls, op: str) -> str:
        encoded = cls._op_json_cache.get(op)
        if encoded is None:
            encoded = cls._op_json_cache[op] = json.dumps(op)
        return encoded

    _peer_json_cache: dict = {}

    @classmethod
    def _peer_json(cls, peer: Optional[str]) -> str:
        encoded = cls._peer_json_cache.get(peer)
        if encoded is None:
            if len(cls._peer_json_cache) > 4096:  # rotating client ports
                cls._peer_json_cache.clear()
            encoded = cls._peer_json_cache[peer] = json.dumps(peer)
        return encoded

    @classmethod
    def _access_line(cls, p: _Pending, now: float, ms: float,
                     peer_json: str) -> str:
        """One JSONL access-log record, hand-assembled.

        ``json.dumps`` over the whole record costs ~8x this; only the
        caller-controlled strings (``id``, unseen ``op`` spellings) go
        through the encoder for escaping — every other field is a
        number, a bool, or an internal literal (status codes,
        ``hit``/``miss``) that can never contain a quote."""
        rid = p.request_id
        if rid is None:
            id_json = "null"
        elif type(rid) is int:
            id_json = str(rid)
        else:
            id_json = json.dumps(rid)
        code_json = "null" if p.code is None else '"' + p.code + '"'
        cache_json = "null" if p.cache is None else '"' + p.cache + '"'
        # demand-fallback answers carry a "mode" field; store answers
        # keep the historical record shape
        mode_json = "" if p.mode is None else f'"mode": "{p.mode}", '
        return (
            f'{{"t": {now}, "rid": {p.rid}, "id": {id_json}, '
            f'"op": {cls._op_json(p.op)}, '
            f'"ok": {"true" if p.ok else "false"}, "status": {p.status}, '
            f'"code": {code_json}, "ms": {ms}, "cache": {cache_json}, '
            f'{mode_json}"peer": {peer_json}}}\n'
        )

    # -- graceful shutdown -------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin a graceful stop: no new lines are answered after the
        current ones, and a live TCP ``serve_forever`` loop is unwound
        from a helper thread (``shutdown()`` must not be called from a
        thread it would join — including the signal-handling main
        thread, which is *inside* ``serve_forever``)."""
        self.shutting_down.set()
        srv = self._tcp_server
        if srv is not None:
            threading.Thread(target=srv.shutdown, daemon=True).start()

    def install_signal_handlers(self) -> None:
        """Map SIGTERM/SIGINT onto the graceful-shutdown path (the
        daemon contract: stop accepting, drain in-flight lines, flush
        the access log, emit a final telemetry snapshot, exit 0).

        Only callable from the main thread (a Python restriction);
        the CLI installs these, tests driving transports from worker
        threads simply don't."""

        def _handler(signum, frame):
            signame = signal.Signals(signum).name
            self._signal_received = signame
            self.request_shutdown()
            if self._transport == "stdio":
                # unwind the blocking readline in the main thread
                raise _ShutdownSignal(signame)

        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, _handler)

    def _drain(self, timeout: float = 5.0) -> bool:
        """Wait for in-flight lines to finalize; True when fully
        drained."""
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._count_lock:
                if self._in_flight == 0:
                    return True
            time.sleep(0.01)
        with self._count_lock:
            return self._in_flight == 0

    def _shutdown_report(self, log: IO[str]) -> None:
        """Flush the access log and write the final telemetry snapshot
        (one grep-able ``repro:``-prefixed JSON line) to ``log``."""
        if self.access_log is not None:
            with self._access_lock:
                self.access_log.flush()
        via = self._signal_received or "request"
        log.write(
            f"repro: shutdown ({via}) after "
            f"{self.requests_finalized} request(s), "
            f"{self.uptime_seconds():.3f}s uptime\n"
        )
        if self.telemetry is not None:
            snapshot = json.dumps(self.telemetry.as_dict(), sort_keys=True)
            log.write(f"repro: telemetry {snapshot}\n")
        log.flush()

    # -- stdio transport ---------------------------------------------------

    def serve_stdio(
        self,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
        log: Optional[IO[str]] = None,
    ) -> int:
        """Serve JSON lines until EOF, a ``shutdown`` request, or a
        handled signal.

        Returns the exit status for the CLI: 0 on a clean stop (the
        degraded state is carried per-envelope, not in the exit code —
        a daemon that answered every request shut down cleanly).
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        log = log if log is not None else sys.stderr
        self._transport = "stdio"
        try:
            for line in stdin:
                received_ns = time.perf_counter_ns()
                self._note_begin()
                pending: list[_Pending] = []
                try:
                    pending = self._process_line(line)
                    for p in pending:
                        stdout.write(p.text + "\n")
                    stdout.flush()
                finally:
                    self._finalize(pending, received_ns, peer="stdio")
                if self.shutting_down.is_set():
                    break
        except _ShutdownSignal:
            pass
        if self.shutting_down.is_set() or self._signal_received:
            self._shutdown_report(log)
        return 0

    # -- TCP transport -----------------------------------------------------

    def serve_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_cb=None,
        log=None,
    ) -> int:
        """Serve JSON lines over TCP until a ``shutdown`` request or a
        handled signal.

        ``port=0`` binds an ephemeral port; the actual address is
        announced via ``ready_cb((host, port))`` (tests) and one
        ``repro: serving <program> on HOST:PORT`` line on ``log``
        (defaults to stderr — the CLI contract scripts can wait for).
        On shutdown the listening socket stops accepting, in-flight
        lines drain (bounded wait), the access log is flushed and the
        final telemetry snapshot lands on ``log`` before this returns —
        a clean shutdown leaves no orphan socket behind.
        """
        outer = self
        log = log if log is not None else sys.stderr
        self._transport = "tcp"

        class Handler(socketserver.StreamRequestHandler):
            # per-connection read/idle timeout (StreamRequestHandler
            # applies it in setup()): a stalled peer releases its
            # handler thread instead of pinning it
            timeout = outer.idle_timeout

            def handle(self) -> None:
                peer = "%s:%s" % self.client_address[:2]
                while not outer.shutting_down.is_set():
                    try:
                        raw = self.rfile.readline()
                    except socket.timeout:
                        with outer._count_lock:
                            outer.idle_timeouts += 1
                        if outer.telemetry is not None:
                            outer._tel_idle_timeouts.inc()
                        if outer.trace is not None:
                            outer.trace.instant(
                                "server.idle_timeout", "server", peer=peer,
                            )
                        break
                    except OSError:
                        break  # peer reset mid-read
                    if not raw:
                        break
                    received_ns = time.perf_counter_ns()
                    line = raw.decode("utf-8", errors="replace")
                    outer._note_begin()
                    pending = []
                    dropped = False
                    try:
                        pending = outer._process_line(line)
                        if (
                            outer.faults is not None
                            and pending
                            and outer.faults.drop_connection(line.strip())
                        ):
                            # injected mid-request disconnect: the line
                            # was fully processed (and is finalized
                            # below — the accounting invariant holds),
                            # but the answer never reaches the peer
                            with outer._count_lock:
                                outer.fault_disconnects += 1
                            if outer.telemetry is not None:
                                outer._tel_fault_disconnects.inc()
                            dropped = True
                        else:
                            try:
                                for p in pending:
                                    self.wfile.write(
                                        p.text.encode("utf-8") + b"\n"
                                    )
                                self.wfile.flush()
                            except OSError:
                                # peer went away mid-write; the full
                                # pending list still finalizes so the
                                # counters account for every read line
                                with outer._count_lock:
                                    outer.client_disconnects += 1
                                if outer.telemetry is not None:
                                    outer._tel_client_disconnects.inc()
                                dropped = True
                    finally:
                        outer._finalize(pending, received_ns, peer=peer)
                    if dropped:
                        break
                    if outer.shutting_down.is_set():
                        # the shutdown envelope is already on the wire;
                        # request_shutdown() has unwound serve_forever
                        break

            def finish(self) -> None:
                # BufferedWriter.close() re-raises BrokenPipeError when
                # the peer vanished with bytes still buffered; a chaos
                # client must never surface a traceback
                try:
                    super().finish()
                except OSError:
                    pass

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

            def handle_error(self, request, client_address) -> None:
                # never print a traceback for a misbehaving client —
                # one grep-able line instead (the chaos gate greps
                # stderr for "Traceback")
                exc = sys.exc_info()[1]
                try:
                    log.write(
                        f"repro: connection error from "
                        f"{client_address}: {exc!r}\n"
                    )
                    log.flush()
                except OSError:  # pragma: no cover - log stream gone
                    pass

        with Server((host, port), Handler) as server:
            self._tcp_server = server
            try:
                bound_host, bound_port = server.server_address[:2]
                log.write(
                    f"repro: serving {self.engine.program} on "
                    f"{bound_host}:{bound_port}\n"
                )
                log.flush()
                if ready_cb is not None:
                    ready_cb((bound_host, bound_port))
                server.serve_forever(poll_interval=0.05)
            finally:
                self._tcp_server = None
            self._drain()
            self._shutdown_report(log)
        return 0


def _probe_tcp(host: str, port: int, timeout: float = 0.2) -> bool:
    """Whether something is listening on ``host:port`` (used by the
    daemon tests to assert no orphan socket survives a shutdown)."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
