"""Pointer analysis as a service — analyze once, answer many queries.

This package is the demand-query subsystem layered on top of the
analysis engine (see ``docs/QUERY.md``):

* :mod:`repro.query.store` — the persistent analysis store
  (``repro index`` writes it); the canonical run snapshot plus a
  query-ready index of merged per-procedure facts.
* :mod:`repro.query.engine` — the demand API: points-to, alias,
  pointed-by, MOD/REF and call-graph reachability answered from a
  loaded store, with an LRU cache feeding the metrics layer.
* :mod:`repro.query.server` — the long-lived daemon behind ``repro
  serve``: JSON-lines over stdio or TCP, request batching, structured
  error envelopes following the CLI's 0/2/4 status convention.
* :mod:`repro.query.invalidate` — staleness detection for ``repro
  index``: per-procedure IR digests and the minimal stale set
  (changed procedures plus their transitive call-graph dependents).
"""

from .engine import OPS, QueryEngine, QueryError, parse_query_spec
from .invalidate import (
    StaleReport,
    compute_stale,
    compute_stale_between_stores,
    procedure_ir_digest,
    program_ir_digests,
)
from .store import (
    STORE_FORMAT,
    StoreError,
    build_store,
    load_store,
    seal_store,
    source_records,
    store_integrity_digest,
    verify_store_integrity,
    write_store,
)

__all__ = [
    "STORE_FORMAT",
    "StoreError",
    "build_store",
    "write_store",
    "load_store",
    "seal_store",
    "source_records",
    "store_integrity_digest",
    "verify_store_integrity",
    "QueryEngine",
    "QueryError",
    "parse_query_spec",
    "OPS",
    "StaleReport",
    "compute_stale",
    "compute_stale_between_stores",
    "program_ir_digests",
    "procedure_ir_digest",
]
