"""Staleness detection for the analysis store (``repro index``).

The store (:mod:`repro.query.store`) answers demand queries against a
*persisted* solution; this module answers the question every repeated
``repro index`` run must ask first: **is the stored solution still the
solution of these sources?** — and if not, *how little* of it must be
recomputed.

Two digest families cooperate:

* **IR digests** (this module) — one SHA-256 per procedure over a
  canonical rendering of its *lowered* flow graph (node kinds, canonical
  assignment/call text, edge structure — no source coordinates, no
  process-local uids), plus one digest over the global environment
  (globals, static initializers, string literals, external calls).
  These are cheap: re-parsing + re-lowering a unit costs milliseconds
  where re-analysis costs seconds, so the staleness check never runs
  the engine.
* **Solution digests** (:mod:`repro.diagnostics.snapshot`) — per
  procedure over the computed PTF payloads.  The store carries both;
  the incrementality tests compare them to prove that procedures marked
  *clean* by the IR digests really did keep their solution digests.

Canonicalization rules (what makes the IR digest *stable*):

* source **coordinates are excluded** — editing one procedure shifts the
  line numbers of everything below it in the same file, and that must
  not mark the rest of the unit stale;
* string literals are rendered by their **text**, not their ``<strN>``
  interning index (the index is a program-wide counter, so a new literal
  in one unit would otherwise renumber every literal after it);
* node identity is positional (the procedure's reverse-postorder
  index), never the process-local ``uid``.

Staleness propagation: a changed procedure invalidates its **transitive
callers** (the call-graph *dependents*).  In Wilson & Lam's PTF scheme a
caller's summary folds in its callees' side effects — so when a callee
changes, every summary downstream of it on the call graph is suspect —
while a *callee* of a changed procedure keeps its PTFs: they are keyed
by input alias pattern, and at worst a re-analysis presents patterns
that already match (§5.2 reuse).  A change to the global environment
digest invalidates everything (initializers run in the root context).

One class of edit escapes the stored call graph entirely: **function-
pointer retargeting**.  The stored graph is the *pre-edit* resolution —
if an edit makes a changed (or added) procedure a new indirect-call
target, the edge from the indirect call site to it exists only in the
*post-edit* world, so pure stored-graph propagation under-invalidates
and a query would keep answering with the old target.  The widening
rule: whenever a changed/added procedure is address-taken (before *or*
after the edit), or the address-taken set itself moved, every procedure
containing an indirect call site goes stale too (any of them is
compatible with the retargeted pointer as far as digests can tell), and
their transitive callers with them.  Stores record ``address_taken`` /
``indirect_callers`` next to the digests for this; older stores missing
the record fall back to recomputing both sides from the new program.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.program import Procedure, Program

__all__ = [
    "procedure_ir_digest",
    "program_ir_digests",
    "StaleReport",
    "compute_stale",
    "compute_stale_between_stores",
]

_STR_TOKEN = re.compile(r"<(str\d+)>")


def _canonical_text(text: str, program: "Program") -> str:
    """Replace program-wide ``<strN>`` interning indices with the literal
    text they stand for, so per-procedure digests do not depend on how
    many literals *other* units interned first."""

    def sub(match: "re.Match[str]") -> str:
        block = program.string_blocks.get(match.group(1))
        if block is None:  # pragma: no cover - defensive
            return match.group(0)
        return f"<lit:{block.text!r}>"

    return _STR_TOKEN.sub(sub, text)


def procedure_ir_digest(proc: "Procedure", program: "Program") -> str:
    """SHA-256 over a canonical rendering of one lowered procedure.

    Covers the formal list, the local name space, and every flow-graph
    node (kind + canonical statement text + successor edges by RPO
    position).  Excludes source coordinates and process-local uids —
    see the module docstring for the rules and why.
    """
    nodes = list(proc.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    lines = [
        f"proc {proc.name}",
        "formals " + ",".join(f.name for f in proc.formals),
        "locals " + ",".join(sorted(proc.locals)),
        f"varargs {proc.is_varargs}",
    ]
    for i, node in enumerate(nodes):
        text = _canonical_text(node.describe(), program)
        succs = ",".join(str(index[s]) for s in node.succs if s in index)
        lines.append(f"{i} {node.kind} {text} -> {succs}")
    payload = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def program_ir_digests(program: "Program") -> dict:
    """Per-procedure IR digests plus the global-environment digest.

    The ``globals`` digest covers global names/sizes, static initializers
    (rendered canonically), string-literal texts and the set of external
    calls — anything that feeds the root context and therefore every
    procedure's analysis.
    """
    procedures = {
        name: procedure_ir_digest(proc, program)
        for name, proc in sorted(program.procedures.items())
    }
    env_lines = []
    for name, sym in sorted(program.globals.items()):
        env_lines.append(f"global {name} size={getattr(sym, 'size', None)}")
    for init in program.global_inits:
        env_lines.append(
            "init "
            + _canonical_text(f"{init.dst} = {init.src} ({init.size}B)", program)
        )
    for block in program.string_blocks.values():
        env_lines.append(f"string {block.text!r}")
    for name in sorted(program.external_calls):
        env_lines.append(f"external {name}")
    env_lines.sort()
    globals_digest = hashlib.sha256(
        "\n".join(env_lines).encode("utf-8")
    ).hexdigest()
    return {"procedures": procedures, "globals": globals_digest}


# ---------------------------------------------------------------------------
# stale-set computation
# ---------------------------------------------------------------------------


@dataclass
class StaleReport:
    """Which procedures of a store must be recomputed, and why.

    ``stale`` is the minimal recomputation set: changed + added
    procedures plus their transitive call-graph dependents (callers).
    ``clean`` is its complement over the current program — the work a
    repeated ``repro index`` run may skip.
    """

    #: procedures whose IR digest moved
    changed: list[str] = field(default_factory=list)
    #: procedures present now but absent from the store
    added: list[str] = field(default_factory=list)
    #: procedures in the store but gone from the sources
    removed: list[str] = field(default_factory=list)
    #: transitive callers of changed/added/removed procedures
    dependents: list[str] = field(default_factory=list)
    #: True when the global-environment digest moved (everything stale)
    globals_changed: bool = False
    #: the union: every procedure whose PTFs must be recomputed
    stale: list[str] = field(default_factory=list)
    #: current procedures whose stored solution remains valid
    clean: list[str] = field(default_factory=list)

    @property
    def up_to_date(self) -> bool:
        return not self.stale and not self.removed and not self.globals_changed

    def as_dict(self) -> dict:
        return {
            "up_to_date": self.up_to_date,
            "changed": self.changed,
            "added": self.added,
            "removed": self.removed,
            "dependents": self.dependents,
            "globals_changed": self.globals_changed,
            "stale": self.stale,
            "clean": self.clean,
        }

    def summary_lines(self) -> list[str]:
        if self.up_to_date:
            return ["store is up to date (all procedure digests match)"]
        lines = []
        if self.globals_changed:
            lines.append("global environment changed: every procedure is stale")
        if self.changed:
            lines.append("changed   : " + ", ".join(self.changed))
        if self.added:
            lines.append("added     : " + ", ".join(self.added))
        if self.removed:
            lines.append("removed   : " + ", ".join(self.removed))
        if self.dependents:
            lines.append("dependents: " + ", ".join(self.dependents))
        lines.append(
            f"stale {len(self.stale)}/{len(self.stale) + len(self.clean)} "
            "procedure(s); clean work will be skipped"
        )
        return lines


def _transitive_callers(call_graph: dict, roots: set) -> set:
    """Every procedure that can reach a root through call edges (the
    dependents whose summaries embed a root's side effects)."""
    callers_of: dict[str, set] = {}
    for caller, callees in call_graph.items():
        for callee in callees:
            callers_of.setdefault(callee, set()).add(caller)
    out: set = set()
    work = list(roots)
    while work:
        name = work.pop()
        for caller in callers_of.get(name, ()):
            if caller not in out and caller not in roots:
                out.add(caller)
                work.append(caller)
    return out


def compute_stale(store: dict, program: "Program") -> StaleReport:
    """Compare a store's recorded IR digests against a freshly lowered
    ``program`` and report the minimal set of procedures whose PTFs must
    be recomputed.

    The comparison is pure digest work — the analysis engine never runs.
    The store's *recorded* call graph drives dependent propagation (the
    new program's call graph may differ for stale procedures, but every
    edge that could transmit a stale summary into a clean procedure is,
    by definition, an edge the old solution had).  Newly *added*
    procedures seed dependents through the new program's static call
    edges instead (the old graph cannot name them).
    """
    stored = store.get("ir", {})
    stored_procs: dict = stored.get("procedures", {})
    current = program_ir_digests(program)
    cur_procs = current["procedures"]

    report = StaleReport()
    report.globals_changed = bool(
        stored.get("globals") and stored["globals"] != current["globals"]
    )
    report.changed = sorted(
        name
        for name, digest in cur_procs.items()
        if name in stored_procs and stored_procs[name] != digest
    )
    report.added = sorted(set(cur_procs) - set(stored_procs))
    report.removed = sorted(set(stored_procs) - set(cur_procs))

    if report.globals_changed:
        report.stale = sorted(cur_procs)
        report.clean = []
        return report

    roots = set(report.changed) | set(report.added) | set(report.removed)
    call_graph = {
        caller: set(callees)
        for caller, callees in store.get("call_graph", {}).items()
    }
    # added procedures are reachable only through the *new* program's
    # static call edges; fold those in so their callers invalidate
    if report.added:
        from ..analysis.guards import _direct_targets

        for name, proc in program.procedures.items():
            for node in proc.call_nodes():
                for target in _direct_targets(node):
                    if target in report.added:
                        call_graph.setdefault(name, set()).add(target)
    widened = _fnptr_widening(stored, program, roots)
    dependents = _transitive_callers(call_graph, roots | widened) | widened
    report.dependents = sorted((dependents - roots) & set(cur_procs))
    stale = (roots | dependents) & set(cur_procs)
    report.stale = sorted(stale)
    report.clean = sorted(set(cur_procs) - stale)
    return report


def compute_stale_between_stores(old_store: dict, new_store: dict) -> StaleReport:
    """Which procedures moved between two *store documents*.

    The hot-swap path of the serve daemon (``reload`` admin op) uses
    this to invalidate only the stale slice of the query LRU: both
    stores already carry their IR digests, call graphs and the
    ``address_taken`` / ``indirect_callers`` records, so the comparison
    needs no program lowering at all — pure recorded-digest work, safe
    to run under live traffic.

    The same propagation rules as :func:`compute_stale` apply, driven
    from the records: dependents travel over the *union* of the two
    call graphs (an edge present in either world can transmit a stale
    summary), and function-pointer widening fires from the recorded
    address-taken sets.  A missing globals digest on either side is
    treated as changed (conservative: cannot prove it didn't move).
    """
    old_ir = old_store.get("ir") or {}
    new_ir = new_store.get("ir") or {}
    old_procs: dict = old_ir.get("procedures") or {}
    new_procs: dict = new_ir.get("procedures") or {}

    report = StaleReport()
    old_globals = old_ir.get("globals")
    new_globals = new_ir.get("globals")
    report.globals_changed = (
        old_globals is None or new_globals is None or old_globals != new_globals
    )
    report.changed = sorted(
        name
        for name, digest in new_procs.items()
        if name in old_procs and old_procs[name] != digest
    )
    report.added = sorted(set(new_procs) - set(old_procs))
    report.removed = sorted(set(old_procs) - set(new_procs))

    if report.globals_changed:
        report.stale = sorted(new_procs)
        report.clean = []
        return report

    roots = set(report.changed) | set(report.added) | set(report.removed)
    call_graph: dict = {}
    for store in (old_store, new_store):
        for caller, callees in (store.get("call_graph") or {}).items():
            call_graph.setdefault(caller, set()).update(callees)

    widened: set = set()
    if roots:
        old_taken_rec = old_ir.get("address_taken")
        new_taken_rec = new_ir.get("address_taken")
        old_taken = set(old_taken_rec or ())
        new_taken = set(new_taken_rec or ())
        indirect = set(old_ir.get("indirect_callers") or ()) | set(
            new_ir.get("indirect_callers") or ()
        )
        if old_taken_rec is None or new_taken_rec is None:
            # legacy store without the record: any edit near indirect
            # call sites must widen (the taken set is unknowable)
            trigger = bool(indirect)
        else:
            trigger = bool(roots & (old_taken | new_taken)) or (
                old_taken != new_taken
            )
        if trigger:
            widened = indirect & set(new_procs)

    dependents = _transitive_callers(call_graph, roots | widened) | widened
    report.dependents = sorted((dependents - roots) & set(new_procs))
    stale = (roots | dependents) & set(new_procs)
    report.stale = sorted(stale)
    report.clean = sorted(set(new_procs) - stale)
    return report


def _fnptr_widening(stored: dict, program: "Program", roots: set) -> set:
    """Extra stale seeds covering function-pointer retargeting edits.

    If any root procedure is address-taken — in the stored world or the
    edited one — or the address-taken set itself moved, the stored call
    graph cannot be trusted to name the indirect call edges into the
    roots, so every procedure containing an indirect call site (old or
    new) is widened into the stale set.  Stores predating the
    ``address_taken`` record get the conservative recompute-both-sides
    treatment.
    """
    if not roots:
        return set()
    from ..analysis.scc import address_taken_procs, indirect_call_procs

    cur_taken = address_taken_procs(program)
    cur_indirect = indirect_call_procs(program)
    old_taken_rec = stored.get("address_taken")
    old_indirect_rec = stored.get("indirect_callers")
    old_taken = set(old_taken_rec) if old_taken_rec is not None else set()
    old_indirect = set(old_indirect_rec) if old_indirect_rec is not None else set()
    if old_taken_rec is None:
        # legacy store without the record: the old address-taken set is
        # unknowable, so any edit near indirect call sites must widen
        trigger = bool(cur_indirect | old_indirect)
    else:
        trigger = bool(roots & (cur_taken | old_taken)) or (
            set(old_taken_rec) != cur_taken
        )
    if not trigger:
        return set()
    return (cur_indirect | old_indirect) & set(program.procedures)
