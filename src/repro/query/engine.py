"""Demand-driven query API over a persisted analysis store.

Where :class:`~repro.analysis.results.AnalysisResult` answers questions
about a live analyzer, this engine answers the same questions from the
on-disk store (:mod:`repro.query.store`) — no parsing, no lowering, no
fixpoint.  The exhaustive-vs-demand tradeoff is the classic one: the
exhaustive analysis ran once at ``repro index`` time; every question
after that is a dict probe plus a little overlap arithmetic.

Operations (the ``op`` field of a request, and the query grammar the
CLI/daemon parse — see :func:`parse_query_spec`):

``points_to``      targets of ``var`` at the exit of ``proc``
``alias``          may/no verdict for two variables, with the witness
                   location-set overlap (the pair of stored facts whose
                   byte ranges intersect, per PTF — verdicts agree with
                   ``AnalysisResult.may_alias`` by construction)
``pointed_by``     reverse index: which ``(proc, var)`` may point at a
                   named block
``modref``         caller-visible MOD/REF sets of a procedure, or of a
                   call site (``proc:line`` — the union over the site's
                   resolved callees)
``reaches``        call-graph reachability, with a shortest witness path
``callees`` / ``callers``   one-step call-graph neighbourhoods
``stats``          engine counters (queries, LRU hit rate)

Every answer that names a points-to fact carries a ready-made ``repro
explain`` invocation (``answer["explain"]``) reconstructing the
provenance chain from the indexed sources — the store persists *what*
holds; ``repro explain`` re-derives *why*.

Caching: a bounded LRU keyed by the canonical request.  Hit/miss
counters flow into the shared :class:`repro.diagnostics.metrics.Metrics`
vocabulary (``queries`` / ``query_cache_hits`` / ``query_cache_misses``,
hit rate derived through the one :func:`~repro.diagnostics.metrics.safe_ratio`
guard) and, when a tracer is attached, each probe emits a ``query.hit``
/ ``query.miss`` instant.  The engine is thread-safe (one lock around
probe+compute) — the daemon serves concurrent clients through a single
engine so they share the cache.

Deadlines: pass an armed :class:`repro.analysis.guards.AnalysisBudget`
to :meth:`QueryEngine.query` and the engine raises
:class:`~repro.analysis.guards.GuardTripped` (reason ``deadline``) when
the budget expires — the same guards machinery, and the same structured
reason strings, as the analysis engine's degradation ladder.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from ..analysis.guards import AnalysisBudget, GuardTripped
from ..diagnostics.metrics import Metrics, safe_ratio
from ..frontend.ctypes_model import WORD_SIZE
from ..memory.locset import ranges_overlap_mod
from .store import STORE_FORMAT

__all__ = ["QueryEngine", "QueryError", "parse_query_spec", "OPS"]

#: the closed operation vocabulary (requests with any other ``op`` are
#: rejected with a ``bad-request`` error envelope)
OPS = (
    "points_to",
    "alias",
    "pointed_by",
    "modref",
    "reaches",
    "callees",
    "callers",
    "stats",
)


class QueryError(Exception):
    """A query that cannot be answered.

    ``code`` is a stable machine-readable string (``bad-request``,
    ``unknown-proc``, ``unknown-var``, ``unknown-site``); the CLI and
    daemon map every ``QueryError`` to the hard-error class (exit/status
    2) of the 0/2/4 convention.
    """

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


def _split_at(text: str, default_proc: str = "main") -> tuple[str, str]:
    """``NAME[@PROC]`` -> ``(name, proc)`` — the ``repro explain``
    convention."""
    name, _, proc = text.partition("@")
    return name.strip(), (proc.strip() or default_proc)


def parse_query_spec(spec: str) -> dict:
    """Parse one textual query into a request dict.

    Grammar (one query per argument; ``PROC`` defaults to ``main``)::

        points-to VAR[@PROC]
        alias A B[@PROC]          (or  alias A,B[@PROC])
        pointed-by NAME
        modref PROC
        modref PROC:LINE          (call-site form)
        reaches SRC DST
        callees PROC
        callers PROC
        stats
    """
    words = spec.replace(",", " ").split()
    if not words:
        raise QueryError("bad-request", "empty query")
    op = words[0].replace("-", "_")
    args = words[1:]
    if op == "points_to":
        if len(args) != 1:
            raise QueryError("bad-request", f"points-to takes one VAR[@PROC]: {spec!r}")
        var, proc = _split_at(args[0])
        return {"op": "points_to", "var": var, "proc": proc}
    if op == "alias":
        if len(args) != 2:
            raise QueryError("bad-request", f"alias takes two variables: {spec!r}")
        a, proc_a = _split_at(args[0])
        b, proc_b = _split_at(args[1], default_proc=proc_a)
        if proc_a != "main" and proc_b == "main":
            proc_b = proc_a
        return {"op": "alias", "a": a, "b": b, "proc": proc_b}
    if op == "pointed_by":
        if len(args) != 1:
            raise QueryError("bad-request", f"pointed-by takes one NAME: {spec!r}")
        return {"op": "pointed_by", "name": args[0]}
    if op == "modref":
        if len(args) != 1:
            raise QueryError("bad-request", f"modref takes PROC or PROC:LINE: {spec!r}")
        target, _, line = args[0].rpartition(":")
        if target and line.isdigit():
            return {"op": "modref", "proc": target, "line": int(line)}
        return {"op": "modref", "proc": args[0]}
    if op == "reaches":
        if len(args) != 2:
            raise QueryError("bad-request", f"reaches takes SRC DST: {spec!r}")
        return {"op": "reaches", "src": args[0], "dst": args[1]}
    if op in ("callees", "callers"):
        if len(args) != 1:
            raise QueryError("bad-request", f"{op} takes one PROC: {spec!r}")
        return {"op": op, "proc": args[0]}
    if op == "stats":
        return {"op": "stats"}
    raise QueryError("bad-request", f"unknown operation {words[0]!r} in {spec!r}")


class QueryEngine:
    """Answers demand queries against one loaded store document."""

    def __init__(
        self,
        store: dict,
        metrics: Optional[Metrics] = None,
        tracer=None,
        cache_size: int = 256,
        demand=None,
    ) -> None:
        if store.get("format") != STORE_FORMAT:
            raise ValueError(
                f"unsupported store format {store.get('format')!r} "
                f"(expected {STORE_FORMAT!r})"
            )
        self.store = store
        self.metrics = metrics if metrics is not None else Metrics()
        self.trace = tracer
        #: optional :class:`repro.analysis.demand.DemandTier` — probed on
        #: every query; stale facts are either recomputed on a demand
        #: slice (tier enabled) or annotated ``info["stale"]`` (disabled)
        self.demand = demand
        self.cache_size = max(0, cache_size)
        self._cache: OrderedDict[str, dict] = OrderedDict()
        #: key -> frozenset of procedures the cached answer depends on,
        #: or None for answers with program-wide structure dependencies
        #: (call graph, reverse index); drives the hot-swap carryover
        #: (:meth:`adopt_cache`)
        self._cache_deps: dict = {}
        self._lock = threading.Lock()
        self._index = store["index"]
        self._procs: dict = self._index["procedures"]
        self._call_graph: dict = store["call_graph"]
        self._sources = [rec["path"] for rec in store.get("sources", [])]

    # -- store facts -------------------------------------------------------

    @property
    def program(self) -> str:
        return self.store.get("program", "<program>")

    @property
    def degraded(self) -> bool:
        """Whether the store was built from a degraded (partial) run —
        answers are then *conservative*, and the daemon/CLI surface the
        partial-results class (status 4) of the 0/2/4 convention."""
        return not self.store["snapshot"]["degradation"]["ok"]

    def _proc(self, name: str) -> dict:
        rec = self._proc_record_or_none(name)
        if rec is None:
            raise QueryError("unknown-proc", f"no procedure named {name!r}")
        return rec

    # accessor seams overridden by the demand engine
    # (:class:`repro.analysis.demand.DemandEngine` materializes these
    # lazily from a live analysis instead of a stored index)

    def _proc_record_or_none(self, name: str) -> Optional[dict]:
        return self._procs.get(name)

    def _has_proc(self, name: str) -> bool:
        return name in self._procs

    def _pointed_by_table(self) -> dict:
        return self.store["index"]["pointed_by"]

    def _callsite_table(self) -> list:
        return self.store["index"]["callsites"]

    def _graph(self) -> dict:
        return self._call_graph

    def _check_var(self, proc_rec: dict, proc: str, var: str) -> None:
        known = proc_rec.get("queryable", ())
        if known and var not in known:
            raise QueryError(
                "unknown-var", f"no variable named {var!r} in {proc!r}"
            )

    def _explain_cmd(self, var: str, proc: str) -> str:
        files = " ".join(self._sources) if self._sources else "FILES"
        return f"repro explain {files} --query {var}@{proc}"

    # -- caching -----------------------------------------------------------

    def _canonical_key(self, request: dict) -> str:
        return "\x1f".join(
            f"{k}={request[k]}" for k in sorted(request) if k != "id"
        )

    def _cached(self, request: dict, compute, info: Optional[dict] = None) -> dict:
        key = self._canonical_key(request)
        op = request.get("op", "?")
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            self.metrics.query_cache_hits += 1
            if info is not None:
                info["cache"] = "hit"
            if self.trace is not None:
                self.trace.instant("query.hit", "query", op=op, key=key)
            return hit
        self.metrics.query_cache_misses += 1
        if info is not None:
            info["cache"] = "miss"
        if self.trace is not None:
            self.trace.instant("query.miss", "query", op=op, key=key)
        answer = compute()
        if self.cache_size:
            self._cache[key] = answer
            self._cache_deps[key] = self._answer_deps(request, answer)
            while len(self._cache) > self.cache_size:
                evicted, _ = self._cache.popitem(last=False)
                self._cache_deps.pop(evicted, None)
        return answer

    @staticmethod
    def _answer_deps(request: dict, answer: dict):
        """The procedures a cached answer's bytes depend on, or None
        when the dependency is program-wide structure (the call graph
        for ``reaches``/``callees``/``callers``, the reverse index for
        ``pointed_by``) — those entries survive a hot swap only when
        the stores are digest-identical everywhere."""
        op = request.get("op")
        if op in ("points_to", "alias"):
            return frozenset((request.get("proc", "main"),))
        if op == "modref":
            if request.get("line") is None:
                return frozenset((request.get("proc", ""),))
            # a call-site answer folds in its resolved callees' sets;
            # unresolved callees count too (they may appear in the new
            # store as *added* procedures, which must invalidate)
            deps = {request.get("proc", "")}
            deps.update(answer.get("callees", ()))
            deps.update(answer.get("unresolved", ()))
            return frozenset(deps)
        return None

    def adopt_cache(self, old: "QueryEngine", report) -> tuple[int, int]:
        """Carry over the still-valid slice of another engine's LRU.

        ``report`` is the :class:`~repro.query.invalidate.StaleReport`
        between ``old.store`` and this engine's store.  An entry
        carries iff every procedure it depends on is *clean* (its IR
        digest, and therefore its indexed facts, did not move) — so a
        carried answer, while rendered from the old store, states facts
        the new store proves identical.  Structure-dependent entries
        (deps ``None``) carry only when the stores are fully
        digest-identical; a source-path change or a globals-digest move
        drops everything (answers embed ``repro explain`` command lines
        built from the source list).

        Returns ``(carried, dropped)``.  Thread-safe against concurrent
        queries on both engines.
        """
        with old._lock:
            items = list(old._cache.items())
            deps_map = dict(old._cache_deps)
        if not items:
            return (0, 0)
        if self.cache_size == 0:
            return (0, len(items))
        stale = set(report.stale) | set(report.removed)
        old_sources = [r.get("path") for r in old.store.get("sources", [])]
        new_sources = [r.get("path") for r in self.store.get("sources", [])]
        comparable = old_sources == new_sources and not report.globals_changed
        carried = dropped = 0
        with self._lock:
            for key, answer in items:
                deps = deps_map.get(key)
                if not comparable:
                    ok = False
                elif deps is None:
                    ok = report.up_to_date
                else:
                    ok = not (deps & stale)
                if ok:
                    self._cache[key] = answer
                    self._cache_deps[key] = deps
                    carried += 1
                else:
                    dropped += 1
            while len(self._cache) > self.cache_size:
                evicted, _ = self._cache.popitem(last=False)
                self._cache_deps.pop(evicted, None)
        return (carried, dropped)

    # -- dispatch ----------------------------------------------------------

    def query(
        self,
        request: dict,
        budget: Optional[AnalysisBudget] = None,
        info: Optional[dict] = None,
    ) -> dict:
        """Answer one request dict (see :data:`OPS`).

        Raises :class:`QueryError` for unanswerable requests and
        :class:`~repro.analysis.guards.GuardTripped` when ``budget``'s
        deadline expired.  Thread-safe; answers are shared cache entries
        and must be treated as immutable by callers.

        ``info``, when given, is filled in-place with per-call facts the
        answer itself must not carry (answers are shared cache entries,
        byte-identical across calls): ``info["cache"]`` is set to
        ``"hit"`` or ``"miss"`` for cacheable ops; when a demand tier is
        attached, ``info["mode"] = "demand"`` marks answers recomputed
        on a demand slice and ``info["stale"] = True`` marks answers
        served from a store known-stale for the facts they state — the
        daemon lifts both into the response envelope.
        """
        op = request.get("op")
        if op not in OPS:
            raise QueryError("bad-request", f"unknown op {op!r}")
        if budget is not None and budget.deadline_exceeded():
            if self.trace is not None:
                self.trace.instant(
                    "query.deadline", "query", op=op, key=self._canonical_key(request)
                )
            raise GuardTripped("deadline", proc="<query>", detail=str(op))
        with self._lock:
            self.metrics.queries += 1
            if op == "stats":  # never cached: reports the live counters
                return self.stats()
            if self.demand is not None:
                route = self.demand.route(request, self)
                if route == "demand":
                    # bypass this engine's LRU entirely: the demand
                    # engine answers (and caches) from its own fresh
                    # analysis, so a later reload's adopt_cache never
                    # sees a demand answer under a store-keyed entry
                    return self.demand.answer(request, budget=budget, info=info)
                if route == "stale" and info is not None:
                    info["stale"] = True
            return self._cached(
                request, lambda: self._compute(op, request), info=info
            )

    def _compute(self, op: str, request: dict) -> dict:
        if op == "points_to":
            return self.points_to(request.get("var", ""), request.get("proc", "main"))
        if op == "alias":
            return self.alias(
                request.get("a", ""), request.get("b", ""), request.get("proc", "main")
            )
        if op == "pointed_by":
            return self.pointed_by(request.get("name", ""))
        if op == "modref":
            if request.get("line") is not None:
                return self.modref_callsite(
                    request.get("proc", ""), int(request["line"])
                )
            return self.modref(request.get("proc", ""))
        if op == "reaches":
            return self.reaches(request.get("src", ""), request.get("dst", ""))
        if op == "callees":
            return self.callees(request.get("proc", ""))
        return self.callers(request.get("proc", ""))

    # -- operations --------------------------------------------------------

    def points_to(self, var: str, proc: str = "main") -> dict:
        rec = self._proc(proc)
        self._check_var(rec, proc, var)
        entry = rec["vars"].get(var, {"targets": [], "locs": []})
        return {
            "op": "points_to",
            "proc": proc,
            "var": var,
            "targets": list(entry["targets"]),
            "locs": [list(loc) for loc in entry["locs"]],
            "explain": self._explain_cmd(var, proc),
        }

    def alias(self, a: str, b: str, proc: str = "main") -> dict:
        rec = self._proc(proc)
        self._check_var(rec, proc, a)
        self._check_var(rec, proc, b)
        table = rec["alias"]
        rows_a = {row["ptf"]: row["locs"] for row in table.get(a, ())}
        witness = None
        for row in table.get(b, ()):
            locs_a = rows_a.get(row["ptf"])
            if not locs_a:
                continue
            for key_a, off_a, stride_a in locs_a:
                for key_b, off_b, stride_b in row["locs"]:
                    if key_a != key_b:
                        continue
                    if ranges_overlap_mod(
                        off_a, stride_a, WORD_SIZE, off_b, stride_b, WORD_SIZE
                    ):
                        witness = {
                            "ptf": row["ptf"],
                            "block": key_a,
                            "a": [key_a, off_a, stride_a],
                            "b": [key_b, off_b, stride_b],
                        }
                        break
                if witness:
                    break
            if witness:
                break
        return {
            "op": "alias",
            "proc": proc,
            "a": a,
            "b": b,
            "verdict": "may" if witness else "no",
            "witness": witness,
            "explain": [self._explain_cmd(a, proc), self._explain_cmd(b, proc)],
        }

    def pointed_by(self, name: str) -> dict:
        pairs = self._pointed_by_table().get(name, [])
        return {
            "op": "pointed_by",
            "name": name,
            "pointers": [list(p) for p in pairs],
            "explain": [
                self._explain_cmd(var, proc) for proc, var in pairs
            ],
        }

    def modref(self, proc: str) -> dict:
        rec = self._proc(proc)
        modref = rec["modref"]
        return {
            "op": "modref",
            "proc": proc,
            "mod": modref["mod"],
            "ref": modref["ref"],
            "pure": rec["pure"],
            "explain": self._explain_cmd("<mod>", proc),
        }

    def modref_callsite(self, proc: str, line: int) -> dict:
        """MOD/REF of a call site — the union over its resolved callees'
        procedure-level sets.  Callees outside the store (externals,
        libc) are listed as ``unresolved``: their effects are whatever
        the analysis's external policy assumed."""
        if not self._has_proc(proc):
            raise QueryError("unknown-proc", f"no procedure named {proc!r}")
        sites = [
            site
            for site in self._callsite_table()
            if site["proc"] == proc and _coord_line(site["coord"]) == line
        ]
        if not sites:
            raise QueryError(
                "unknown-site", f"no call site at {proc}:{line} in the store"
            )
        mod: dict = {}
        ref: dict = {}
        unresolved: set = set()
        callees: set = set()
        for site in sites:
            for callee in site["callees"]:
                callees.add(callee)
                target = self._proc_record_or_none(callee)
                if target is None:
                    unresolved.add(callee)
                    continue
                for bucket, src in ((mod, target["modref"]["mod"]),
                                    (ref, target["modref"]["ref"])):
                    for name, detail in src.items():
                        rec = bucket.setdefault(
                            name, {"kind": detail["kind"], "locs": set()}
                        )
                        rec["locs"].update(detail["locs"])
        for bucket in (mod, ref):
            for detail in bucket.values():
                detail["locs"] = sorted(detail["locs"])
        return {
            "op": "modref",
            "proc": proc,
            "line": line,
            "sites": [dict(site) for site in sites],
            "callees": sorted(callees),
            "unresolved": sorted(unresolved),
            "mod": {k: mod[k] for k in sorted(mod)},
            "ref": {k: ref[k] for k in sorted(ref)},
            "explain": self._explain_cmd("<mod>", proc),
        }

    def reaches(self, src: str, dst: str) -> dict:
        if src not in self._graph():
            raise QueryError("unknown-proc", f"no procedure named {src!r}")
        path = self._shortest_path(src, dst)
        return {
            "op": "reaches",
            "src": src,
            "dst": dst,
            "reachable": path is not None,
            "path": path or [],
        }

    def callees(self, proc: str) -> dict:
        graph = self._graph()
        if proc not in graph:
            raise QueryError("unknown-proc", f"no procedure named {proc!r}")
        return {
            "op": "callees",
            "proc": proc,
            "callees": sorted(graph.get(proc, ())),
        }

    def callers(self, proc: str) -> dict:
        graph = self._graph()
        known = set(graph) | {
            c for callees in graph.values() for c in callees
        }
        if proc not in known:
            raise QueryError("unknown-proc", f"no procedure named {proc!r}")
        return {
            "op": "callers",
            "proc": proc,
            "callers": sorted(
                caller
                for caller, callees in graph.items()
                if proc in callees
            ),
        }

    def stats(self) -> dict:
        """Live engine counters; never cached."""
        m = self.metrics
        out = {
            "op": "stats",
            "program": self.program,
            "queries": m.queries,
            "cache_hits": m.query_cache_hits,
            "cache_misses": m.query_cache_misses,
            "cache_hit_rate": m.query_cache_hit_rate(),
            "cache_entries": len(self._cache),
            "degraded": self.degraded,
        }
        if self.demand is not None:
            out["demand"] = self.demand.stats()
        return out

    # -- helpers -----------------------------------------------------------

    def _shortest_path(self, src: str, dst: str) -> Optional[list]:
        graph = self._graph()
        if src == dst:
            return [src]
        prev: dict = {src: None}
        frontier = [src]
        while frontier:
            nxt = []
            for name in frontier:
                for callee in sorted(graph.get(name, ())):
                    if callee in prev:
                        continue
                    prev[callee] = name
                    if callee == dst:
                        path = [callee]
                        while prev[path[-1]] is not None:
                            path.append(prev[path[-1]])
                        return list(reversed(path))
                    nxt.append(callee)
            frontier = nxt
        return None


def _coord_line(coord: str) -> Optional[int]:
    """The line number of a ``file:line:col`` coordinate (None when the
    coordinate is missing or malformed)."""
    parts = coord.rsplit(":", 2)
    if len(parts) >= 2:
        try:
            return int(parts[-2])
        except ValueError:
            return None
    return None
