"""IR expressions in *points-to form* (§4.4).

When the front end builds the flow graph it converts every assignment into
points-to form: a variable reference on the right-hand side reads the
*contents* of that variable, so lowering adds an extra dereference to each
rvalue.  After lowering, an operand is a :class:`ValueExpr` — a small set of
terms, each either

* the **address** of a location expression (``&x``, ``a`` decaying to
  ``&a[0]``, a string literal, a function name),
* the **contents** of a location expression (``x``, ``*p``, ``p->f``), or
* an **unknown** non-pointer value (integer literals, the result of
  arithmetic that cannot carry a pointer).

A location expression is either a *constant location set* relative to a
named symbol, or a *dereference* of a pointer-valued :class:`ValueExpr`
decorated with a byte offset and stride ("we simply keep a list of all the
constant location sets and dereference subexpressions found in other
arithmetic expressions", §4.4).

Pointer arithmetic appears as an :class:`AdjustTerm`: simple increments fold
into strides, and arbitrary arithmetic *blurs* the value to a stride-1
whole-block set (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..frontend.ctypes_model import WORD_SIZE

__all__ = [
    "Symbol",
    "LocalSymbol",
    "GlobalSymbol",
    "ProcSymbol",
    "StringSymbol",
    "LocExpr",
    "SymbolLoc",
    "DerefLoc",
    "ValueExpr",
    "Term",
    "AddressTerm",
    "ContentsTerm",
    "AdjustTerm",
    "UnknownTerm",
    "UNKNOWN",
    "unknown_value",
    "address_of",
    "contents_of",
]


# ---------------------------------------------------------------------------
# Symbols
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Symbol:
    """A named storage root the front end resolved an identifier to."""

    name: str
    size: Optional[int] = None

    def __str__(self) -> str:
        return self.name


@dataclass(eq=False)
class LocalSymbol(Symbol):
    """A local variable or formal parameter of one procedure."""

    proc_name: str = ""
    is_formal: bool = False
    formal_index: int = -1


@dataclass(eq=False)
class GlobalSymbol(Symbol):
    """A file-scope variable (including ``static`` locals, which share the
    lifetime and aliasing behaviour of globals)."""

    is_static: bool = False


@dataclass(eq=False)
class ProcSymbol(Symbol):
    """A function name; its address is a function-pointer value."""


@dataclass(eq=False)
class StringSymbol(Symbol):
    """A string literal; ``site`` makes distinct literals distinct blocks."""

    text: str = ""
    site: str = ""


# ---------------------------------------------------------------------------
# Location expressions
# ---------------------------------------------------------------------------


class LocExpr:
    """An expression denoting a set of memory locations (an lvalue)."""

    __slots__ = ()


@dataclass(frozen=True)
class SymbolLoc(LocExpr):
    """A constant location set: ``(symbol, offset, stride)``."""

    symbol: Symbol
    offset: int = 0
    stride: int = 0

    def __str__(self) -> str:
        if self.offset or self.stride:
            return f"{self.symbol.name}[{self.offset}:{self.stride}]"
        return self.symbol.name


@dataclass(frozen=True)
class DerefLoc(LocExpr):
    """Locations reached by dereferencing ``pointer`` then applying
    ``offset``/``stride`` (field access / array indexing through the
    pointer).  ``blur`` marks values produced by arbitrary arithmetic."""

    pointer: "ValueExpr"
    offset: int = 0
    stride: int = 0
    blur: bool = False

    def __str__(self) -> str:
        s = f"*({self.pointer})"
        if self.offset or self.stride:
            s += f"[{self.offset}:{self.stride}]"
        if self.blur:
            s += "?"
        return s


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


class Term:
    """One alternative contributing to a :class:`ValueExpr`."""

    __slots__ = ()


@dataclass(frozen=True)
class AddressTerm(Term):
    """The address of the locations denoted by ``loc``."""

    loc: LocExpr

    def __str__(self) -> str:
        return f"&{self.loc}"


@dataclass(frozen=True)
class ContentsTerm(Term):
    """The value stored in the locations denoted by ``loc``."""

    loc: LocExpr
    size: int = WORD_SIZE

    def __str__(self) -> str:
        return f"{self.loc}"


@dataclass(frozen=True)
class AdjustTerm(Term):
    """Pointer arithmetic applied to an inner value.

    For each pointer value ``v`` of ``value``: yield
    ``v.with_offset(offset).with_stride(stride)``, or ``v.blurred()`` when
    ``blur`` is set.  Simple increments land here with a stride and no blur.
    """

    value: "ValueExpr"
    offset: int = 0
    stride: int = 0
    blur: bool = False

    def __str__(self) -> str:
        tag = "?" if self.blur else f"+{self.offset}:{self.stride}"
        return f"({self.value}){tag}"


@dataclass(frozen=True)
class UnknownTerm(Term):
    """A value that cannot carry a pointer."""

    def __str__(self) -> str:
        return "<unknown>"


UNKNOWN = UnknownTerm()


@dataclass(frozen=True)
class ValueExpr:
    """A set of alternative terms; the value is the union of all of them."""

    terms: tuple[Term, ...] = (UNKNOWN,)

    @property
    def is_unknown(self) -> bool:
        return all(isinstance(t, UnknownTerm) for t in self.terms)

    def combined(self, other: "ValueExpr") -> "ValueExpr":
        """Union of the two values (e.g. the arms of ``?:``)."""
        terms = []
        for t in self.terms + other.terms:
            if t not in terms:
                terms.append(t)
        return ValueExpr(tuple(terms))

    def __str__(self) -> str:
        return " | ".join(str(t) for t in self.terms)


def unknown_value() -> ValueExpr:
    """A :class:`ValueExpr` carrying no pointer information."""
    return ValueExpr((UNKNOWN,))


def address_of(loc: LocExpr) -> ValueExpr:
    return ValueExpr((AddressTerm(loc),))


def contents_of(loc: LocExpr, size: int = WORD_SIZE) -> ValueExpr:
    return ValueExpr((ContentsTerm(loc, size),))
