"""Flow-graph nodes (§4, Figure 8).

The analysis walks a per-procedure flow graph whose nodes are individual
statements: assignments, calls, meets (control-flow joins, where φ-functions
live), branches (pure control flow) and the entry/exit markers.  ``return
e`` lowers to an assignment into the procedure's return-value block followed
by an edge to the exit node.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from .expr import LocExpr, ValueExpr

if TYPE_CHECKING:  # pragma: no cover
    from .program import Procedure

__all__ = [
    "Node",
    "EntryNode",
    "ExitNode",
    "AssignNode",
    "CallNode",
    "MeetNode",
    "BranchNode",
]

_node_counter = itertools.count()


class Node:
    """A node in a procedure's flow graph."""

    kind = "node"

    def __init__(self, proc: "Procedure", coord: Optional[str] = None) -> None:
        self.uid = next(_node_counter)
        self.proc = proc
        self.coord = coord  # source position, for diagnostics
        self.preds: list[Node] = []
        self.succs: list[Node] = []
        # filled in by cfg finalization
        self.rpo_index: int = -1
        self.idom: Optional[Node] = None
        self.dom_children: list[Node] = []
        self.dom_frontier: list[Node] = []
        # dominator-tree intervals for O(1) dominance queries
        self.dom_pre: int = -1
        self.dom_post: int = -1

    def add_succ(self, other: "Node") -> None:
        if other not in self.succs:
            self.succs.append(other)
            other.preds.append(self)

    def dominates(self, other: "Node") -> bool:
        """Whether self dominates other (both must be reachable)."""
        return self.dom_pre <= other.dom_pre and other.dom_post <= self.dom_post

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:
        return f"<{self.kind} #{self.uid} {self.describe()!s:.60}>"


class EntryNode(Node):
    kind = "entry"


class ExitNode(Node):
    kind = "exit"


class AssignNode(Node):
    """``dst = src`` of ``size`` bytes; ``dst`` may be None for expression
    statements evaluated only for side effects on the points-to world
    (e.g. a discarded comparison of pointers)."""

    kind = "assign"

    def __init__(
        self,
        proc: "Procedure",
        dst: Optional[LocExpr],
        src: ValueExpr,
        size: int,
        coord: Optional[str] = None,
    ) -> None:
        super().__init__(proc, coord)
        self.dst = dst
        self.src = src
        self.size = size

    def describe(self) -> str:
        return f"{self.dst} = {self.src} ({self.size}B)"


class CallNode(Node):
    """A procedure call.

    ``target`` is a :class:`ValueExpr`; for a direct call it is the address
    of a :class:`~repro.ir.expr.ProcSymbol`, for an indirect call it is the
    contents of the pointer expression.  ``dst`` receives the return value.
    ``site`` names the static call site (also the heap-allocation context
    when the callee is an allocator).
    """

    kind = "call"

    def __init__(
        self,
        proc: "Procedure",
        target: ValueExpr,
        args: list[ValueExpr],
        dst: Optional[LocExpr],
        dst_size: int,
        site: str,
        coord: Optional[str] = None,
    ) -> None:
        super().__init__(proc, coord)
        self.target = target
        self.args = args
        self.dst = dst
        self.dst_size = dst_size
        self.site = site

    def describe(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}call {self.target}({args})"


class MeetNode(Node):
    """A control-flow join; φ-functions are attached dynamically (§4.2)."""

    kind = "meet"


class BranchNode(Node):
    """Pure control flow (conditional or unconditional); the analysis is
    path-insensitive so the condition's pointer reads are lowered into a
    separate :class:`AssignNode` evaluated for effect."""

    kind = "branch"
