"""Graphviz (DOT) exports for CFGs, call graphs, and points-to graphs.

These mirror the figures in the paper: points-to graphs drawn as
variable → target edges (Figures 3, 4, 6, 7) and the flow graphs the
intraprocedural algorithm walks (Figure 8).  Pure string generation — no
graphviz dependency; pipe the output to ``dot -Tpng``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .nodes import AssignNode, BranchNode, CallNode, EntryNode, ExitNode, MeetNode
from .program import Procedure

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.results import AnalysisResult

__all__ = ["cfg_to_dot", "call_graph_to_dot", "points_to_graph_to_dot"]


def _esc(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(proc: Procedure, name: Optional[str] = None) -> str:
    """The flow graph of one procedure."""
    lines = [f'digraph "{_esc(name or proc.name)}" {{', "  node [shape=box, fontsize=10];"]
    for node in proc.nodes():
        label = node.kind
        shape = "box"
        if isinstance(node, (EntryNode, ExitNode)):
            shape = "ellipse"
        elif isinstance(node, MeetNode):
            shape = "diamond"
            label = "φ"
        elif isinstance(node, BranchNode):
            shape = "diamond"
            label = "?"
        elif isinstance(node, (AssignNode, CallNode)):
            label = node.describe()
            if len(label) > 40:
                label = label[:37] + "..."
        lines.append(f'  n{node.uid} [label="{_esc(label)}", shape={shape}];')
    for node in proc.nodes():
        for succ in node.succs:
            if succ.rpo_index >= 0:
                style = ""
                if succ.rpo_index < node.rpo_index:
                    style = ' [style=dashed]'  # back edge
                lines.append(f"  n{node.uid} -> n{succ.uid}{style};")
    lines.append("}")
    return "\n".join(lines)


def call_graph_to_dot(result: "AnalysisResult") -> str:
    """The resolved call graph, indirect edges dotted."""
    from ..ir.expr import AddressTerm, ProcSymbol, SymbolLoc

    graph = result.call_graph()
    direct: set[tuple[str, str]] = set()
    for name, proc in result.program.procedures.items():
        for node in proc.call_nodes():
            for term in node.target.terms:
                if isinstance(term, AddressTerm) and isinstance(term.loc, SymbolLoc):
                    if isinstance(term.loc.symbol, ProcSymbol):
                        direct.add((name, term.loc.symbol.name))
    lines = ['digraph callgraph {', "  node [shape=box, fontsize=10];"]
    for caller in sorted(graph):
        lines.append(f'  "{_esc(caller)}";')
    for caller in sorted(graph):
        for callee in sorted(graph[caller]):
            style = "" if (caller, callee) in direct else " [style=dotted]"
            lines.append(f'  "{_esc(caller)}" -> "{_esc(callee)}"{style};')
    lines.append("}")
    return "\n".join(lines)


def points_to_graph_to_dot(
    result: "AnalysisResult", proc_name: str, ptf_index: int = 0
) -> str:
    """One PTF's final points-to function as a Figure-3/4-style graph."""
    ptfs = result.ptfs_of(proc_name)
    if not ptfs:
        return "digraph empty {}"
    ptf = ptfs[min(ptf_index, len(ptfs) - 1)]
    lines = [
        f'digraph "{_esc(proc_name)}_ptf{ptf.uid}" {{',
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10];",
    ]
    seen: set[str] = set()

    def node_of(locset) -> str:
        label = str(locset)
        key = f'"{_esc(label)}"'
        if key not in seen:
            seen.add(key)
            shape = "box"
            if "xparam" in locset.base.kind:
                shape = "ellipse"
            elif locset.base.kind == "heap":
                shape = "box3d"
            lines.append(f"  {key} [shape={shape}];")
        return key

    for entry in ptf.initial_entries:
        src = node_of(entry.source)
        for tgt in entry.targets:
            lines.append(f"  {src} -> {node_of(tgt)} [style=dashed, label=init];")
    for loc, vals in ptf.summary().items():
        src = node_of(loc)
        for v in sorted(vals, key=str):
            lines.append(f"  {src} -> {node_of(v)};")
    lines.append("}")
    return "\n".join(lines)
