"""Program and procedure containers.

A :class:`Program` is the unit of analysis: all procedures, global symbols
and their static initializers, string literals, and the blocks backing them.
A :class:`Procedure` owns its flow graph, its local symbols and the memory
blocks for them.

Each procedure has its own *name space* (§2.2): extended parameters, local
variables, and heap storage allocated by the procedure and its children.
Local blocks and the return-value block live here because they are shared by
every PTF of the procedure — only the *points-to entries over them* are
per-PTF state.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..frontend.ctypes_model import CFunction, CType
from ..memory.blocks import (
    GlobalBlock,
    LocalBlock,
    ProcedureBlock,
    ReturnBlock,
    StringBlock,
)
from .dominators import finalize_graph
from .expr import (
    GlobalSymbol,
    LocalSymbol,
    LocExpr,
    ProcSymbol,
    StringSymbol,
    Symbol,
    ValueExpr,
)
from .nodes import CallNode, EntryNode, ExitNode, Node

__all__ = ["Procedure", "Program", "GlobalInit"]


class Procedure:
    """One C function: flow graph + local name space."""

    def __init__(
        self,
        name: str,
        formals: Optional[list[LocalSymbol]] = None,
        ftype: Optional[CFunction] = None,
        coord: Optional[str] = None,
    ) -> None:
        self.name = name
        self.formals: list[LocalSymbol] = formals or []
        self.ftype = ftype
        self.coord = coord
        self.entry = EntryNode(self)
        self.exit = ExitNode(self)
        self.locals: dict[str, LocalSymbol] = {}
        self.local_blocks: dict[str, LocalBlock] = {}
        self.return_block = ReturnBlock(name)
        #: the symbol lowering assigns return values to; backed by
        #: :attr:`return_block` rather than an ordinary local block
        self.return_symbol = LocalSymbol("<retval>", proc_name=name)
        self.rpo: list[Node] = []
        self.source_lines = 0
        self.is_varargs = bool(ftype and ftype.varargs)
        #: filled by the front end with locals that have address-taking
        #: initializers (e.g. ``int *p = &x;`` lowers to an assign node, so
        #: nothing extra is needed; kept for diagnostics)
        self.finalized = False

    # -- name space -----------------------------------------------------

    def add_local(self, symbol: LocalSymbol) -> None:
        self.locals[symbol.name] = symbol

    def local_block(self, symbol: LocalSymbol):
        """The memory block backing a local symbol (created on demand)."""
        if symbol is self.return_symbol:
            return self.return_block
        block = self.local_blocks.get(symbol.name)
        if block is None:
            block = LocalBlock(
                f"{self.name}::{symbol.name}", self.name, size=symbol.size
            )
            self.local_blocks[symbol.name] = block
        return block

    # -- flow graph -----------------------------------------------------

    def finalize(self) -> None:
        """Compute reverse postorder and dominator structures."""
        # the exit node must be reachable for summaries to exist even when
        # the procedure loops forever; harmless extra edge from entry
        if not self.exit.preds:
            self.entry.add_succ(self.exit)
        self.rpo = finalize_graph(self.entry)
        self.finalized = True

    def nodes(self) -> Iterable[Node]:
        if not self.finalized:
            self.finalize()
        return self.rpo

    def call_nodes(self) -> list[CallNode]:
        return [n for n in self.nodes() if isinstance(n, CallNode)]

    def __repr__(self) -> str:
        return f"<Procedure {self.name} ({len(self.rpo)} nodes)>"


class GlobalInit:
    """One static-initializer binding evaluated in the root context."""

    def __init__(self, dst: LocExpr, src: ValueExpr, size: int) -> None:
        self.dst = dst
        self.src = src
        self.size = size

    def __repr__(self) -> str:
        return f"<GlobalInit {self.dst} = {self.src}>"


class Program:
    """A whole C program lowered to the analysis IR."""

    def __init__(self, name: str = "<program>") -> None:
        self.name = name
        self.procedures: dict[str, Procedure] = {}
        self.globals: dict[str, GlobalSymbol] = {}
        self.global_blocks: dict[str, GlobalBlock] = {}
        self.proc_blocks: dict[str, ProcedureBlock] = {}
        self.string_blocks: dict[str, StringBlock] = {}
        self.global_inits: list[GlobalInit] = []
        self.source_lines = 0
        #: names of called-but-undefined functions (library or external)
        self.external_calls: set[str] = set()
        #: translation units / procedures the tolerant frontend dropped
        #: (:class:`repro.analysis.guards.FrontendFault` records); the
        #: engine reads these at construction and quarantines the named
        #: procedures behind conservative havoc stubs
        self.frontend_failures: list = []

    # -- procedures -------------------------------------------------------

    def add_procedure(self, proc: Procedure) -> None:
        self.procedures[proc.name] = proc

    def procedure(self, name: str) -> Procedure:
        return self.procedures[name]

    @property
    def main(self) -> Procedure:
        if "main" in self.procedures:
            return self.procedures["main"]
        raise KeyError(f"program {self.name} has no main procedure")

    def proc_block(self, name: str) -> ProcedureBlock:
        block = self.proc_blocks.get(name)
        if block is None:
            block = ProcedureBlock(name)
            self.proc_blocks[name] = block
        return block

    # -- globals ------------------------------------------------------------

    def add_global(self, symbol: GlobalSymbol) -> GlobalBlock:
        self.globals[symbol.name] = symbol
        block = self.global_blocks.get(symbol.name)
        if block is None:
            block = GlobalBlock(symbol.name, size=symbol.size)
            self.global_blocks[symbol.name] = block
        return block

    def global_block(self, name: str) -> GlobalBlock:
        return self.global_blocks[name]

    def string_block(self, symbol: StringSymbol) -> StringBlock:
        block = self.string_blocks.get(symbol.site)
        if block is None:
            block = StringBlock(symbol.text, symbol.site)
            self.string_blocks[symbol.site] = block
        return block

    # -- statistics -----------------------------------------------------

    def finalize(self) -> None:
        for proc in self.procedures.values():
            if not proc.finalized:
                proc.finalize()

    def stats(self) -> dict[str, int]:
        self.finalize()
        return {
            "procedures": len(self.procedures),
            "nodes": sum(len(p.rpo) for p in self.procedures.values()),
            "globals": len(self.globals),
            "call_sites": sum(
                len(p.call_nodes()) for p in self.procedures.values()
            ),
        }

    def __repr__(self) -> str:
        return f"<Program {self.name}: {len(self.procedures)} procedures>"
