"""The analysis IR: points-to-form expressions, flow-graph nodes,
dominators, and program containers."""

from .dominators import compute_dominators, compute_rpo, finalize_graph, iterated_frontier
from .expr import (
    AddressTerm,
    AdjustTerm,
    ContentsTerm,
    DerefLoc,
    GlobalSymbol,
    LocalSymbol,
    LocExpr,
    ProcSymbol,
    StringSymbol,
    Symbol,
    SymbolLoc,
    UnknownTerm,
    ValueExpr,
)
from .nodes import AssignNode, BranchNode, CallNode, EntryNode, ExitNode, MeetNode, Node
from .program import GlobalInit, Procedure, Program

__all__ = [
    "ValueExpr",
    "LocExpr",
    "SymbolLoc",
    "DerefLoc",
    "AddressTerm",
    "ContentsTerm",
    "AdjustTerm",
    "UnknownTerm",
    "Symbol",
    "LocalSymbol",
    "GlobalSymbol",
    "ProcSymbol",
    "StringSymbol",
    "Node",
    "EntryNode",
    "ExitNode",
    "AssignNode",
    "CallNode",
    "MeetNode",
    "BranchNode",
    "Program",
    "Procedure",
    "GlobalInit",
    "compute_rpo",
    "compute_dominators",
    "finalize_graph",
    "iterated_frontier",
]
