"""Dominator trees and dominance frontiers.

The sparse points-to representation (§4.2) looks values up by searching back
through *dominating* flow-graph nodes, and φ-functions are inserted at
*iterated dominance frontiers* when new locations are assigned (Chase et
al.; Cytron et al. SSA construction).  This module computes immediate
dominators with the Cooper–Harvey–Kennedy iterative algorithm, the dominator
tree (with pre/post intervals for O(1) ``a dominates b`` queries), and
dominance frontiers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .nodes import Node

__all__ = ["compute_rpo", "compute_dominators", "iterated_frontier", "finalize_graph"]


def compute_rpo(entry: Node) -> list[Node]:
    """Reverse postorder over the nodes reachable from ``entry``.

    Iterative DFS (real C procedures nest deeply enough to overflow the
    Python recursion limit).
    """
    visited: set[int] = set()
    postorder: list[Node] = []
    # stack of (node, iterator over successors)
    stack: list[tuple[Node, int]] = [(entry, 0)]
    visited.add(entry.uid)
    while stack:
        node, idx = stack.pop()
        if idx < len(node.succs):
            stack.append((node, idx + 1))
            succ = node.succs[idx]
            if succ.uid not in visited:
                visited.add(succ.uid)
                stack.append((succ, 0))
        else:
            postorder.append(node)
    rpo = list(reversed(postorder))
    for i, node in enumerate(rpo):
        node.rpo_index = i
    return rpo


def compute_dominators(entry: Node, rpo: Sequence[Node]) -> None:
    """Fill in ``idom``, ``dom_children``, ``dom_frontier`` and the
    dominance intervals for every node in ``rpo``.

    Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm".
    """
    for node in rpo:
        node.idom = None
        node.dom_children = []
        node.dom_frontier = []
    entry.idom = entry

    def intersect(a: Node, b: Node) -> Node:
        while a is not b:
            while a.rpo_index > b.rpo_index:
                a = a.idom  # type: ignore[assignment]
            while b.rpo_index > a.rpo_index:
                b = b.idom  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node is entry:
                continue
            new_idom = None
            for pred in node.preds:
                if pred.idom is None or pred.rpo_index < 0:
                    continue  # unreachable or not yet processed
                if new_idom is None:
                    new_idom = pred
                else:
                    new_idom = intersect(pred, new_idom)
            if new_idom is not None and node.idom is not new_idom:
                node.idom = new_idom
                changed = True

    entry.idom = None  # conventional: the entry has no immediate dominator
    for node in rpo:
        if node.idom is not None:
            node.idom.dom_children.append(node)

    # dominance intervals by iterative DFS over the dominator tree
    counter = 0
    stack: list[tuple[Node, int]] = [(entry, 0)]
    entry.dom_pre = counter
    counter += 1
    while stack:
        node, idx = stack.pop()
        if idx < len(node.dom_children):
            stack.append((node, idx + 1))
            child = node.dom_children[idx]
            child.dom_pre = counter
            counter += 1
            stack.append((child, 0))
        else:
            node.dom_post = counter
            counter += 1

    # dominance frontiers (Cooper et al. §4)
    for node in rpo:
        if len(node.preds) < 2:
            continue
        for pred in node.preds:
            if pred.rpo_index < 0:
                continue
            runner = pred
            while runner is not node.idom and runner is not None:
                if node not in runner.dom_frontier:
                    runner.dom_frontier.append(node)
                if runner.idom is runner:
                    break
                runner = runner.idom


def iterated_frontier(nodes: Iterable[Node]) -> set[Node]:
    """The iterated dominance frontier of ``nodes`` — the φ-placement set."""
    result: set[Node] = set()
    work = list(nodes)
    while work:
        node = work.pop()
        for f in node.dom_frontier:
            if f not in result:
                result.add(f)
                work.append(f)
    return result


def finalize_graph(entry: Node) -> list[Node]:
    """Compute RPO + dominator information; returns the reachable nodes in
    reverse postorder."""
    rpo = compute_rpo(entry)
    compute_dominators(entry, rpo)
    return rpo
