"""Unit tests for the diagnostics metrics layer.

The analysis-side wiring (counters actually moving during a run, the
``--stats-json`` CLI surface) is covered by the engine and CLI tests;
these pin the ``Metrics`` container itself: counter bookkeeping, the
phase/procedure timers, the derived hit rate, serialization and merging.
"""

import json

from repro.analysis.engine import AnalyzerOptions, analyze
from repro.diagnostics.metrics import COUNTERS, Metrics
from repro.frontend.parser import load_program


class TestCounters:
    def test_starts_at_zero(self):
        m = Metrics()
        assert all(v == 0 for v in m.counters().values())
        assert set(m.counters()) == set(COUNTERS)

    def test_plain_attribute_increment(self):
        # the hot-path contract: counters are plain attributes
        m = Metrics()
        m.cache_hits += 3
        m.dom_walk_steps += 10
        got = m.counters()
        assert got["cache_hits"] == 3
        assert got["dom_walk_steps"] == 10
        assert got["cache_misses"] == 0

    def test_reset_clears_everything(self):
        m = Metrics()
        m.lookups += 5
        m.add_proc_time("f", 0.5, passes=2)
        with m.phase("analysis"):
            pass
        m.reset()
        assert all(v == 0 for v in m.counters().values())
        assert m.phase_seconds == {}
        assert m.proc_seconds == {}
        assert m.proc_self_seconds == {}
        assert m.proc_passes == {}


class TestDerived:
    def test_dom_steps_per_lookup_zero_without_lookups(self):
        assert Metrics().dom_steps_per_lookup() == 0.0

    def test_dom_steps_per_lookup(self):
        m = Metrics()
        m.lookups, m.dom_walk_steps = 4, 10
        assert m.dom_steps_per_lookup() == 2.5

    def test_as_dict_exposes_derived_block(self):
        m = Metrics()
        m.lookups, m.dom_walk_steps = 2, 5
        m.cache_hits, m.cache_misses = 1, 1
        d = m.as_dict()
        assert d["derived"]["dom_steps_per_lookup"] == 2.5
        assert d["derived"]["cache_hit_rate"] == 0.5


class TestHitRate:
    def test_zero_probes_is_zero(self):
        assert Metrics().cache_hit_rate() == 0.0

    def test_rate(self):
        m = Metrics()
        m.cache_hits, m.cache_misses = 3, 1
        assert m.cache_hit_rate() == 0.75


class TestTimers:
    def test_phase_accumulates_on_reentry(self):
        m = Metrics()
        with m.phase("analysis"):
            pass
        first = m.phase_seconds["analysis"]
        with m.phase("analysis"):
            pass
        assert m.phase_seconds["analysis"] >= first
        assert set(m.phase_seconds) == {"analysis"}

    def test_phase_recorded_on_exception(self):
        m = Metrics()
        try:
            with m.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in m.phase_seconds

    def test_proc_time_accumulates(self):
        m = Metrics()
        m.add_proc_time("f", 0.25, passes=1)
        m.add_proc_time("f", 0.25, passes=2)
        m.add_proc_time("g", 1.0)
        assert m.proc_seconds["f"] == 0.5
        assert m.proc_passes["f"] == 3
        assert m.proc_seconds["g"] == 1.0
        assert "g" not in m.proc_passes  # passes=0 records nothing

    def test_self_time_defaults_to_inclusive(self):
        m = Metrics()
        m.add_proc_time("f", 0.5)
        assert m.proc_self_seconds["f"] == 0.5

    def test_explicit_self_time(self):
        m = Metrics()
        m.add_proc_time("f", 1.0, self_seconds=0.25)
        assert m.proc_seconds["f"] == 1.0
        assert m.proc_self_seconds["f"] == 0.25

    def test_nested_proc_frames_split_self_time(self):
        import time

        m = Metrics()
        m.start_proc("caller")
        time.sleep(0.01)
        m.start_proc("callee")
        time.sleep(0.01)
        m.end_proc(passes=1)
        m.end_proc(passes=1)
        # caller's inclusive time covers the callee; its self time does not
        assert m.proc_seconds["caller"] >= m.proc_seconds["callee"]
        assert m.proc_self_seconds["caller"] <= (
            m.proc_seconds["caller"] - m.proc_seconds["callee"] + 1e-6
        )
        assert m.proc_self_seconds["callee"] >= 0.009
        assert m._proc_stack == []

    def test_end_proc_returns_inclusive_seconds(self):
        m = Metrics()
        m.start_proc("f")
        elapsed = m.end_proc()
        assert elapsed >= 0.0
        assert m.proc_seconds["f"] == elapsed


class TestSerialization:
    def test_as_dict_is_json_serializable(self):
        m = Metrics()
        m.cache_hits += 1
        m.add_proc_time("main", 0.1, passes=1)
        with m.phase("analysis"):
            pass
        blob = json.dumps(m.as_dict())
        back = json.loads(blob)
        assert back["counters"]["cache_hits"] == 1
        assert back["cache_hit_rate"] == 1.0
        assert back["timers"]["procedures"]["main"] >= 0.1
        assert back["timers"]["procedures_self"]["main"] >= 0.1
        assert back["timers"]["procedure_passes"]["main"] == 1
        assert "dom_steps_per_lookup" in back["derived"]

    def test_merge_folds_counters_and_timers(self):
        a, b = Metrics(), Metrics()
        a.lookups, b.lookups = 2, 3
        a.add_proc_time("f", 1.0, passes=1)
        b.add_proc_time("f", 2.0, passes=1, self_seconds=0.5)
        b.add_proc_time("g", 4.0)
        b.phase_seconds["analysis"] = 1.5
        a.merge(b)
        assert a.lookups == 5
        assert a.proc_seconds == {"f": 3.0, "g": 4.0}
        assert a.proc_self_seconds == {"f": 1.5, "g": 4.0}
        assert a.proc_passes == {"f": 2}
        assert a.phase_seconds == {"analysis": 1.5}


SOURCE = """
int g;
void set(int **pp, int *v) { *pp = v; }
int main(void) {
    int x;
    int *p;
    set(&p, &x);
    if (g) set(&p, &g);
    *p = 1;
    return 0;
}
"""


class TestEndToEndWiring:
    def test_analysis_populates_counters_and_timers(self):
        program = load_program(SOURCE, "m.c", "m")
        analyzer = analyze(program, AnalyzerOptions())
        m = analyzer.metrics
        assert m.lookups > 0
        assert m.eval_passes > 0
        assert m.strong_updates > 0
        assert m.dom_walk_steps >= 0
        assert m.cache_hits + m.cache_misses > 0
        assert "analysis" in m.phase_seconds
        assert "main" in m.proc_seconds
        assert "main" in m.proc_self_seconds
        # main's self time excludes time spent evaluating set()
        assert m.proc_self_seconds["main"] <= m.proc_seconds["main"] + 1e-9
        assert m.proc_seconds["set"] > 0
        stats = analyzer.stats_dict()
        assert stats["lookup_cache"] is True
        assert stats["counters"]["lookups"] == m.lookups
        json.dumps(stats)  # must be serializable as-is

    def test_disabled_cache_counts_no_probes(self):
        program = load_program(SOURCE, "m.c", "m")
        analyzer = analyze(program, AnalyzerOptions(lookup_cache=False))
        m = analyzer.metrics
        assert m.cache_hits == 0 and m.cache_misses == 0
        assert m.dom_walk_steps > 0
        assert analyzer.stats_dict()["lookup_cache"] is False
