"""The critical-path profiler on synthetic shard DAGs with hand-checked
answers, plus the document round-trip and the report renderer.

The DAG payloads mirror ``ShardPlan.to_payload`` (shards reverse-
topological, ``deps`` indexing earlier shards), so every expectation
here is computable by hand: T1 is the cost sum, T∞ the longest
cost-weighted chain, Brent's bound ``T1/(T1/p + T∞)``.
"""

import math

import pytest

from repro.analysis.scc import build_plan
from repro.diagnostics.parprof import (
    PARPROF_FORMAT,
    build_parallel_profile,
    load_profile,
    profile_program,
    render_report,
    write_profile,
)


def _chain_payload():
    """a -> b -> c (c calls b calls a): one chain, zero parallelism."""
    return {
        "shards": [["a"], ["b"], ["c"]],
        "recursive": [False, False, False],
        "deps": {"0": [], "1": [0], "2": [1]},
        "waves": [[0], [1], [2]],
    }


def _diamond_payload():
    """d calls b and c, both call a — the classic span/work split."""
    return {
        "shards": [["a"], ["b"], ["c"], ["d"]],
        "recursive": [False, False, False, False],
        "deps": {"0": [], "1": [0], "2": [0], "3": [1, 2]},
        "waves": [[0], [1, 2], [3]],
    }


class TestProfileProgram:
    def test_chain_has_no_parallelism(self):
        times = {"a": 1.0, "b": 2.0, "c": 3.0}
        prog = profile_program("chain", _chain_payload(), times, jobs=4)
        assert prog["total_seconds"] == 6.0
        assert prog["critical_path_seconds"] == 6.0
        assert prog["parallelism"] == 1.0
        assert prog["critical_path"] == ["a", "b", "c"]
        # Brent with T1 == T∞: 6 / (6/4 + 6)
        assert math.isclose(prog["brent_bound"], 6 / (6 / 4 + 6),
                            rel_tol=1e-4)

    def test_diamond_span_takes_the_expensive_branch(self):
        times = {"a": 1.0, "b": 5.0, "c": 2.0, "d": 1.0}
        prog = profile_program("dia", _diamond_payload(), times, jobs=2)
        assert prog["total_seconds"] == 9.0
        # a -> b -> d = 1 + 5 + 1
        assert prog["critical_path_seconds"] == 7.0
        assert prog["critical_path"] == ["a", "b", "d"]
        assert math.isclose(prog["parallelism"], 9 / 7, rel_tol=1e-4)
        assert math.isclose(prog["brent_bound"], 9 / (9 / 2 + 7),
                            rel_tol=1e-4)
        # middle wave: b and c run together, c idles while b finishes
        mid = prog["wave_utilization"][1]
        assert mid["shards"] == 2
        assert mid["peak_seconds"] == 5.0
        assert math.isclose(mid["utilization"], 7 / 10, rel_tol=1e-4)

    def test_candidates_are_critical_path_ranked_by_self_time(self):
        times = {"a": 1.0, "b": 5.0, "c": 2.0, "d": 1.5}
        prog = profile_program("dia", _diamond_payload(), times, jobs=2)
        names = [c["procedure"] for c in prog["candidates"]]
        # c is off the critical path: never a candidate
        assert names == ["b", "d", "a"]
        assert all(not c["recursive"] for c in prog["candidates"])

    def test_multi_member_shard_cost_and_name(self):
        payload = {
            "shards": [["f", "g"], ["main"]],
            "recursive": [True, False],
            "deps": {"0": [], "1": [0]},
            "waves": [[0], [1]],
        }
        times = {"f": 1.0, "g": 2.0, "main": 0.5}
        prog = profile_program("rec", payload, times, jobs=2)
        assert prog["total_seconds"] == 3.5
        assert prog["critical_path_seconds"] == 3.5
        assert prog["critical_path"] == ["f(+1)", "main"]
        assert prog["candidates"][0] == {
            "procedure": "g", "self_seconds": 2.0,
            "shard": "f(+1)", "recursive": True,
        }

    def test_unmeasured_procedures_cost_zero(self):
        prog = profile_program("chain", _chain_payload(), {}, jobs=2)
        assert prog["total_seconds"] == 0.0
        assert prog["critical_path_seconds"] == 0.0
        assert prog["parallelism"] is None
        assert prog["brent_bound"] is None

    def test_real_shard_plan_payload_round_trips(self):
        plan = build_plan({
            "main": {"f", "g"}, "f": {"h"}, "g": {"h"}, "h": set(),
        })
        times = {"main": 0.1, "f": 0.2, "g": 0.3, "h": 0.4}
        prog = profile_program("p", plan.to_payload(), times, jobs=2)
        assert math.isclose(prog["total_seconds"], 1.0, rel_tol=1e-6)
        # h -> g -> main is the expensive chain
        assert prog["critical_path"] == ["h", "g", "main"]
        assert math.isclose(prog["critical_path_seconds"], 0.8,
                            rel_tol=1e-6)


class _FakeBatch:
    """Just enough of BatchResult for build_parallel_profile."""

    def __init__(self, results, jobs, elapsed):
        self.results = results
        self._jobs = jobs
        self._elapsed = elapsed

    def stats(self):
        worker = sum(r["seconds"] for r in self.results)
        return {
            "jobs": self._jobs,
            "programs": len(self.results),
            "errors": sum(1 for r in self.results if r.get("error")),
            "elapsed_seconds": self._elapsed,
            "worker_seconds": round(worker, 6),
            "utilization": round(worker / (self._jobs * self._elapsed), 4),
            "critical_path_seconds": round(
                max(r["seconds"] for r in self.results), 6
            ),
        }


def _fake_batch():
    results = [
        {
            "name": "p1", "seconds": 3.0,
            "profile": {
                "plan": _chain_payload(),
                "proc_self_seconds": {"a": 1.0, "b": 1.0, "c": 1.0},
            },
        },
        {
            "name": "p2", "seconds": 2.0,
            "profile": {
                "plan": _diamond_payload(),
                "proc_self_seconds": {
                    "a": 0.5, "b": 1.0, "c": 0.2, "d": 0.3,
                },
            },
        },
    ]
    return _FakeBatch(results, jobs=2, elapsed=3.2)


class TestBuildAndRender:
    def test_theoretical_bound_dominates_measured(self):
        doc = build_parallel_profile(_fake_batch())
        assert doc["format"] == PARPROF_FORMAT
        assert doc["measured_speedup"] == round(5.0 / 3.2, 4)
        # min(jobs, T1/T∞) = min(2, 5/3)
        assert doc["theoretical_speedup"] == round(5.0 / 3.0, 4)
        assert doc["theoretical_speedup"] >= doc["measured_speedup"]

    def test_candidates_merge_across_programs(self):
        doc = build_parallel_profile(_fake_batch())
        top = doc["candidates"][0]
        assert (top["program"], top["procedure"]) in {
            ("p1", "a"), ("p1", "b"), ("p1", "c"), ("p2", "b"),
        }
        assert top["self_seconds"] == 1.0

    def test_report_text_names_the_headline_numbers(self):
        doc = build_parallel_profile(_fake_batch())
        text = render_report(doc)
        assert "critical path" in text
        assert "theoretical speedup" in text
        assert "measured speedup" in text
        assert "summarize these procedures first" in text
        assert "p1:" in text or "p2:" in text

    def test_document_round_trip_and_format_check(self, tmp_path):
        doc = build_parallel_profile(_fake_batch())
        path = tmp_path / "pp.json"
        write_profile(doc, str(path))
        assert load_profile(str(path)) == doc
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else/9"}')
        with pytest.raises(ValueError, match="not a parallel profile"):
            load_profile(str(bad))
