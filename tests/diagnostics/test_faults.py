"""Deterministic fault injection (:mod:`repro.diagnostics.faults`)."""

import pytest

from repro.diagnostics.faults import SITES, FaultPlan


class TestDeterminism:
    def test_verdict_is_pure_function_of_triple(self):
        a = FaultPlan(seed=3, exhaust_rate=0.4)
        b = FaultPlan(seed=3, exhaust_rate=0.4)
        names = [f"proc{i}" for i in range(100)]
        assert [a.exhaust(n) for n in names] == [b.exhaust(n) for n in names]

    def test_query_order_is_irrelevant(self):
        plan = FaultPlan(seed=11, parse_rate=0.5)
        names = [f"unit{i}.c" for i in range(40)]
        forward = {n: plan.fail_parse(n) for n in names}
        backward = {n: plan.fail_parse(n) for n in reversed(names)}
        assert forward == backward

    def test_different_seeds_differ(self):
        names = [f"p{i}" for i in range(200)]
        a = [FaultPlan(seed=1, exhaust_rate=0.5).exhaust(n) for n in names]
        b = [FaultPlan(seed=2, exhaust_rate=0.5).exhaust(n) for n in names]
        assert a != b

    def test_sites_are_independent(self):
        plan = FaultPlan(seed=5, parse_rate=0.5, exhaust_rate=0.5)
        names = [f"n{i}" for i in range(200)]
        assert [plan.fail_parse(n) for n in names] != [
            plan.exhaust(n) for n in names
        ]


class TestRatesAndNames:
    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=9)
        assert not any(plan.exhaust(f"p{i}") for i in range(100))

    def test_full_rate_always_fires(self):
        plan = FaultPlan(seed=9, nonconverge_rate=1.0)
        assert all(plan.nonconverge(f"p{i}") for i in range(100))

    def test_half_rate_fires_sometimes(self):
        plan = FaultPlan(seed=9, exhaust_rate=0.5)
        hits = [plan.exhaust(f"p{i}") for i in range(200)]
        assert any(hits) and not all(hits)

    def test_named_sites_always_fire(self):
        plan = FaultPlan(exhaust_names=frozenset({"qsort"}))
        assert plan.exhaust("qsort")
        assert not plan.exhaust("lookup")


class TestSpec:
    def test_full_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=7,parse=0.2,exhaust=qsort;lookup,nonconverge=0.05"
        )
        assert plan.seed == 7
        assert plan.parse_rate == 0.2
        assert plan.exhaust_names == frozenset({"qsort", "lookup"})
        assert plan.nonconverge_rate == 0.05

    def test_names_and_rates_are_distinguished_by_value(self):
        plan = FaultPlan.from_spec("parse=bad.c")
        assert plan.parse_names == frozenset({"bad.c"})
        assert plan.parse_rate == 0.0

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("frobnicate=0.5")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("parse=1.5")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("parse")

    def test_describe_mentions_configured_sites(self):
        plan = FaultPlan.from_spec("seed=3,exhaust=leaf,parse=0.25")
        text = plan.describe()
        assert "seed=3" in text
        assert "exhaust=leaf" in text
        assert "parse=0.25" in text

    def test_sites_constant_matches_plan_fields(self):
        plan = FaultPlan()
        for site in SITES:
            assert hasattr(plan, f"{site}_rate")
            assert hasattr(plan, f"{site}_names")
        assert SITES == ("parse", "exhaust", "nonconverge", "slow",
                         "disconnect", "corrupt_reload")
