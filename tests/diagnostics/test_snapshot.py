"""Snapshot determinism and canonicalization tests.

The acceptance property of the regression observatory: the canonical
half of a snapshot is a pure function of (program, semantics-affecting
options).  Back-to-back runs must produce byte-identical canonical
bytes; pure-memoization knobs (``lookup_cache``) must not move the
digest; semantic knobs (``max_ptfs_total``) must.

Same-process caveat (documented in the module): block uids seed
set-iteration order inside the engine, so every re-analysis here calls
:func:`repro.memory.pointsto.reset_interning` first — exactly what a
fresh process (the CLI) gets for free.
"""

import io
import json

import pytest

from repro.analysis.engine import AnalyzerOptions
from repro.bench.harness import analyze_benchmark
from repro.bench.programs import PROGRAMS
from repro.diagnostics.snapshot import (
    SNAPSHOT_FORMAT,
    build_snapshot,
    canonical_bytes,
    dump_snapshot,
    load_snapshot,
    solution_of,
    write_snapshot,
)
from repro.memory.pointsto import reset_interning

ALL_NAMES = [p.name for p in PROGRAMS]


def snap_of(name, **option_kwargs):
    reset_interning()
    options = AnalyzerOptions(**option_kwargs)
    result = analyze_benchmark(name, options)
    return build_snapshot(result, options=options, program_name=name)


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_back_to_back_runs_are_byte_identical(self, name):
        a = snap_of(name)
        b = snap_of(name)
        assert a["digest"]["program"] == b["digest"]["program"]
        assert canonical_bytes(a) == canonical_bytes(b)

    @pytest.mark.parametrize("name", ["allroots", "grep", "compress"])
    def test_lookup_cache_does_not_move_the_digest(self, name):
        # pure memoization: the knob may change counters (volatile) but
        # provably not the canonical half
        cached = snap_of(name)
        uncached = snap_of(name, lookup_cache=False)
        assert cached["digest"]["program"] == uncached["digest"]["program"]
        assert canonical_bytes(cached) == canonical_bytes(uncached)

    def test_max_ptfs_does_move_the_digest(self):
        # semantic knob: §8 generalization force-merges contexts, so the
        # solution — and therefore the digest — must change
        free = snap_of("allroots")
        capped = snap_of("allroots", max_ptfs_total=1)
        assert free["digest"]["program"] != capped["digest"]["program"]
        assert canonical_bytes(free) != canonical_bytes(capped)

    def test_options_are_recorded_but_unhashed(self):
        # provenance: the option shows up in the (unhashed) options
        # record, and the digest is reproducible under it
        snap = snap_of("allroots", lookup_cache=False)
        assert snap["options"] == {"lookup_cache": False}
        again = snap_of("allroots", lookup_cache=False)
        assert snap["digest"]["program"] == again["digest"]["program"]


class TestCanonicalization:
    def test_volatile_and_options_are_excluded_from_canonical_bytes(self):
        snap = snap_of("allroots")
        mutated = json.loads(json.dumps(snap))
        mutated["volatile"]["perf"]["elapsed_seconds"] = 999.0
        mutated["volatile"]["memory"]["tracemalloc_peak_kb"] = 12345.0
        mutated["options"]["lookup_cache"] = False
        assert canonical_bytes(mutated) == canonical_bytes(snap)

    def test_digest_covers_solution_and_call_graph(self):
        snap = snap_of("allroots")
        mutated = json.loads(json.dumps(snap))
        mutated["solution"]["main"] = []
        # the digest is computed at build time; recomputing over a
        # doctored solution must disagree
        from repro.diagnostics.snapshot import _digest

        redone = _digest(mutated["solution"], mutated["call_graph"])
        assert redone["program"] != snap["digest"]["program"]

    def test_per_procedure_digests_cover_every_procedure(self):
        snap = snap_of("allroots")
        assert set(snap["digest"]["procedures"]) == set(snap["solution"])
        assert snap["precision"]["totals"]["procedures"] == len(snap["solution"])

    def test_slim_snapshot_keeps_the_digest(self):
        reset_interning()
        result = analyze_benchmark("allroots")
        full = build_snapshot(result, program_name="allroots")
        reset_interning()
        result2 = analyze_benchmark("allroots")
        slim = build_snapshot(
            result2, program_name="allroots", include_solution=False
        )
        assert "solution" not in slim
        assert slim["digest"]["program"] == full["digest"]["program"]

    def test_solution_is_sorted_at_every_level(self):
        reset_interning()
        result = analyze_benchmark("allroots")
        sol = solution_of(result)
        assert list(sol) == sorted(sol)
        for payloads in sol.values():
            keys = [json.dumps(p, sort_keys=True) for p in payloads]
            assert keys == sorted(keys)
            for p in payloads:
                for targets in p["final"].values():
                    assert targets == sorted(targets)


class TestProfiles:
    def test_precision_profile_totals(self):
        snap = snap_of("allroots")
        totals = snap["precision"]["totals"]
        assert totals["procedures"] == len(snap["solution"])
        assert totals["total_ptfs"] == sum(
            rec["ptfs"] for rec in snap["precision"]["procedures"].values()
        )
        assert totals["avg_ptfs"] is not None and totals["avg_ptfs"] >= 1.0
        assert totals["degraded_records"] == 0

    def test_memory_profile_gauges(self):
        snap = snap_of("allroots")
        mem = snap["volatile"]["memory"]
        assert mem["blocks_created"] > 0
        assert mem["locsets_interned"] > 0
        assert mem["state"]["entries"] > 0
        assert mem["ptf_store"]["ptfs"] > 0
        # tracemalloc is opt-in; without track_memory the peak is None
        assert mem["tracemalloc_peak_kb"] is None

    def test_tracemalloc_peak_when_tracking(self):
        snap = snap_of("allroots", track_memory=True)
        assert snap["volatile"]["memory"]["tracemalloc_peak_kb"] > 0

    def test_track_memory_does_not_move_the_digest(self):
        plain = snap_of("allroots")
        tracked = snap_of("allroots", track_memory=True)
        assert plain["digest"]["program"] == tracked["digest"]["program"]

    def test_perf_profile_shape(self):
        snap = snap_of("allroots")
        perf = snap["volatile"]["perf"]
        assert perf["elapsed_seconds"] > 0
        assert "analysis" in perf["phases"]
        assert "main" in perf["procedures"]
        assert perf["counters"]["lookups"] > 0


class TestIO:
    def test_roundtrip_through_file(self, tmp_path):
        snap = snap_of("allroots")
        dest = tmp_path / "snap.json"
        write_snapshot(snap, str(dest))
        loaded = load_snapshot(str(dest))
        assert loaded == json.loads(json.dumps(snap))
        assert canonical_bytes(loaded) == canonical_bytes(snap)

    def test_roundtrip_through_file_object(self):
        snap = snap_of("allroots")
        buf = io.StringIO()
        write_snapshot(snap, buf)
        buf.seek(0)
        assert load_snapshot(buf)["format"] == SNAPSHOT_FORMAT

    def test_bad_format_rejected(self, tmp_path):
        dest = tmp_path / "bad.json"
        dest.write_text(json.dumps({"format": "something-else/9"}))
        with pytest.raises(ValueError, match="unsupported snapshot format"):
            load_snapshot(str(dest))

    def test_dump_is_stable(self):
        snap = snap_of("allroots")
        assert dump_snapshot(snap) == dump_snapshot(json.loads(json.dumps(snap)))
