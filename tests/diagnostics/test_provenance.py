"""Tests for the points-to provenance layer ("why does p point to x?").

The round-trip contract: after ``*pp = &x`` the explain chain for ``p``
names the assigning node, with its source coordinate, and interprocedural
chains cross the summary boundary back to the callee's own derivations.
"""

import pytest

from repro.analysis.engine import AnalyzerOptions, analyze
from repro.analysis.results import AnalysisResult, run_analysis
from repro.diagnostics import ProvenanceLog
from repro.frontend.parser import load_program


def _result(source: str, **opts) -> AnalysisResult:
    program = load_program(source, "prog.c", "prog")
    return run_analysis(program, AnalyzerOptions(provenance=True, **opts))


class TestLogUnit:
    def test_records_and_first_index(self):
        log = ProvenanceLog()
        log.tag_phi("(p, 0)", ["(x, 0)", "(y, 0)"], None)
        log.tag_phi("(p, 0)", ["(x, 0)"], None)
        rec = log.derivation_of("(p, 0)", "(x, 0)")
        assert rec is not None
        assert rec.eid == 1  # the *first* deriving record wins
        assert rec.kind == "phi"
        assert len(log) == 2

    def test_fallback_to_location_records(self):
        log = ProvenanceLog()
        log.tag_phi("(p, 0)", ["(callee_name, 0)"], None)
        # the queried value was renamed crossing a summary boundary:
        # no exact pair, but the location's own records still answer
        rec = log.derivation_of("(p, 0)", "(caller_name, 0)")
        assert rec is not None and rec.eid == 1

    def test_explain_is_cycle_safe(self):
        log = ProvenanceLog()
        log.set_context("assign", sources=("(b, 0)",))
        log.tag("(a, 0)", ["(x, 0)"], None, strong=False)
        log.set_context("assign", sources=("(a, 0)",))
        log.tag("(b, 0)", ["(x, 0)"], None, strong=False)
        log.clear_context()
        chain = log.explain("(a, 0)", "(x, 0)")
        assert [rec.eid for _, rec in chain] == [1, 2]  # a <- b <- a stops

    def test_render_mentions_kind_loc_and_values(self):
        log = ProvenanceLog()
        log.tag("(p, 0)", ["(x, 0)"], None, strong=True)
        line = log.records[0].render()
        assert "assign!" in line and "(p, 0)" in line and "(x, 0)" in line


class TestRoundTrip:
    def test_direct_assignment_names_node_and_coord(self):
        result = _result(
            "int x;\n"
            "int main(void) {\n"
            "    int *p;\n"
            "    int **pp;\n"
            "    pp = &p;\n"
            "    *pp = &x;\n"
            "    return 0;\n"
            "}\n"
        )
        explanations = result.explain("main", "p")
        assert explanations, "p must point somewhere"
        exp = next(e for e in explanations if e["display"] == "x")
        assert exp["chain"], "the derivation must be on record"
        root = exp["chain"][0]
        assert root["kind"].startswith("assign")
        assert root["proc"] == "main"
        assert root["coord"] and ":6" in root["coord"]  # the *pp = &x line

    def test_interprocedural_chain_reaches_callee(self):
        result = _result(
            "int x;\n"
            "void set(int **pp) { *pp = &x; }\n"
            "int main(void) {\n"
            "    int *p;\n"
            "    set(&p);\n"
            "    return 0;\n"
            "}\n"
        )
        explanations = result.explain("main", "p")
        exp = next(e for e in explanations if e["display"] == "x")
        kinds = [step["kind"] for step in exp["chain"]]
        # the final write is the summary application at the call site...
        assert kinds[0] == "summary"
        assert "set" in exp["chain"][0]["detail"]
        # ...and the chain crosses into the callee's own assignment
        assert any(
            step["kind"].startswith("assign") and step["proc"] == "set"
            for step in exp["chain"]
        )

    def test_initial_fetch_recorded_for_inputs(self):
        result = _result(
            "int g;\n"
            "void reader(int *q) { g = *q; }\n"
            "int main(void) { int v; reader(&v); return 0; }\n"
        )
        prov = result.analyzer.provenance
        assert prov is not None
        kinds = {rec.kind for rec in prov.records}
        assert "initial" in kinds

    def test_strong_update_marked(self):
        result = _result(
            "int x, y;\n"
            "int main(void) { int *p; p = &x; p = &y; return 0; }\n"
        )
        prov = result.analyzer.provenance
        assert any(rec.kind == "assign!" for rec in prov.records)

    def test_as_dict_serializable(self):
        import json

        result = _result(
            "int x;\nint main(void) { int *p; p = &x; return 0; }\n"
        )
        for rec in result.analyzer.provenance.records:
            json.dumps(rec.as_dict())


class TestGuards:
    def test_explain_requires_provenance(self):
        program = load_program(
            "int main(void) { return 0; }\n", "m.c", "m"
        )
        result = run_analysis(program, AnalyzerOptions())
        with pytest.raises(ValueError, match="provenance"):
            result.explain("main", "p")

    def test_unknown_procedure(self):
        result = _result("int main(void) { return 0; }\n")
        with pytest.raises(KeyError):
            result.explain("nope", "p")

    def test_off_by_default(self):
        program = load_program("int main(void) { return 0; }\n", "m.c", "m")
        analyzer = analyze(program, AnalyzerOptions())
        assert analyzer.provenance is None

    def test_trace_eid_links_into_trace(self):
        from repro.diagnostics import Tracer

        tracer = Tracer()
        result = _result(
            "int x;\nint main(void) { int *p; p = &x; return 0; }\n",
            trace=tracer,
        )
        prov = result.analyzer.provenance
        assert prov.tracer is tracer
        assert all(
            rec.trace_eid is not None and rec.trace_eid <= tracer.last_eid
            for rec in prov.records
        )
