"""Tests for the span/event tracer and its Chrome trace export.

Three layers:

* the ``Tracer`` container itself (event ids, span nesting, exporters);
* the Chrome trace-event *schema* an end-to-end analysis emits — phase
  types, required fields, monotonic timestamps (the golden-schema test
  Perfetto compatibility rests on);
* the zero-cost contract: ``trace=None`` must leave points-to results
  and metrics bit-identical to a run that never knew about tracing.
"""

import io
import json

from repro.analysis.engine import AnalyzerOptions, analyze
from repro.diagnostics import EVENT_VOCABULARY, Tracer
from repro.frontend.parser import load_program
from repro.memory.pointsto import reset_interning

SOURCE = """
int g;
void set(int **pp, int *v) { *pp = v; }
int *pick(int *a, int *b) { return g ? a : b; }
int main(void) {
    int x, y;
    int *p;
    set(&p, &x);
    set(&p, &y);
    p = pick(&x, &y);
    *p = 1;
    return 0;
}
"""

VALID_PHASES = {"B", "E", "X", "i"}


def _traced_run():
    tracer = Tracer()
    program = load_program(SOURCE, "m.c", "m")
    analyzer = analyze(program, AnalyzerOptions(trace=tracer))
    return tracer, analyzer


class TestTracerUnit:
    def test_event_ids_are_monotone_and_unique(self):
        t = Tracer()
        ids = [t.begin("a"), t.instant("b"), t.complete("c", "", 0.0, 1.0),
               t.end("a")]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        assert t.last_eid == ids[-1]
        assert len(t) == 4

    def test_span_context_manager_pairs(self):
        t = Tracer()
        with t.span("work", "cat", key="v"):
            t.instant("inner")
        phases = [e["ph"] for e in t.events]
        assert phases == ["B", "i", "E"]
        assert t.events[0]["args"]["key"] == "v"

    def test_instant_has_thread_scope(self):
        t = Tracer()
        t.instant("mark")
        assert t.events[0]["s"] == "t"

    def test_complete_clamps_negative_duration(self):
        t = Tracer()
        t.complete("x", "", 5.0, -1.0)
        assert t.events[0]["dur"] == 0.0

    def test_jsonl_round_trip(self):
        t = Tracer()
        t.begin("a", "cat")
        t.end("a", "cat")
        buf = io.StringIO()
        t.write_jsonl(buf)
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert [l["ph"] for l in lines] == ["B", "E"]

    def test_chrome_dict_metadata(self):
        t = Tracer()
        t.instant("m")
        d = t.chrome_dict(program="demo")
        assert d["otherData"] == {"program": "demo"}


class TestChromeSchema:
    """Golden-schema test: the JSON an analysis emits must satisfy the
    Chrome trace-event contract Perfetto / chrome://tracing load."""

    def test_end_to_end_schema(self):
        tracer, _ = _traced_run()
        doc = tracer.chrome_dict(program="m")
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events, "an analysis must emit events"
        last_ts = -1.0
        for e in events:
            # required fields, per phase type
            assert e["ph"] in VALID_PHASES
            assert isinstance(e["name"], str) and e["name"]
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
            assert isinstance(e["ts"], float)
            assert e["ts"] >= 0.0
            assert e["ts"] >= last_ts  # sorted: monotone timestamps
            last_ts = e["ts"]
            assert "eid" in e["args"]
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
            if e["ph"] == "i":
                assert e["s"] == "t"
        # the whole document is valid JSON as serialized
        json.loads(json.dumps(doc))

    def test_spans_balance(self):
        tracer, _ = _traced_run()
        depth = 0
        for e in tracer.events:  # emission order
            if e["ph"] == "B":
                depth += 1
            elif e["ph"] == "E":
                depth -= 1
                assert depth >= 0, "E without matching B"
        assert depth == 0, "unclosed span"

    def test_driver_and_interproc_events_present(self):
        tracer, _ = _traced_run()
        names = {e["name"] for e in tracer.events}
        assert {"analyze", "finalize", "analysis", "summary"} <= names
        assert "pass" in names
        assert "ptf.create" in names
        assert "apply_summary" in names
        assert "initial_fetch" in names
        assert any(n.startswith("eval ") for n in names)

    def test_ptf_reuse_event_carries_alias_pattern(self):
        tracer, _ = _traced_run()
        reuses = [e for e in tracer.events if e["name"] == "ptf.reuse"]
        assert reuses, "set() is called twice with the same alias pattern"
        assert all("pattern" in e["args"] for e in reuses)
        assert any(e["args"]["pattern"] != "<empty>" for e in reuses)

    def test_emitted_names_are_in_the_vocabulary(self):
        tracer, _ = _traced_run()
        for e in tracer.events:
            name = e["name"]
            if name.startswith("eval "):
                name = "eval"
            assert name in EVENT_VOCABULARY, f"undocumented event {name!r}"

    def test_every_emission_site_in_the_tree_is_registered(self):
        """Vocabulary closure over the whole source tree, not just the
        sequential path a traced run happens to exercise: every literal
        event name passed to ``.instant/.begin/.end/.complete/.span``
        anywhere under ``src/repro`` must be in ``EVENT_VOCABULARY`` —
        a new emission site (a parallel worker, a future daemon) cannot
        ship an undocumented event."""
        import os
        import re

        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        # the literal dot keeps attribute calls only (never `append(`);
        # f-string names truncate at `{` — "eval {proc}" -> "eval"
        call = re.compile(
            r"\.(?:instant|begin|end|complete|span)\(\s*f?[\"']"
            r"([^\"'{]*)"
        )
        sites: dict[str, list[str]] = {}
        for dirpath, _dirnames, filenames in os.walk(root):
            for fn in sorted(filenames):
                if not fn.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fn)
                with open(path, "r", encoding="utf-8") as fh:
                    text = fh.read()
                for m in call.finditer(text):
                    name = m.group(1).strip()
                    if not name:
                        continue
                    rel = os.path.relpath(path, root)
                    sites.setdefault(name, []).append(rel)
        assert sites, "no emission sites found — regex rotted?"
        unregistered = {
            name: files
            for name, files in sites.items()
            if name not in EVENT_VOCABULARY
        }
        assert not unregistered, (
            f"events emitted but missing from EVENT_VOCABULARY: "
            f"{unregistered}"
        )


class TestZeroCostWhenDisabled:
    def _run(self, **opt_kwargs):
        reset_interning()
        program = load_program(SOURCE, "m.c", "m")
        analyzer = analyze(program, AnalyzerOptions(**opt_kwargs))
        summary = {
            str(loc): sorted(str(v) for v in vals)
            for loc, vals in analyzer.main_frame.ptf.summary().items()
        }
        counters = analyzer.metrics.counters()
        return summary, counters, dict(analyzer.stats)

    def test_trace_none_is_bit_identical(self):
        base_summary, base_counters, base_stats = self._run()
        traced_summary, traced_counters, traced_stats = self._run(
            trace=Tracer()
        )
        assert base_summary == traced_summary
        assert base_counters == traced_counters
        assert base_stats == traced_stats

    def test_provenance_off_by_default_and_harmless_when_on(self):
        base_summary, base_counters, _ = self._run()
        prov_summary, prov_counters, _ = self._run(provenance=True)
        assert base_summary == prov_summary
        assert base_counters == prov_counters
