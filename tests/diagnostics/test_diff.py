"""Semantic snapshot-differ tests: the drift taxonomy.

Real precision drift is produced by analyzing two *seeded divergent
sources* (one adds an extra assignment through a pointer), so the
precision-loss records and their per-procedure attribution come from the
actual pipeline, not hand-built snapshots.  Perf/mem drift is synthetic
(doctored volatile sections) because wall time is not reproducible.
"""

import json

import pytest

from repro.analysis.engine import AnalyzerOptions
from repro.analysis.results import run_analysis
from repro.diagnostics.diff import (
    DRIFT_KINDS,
    DiffReport,
    FailOn,
    diff_snapshots,
    parse_fail_on,
)
from repro.diagnostics.snapshot import build_snapshot
from repro.frontend.parser import load_program
from repro.memory.pointsto import reset_interning

BASE_SOURCE = """
int g;
int h;
void set(int **slot, int *v) { *slot = v; }
int main(void) { int *p; set(&p, &g); return *p; }
"""

# same program, but main's pointer can now also reach h: a genuine
# precision loss in main (p's points-to set grew)
WIDENED_SOURCE = """
int g;
int h;
void set(int **slot, int *v) { *slot = v; }
int main(void) { int *p; set(&p, &g); set(&p, &h); return *p; }
"""


def snap_of(source, name="prog", **option_kwargs):
    reset_interning()
    options = AnalyzerOptions(**option_kwargs)
    program = load_program(source, f"{name}.c", name)
    result = run_analysis(program, options)
    return build_snapshot(result, options=options, program_name=name)


def clone(snap):
    return json.loads(json.dumps(snap))


class TestBitIdentical:
    def test_self_diff(self):
        a = snap_of(BASE_SOURCE)
        b = snap_of(BASE_SOURCE)
        report = diff_snapshots(a, b)
        assert report.identical
        assert report.classes() == {"bit-identical"}

    def test_invalid_snapshot_rejected(self):
        a = snap_of(BASE_SOURCE)
        with pytest.raises(ValueError, match="not a valid repro snapshot"):
            diff_snapshots(a, {"format": a["format"]})


class TestPrecisionDrift:
    def test_widened_source_is_precision_loss_with_attribution(self):
        old = snap_of(BASE_SOURCE)
        new = snap_of(WIDENED_SOURCE)
        report = diff_snapshots(old, new)
        assert "precision-loss" in report.classes()
        losses = [r for r in report.records if r.kind == "precision-loss"]
        assert any(r.proc == "main" for r in losses)
        # the gained (loc, target) fact names h
        assert any("h" in r.detail for r in losses)
        # and at least one record carries a ready-made explain query
        assert any(r.explain.endswith("@main") for r in losses)

    def test_reverse_direction_is_precision_gain(self):
        old = snap_of(WIDENED_SOURCE)
        new = snap_of(BASE_SOURCE)
        report = diff_snapshots(old, new)
        gains = [r for r in report.records if r.kind == "precision-gain"]
        # the h fact vanished from main, attributed and explainable
        # (different *sources* can additionally rename extended
        # parameters, so we assert the gain, not the absence of noise)
        assert any(
            r.proc == "main" and "h" in r.detail and "vanished" in r.detail
            for r in gains
        )

    def test_semantic_knob_shows_up_as_drift(self):
        free = snap_of(BASE_SOURCE)
        capped = snap_of(BASE_SOURCE, max_ptfs_total=1)
        report = diff_snapshots(free, capped)
        assert not report.identical
        assert "precision-loss" in report.classes()

    def test_digest_only_snapshots_still_classify(self):
        old = snap_of(BASE_SOURCE)
        new = snap_of(WIDENED_SOURCE)
        del old["solution"], new["solution"]
        report = diff_snapshots(old, new)
        assert not report.identical
        # without the solution the differ falls back to the precision
        # profile / shape records instead of fact-level attribution
        assert report.classes() & {"precision-loss", "precision-gain", "shape-change"}

    def test_new_quarantine_is_precision_loss(self):
        a = snap_of(BASE_SOURCE)
        b = clone(a)
        b["degradation"]["quarantined"] = ["set"]
        report = diff_snapshots(a, b)
        losses = [r for r in report.records if r.kind == "precision-loss"]
        assert any(r.proc == "set" and "quarantined" in r.detail for r in losses)


class TestShapeChange:
    def test_added_procedure(self):
        a = snap_of(BASE_SOURCE)
        b = clone(a)
        b["digest"]["procedures"]["brand_new"] = "0" * 64
        b["digest"]["program"] = "0" * 64  # digests disagree
        report = diff_snapshots(a, b)
        shapes = [r for r in report.records if r.kind == "shape-change"]
        assert any(r.proc == "brand_new" for r in shapes)

    def test_call_graph_change(self):
        a = snap_of(BASE_SOURCE)
        b = clone(a)
        b["call_graph"]["main"] = []
        b["digest"]["program"] = "f" * 64  # digests disagree
        report = diff_snapshots(a, b)
        assert any(
            r.kind == "shape-change" and "call graph" in r.detail
            for r in report.records
        )


class TestPerfAndMemory:
    def test_perf_regression_with_attribution(self):
        a = snap_of(BASE_SOURCE)
        b = clone(a)
        b["volatile"]["perf"]["elapsed_seconds"] = (
            a["volatile"]["perf"]["elapsed_seconds"] + 10.0
        )
        b["volatile"]["perf"]["procedures_self"] = {"main": 10.0}
        report = diff_snapshots(a, b)
        regs = [r for r in report.records if r.kind == "perf-regression"]
        assert regs, report.summary_lines()
        assert any(r.proc == "main" for r in regs)

    def test_perf_improvement(self):
        a = snap_of(BASE_SOURCE)
        b = clone(a)
        a["volatile"]["perf"]["elapsed_seconds"] = 10.0
        b["volatile"]["perf"]["elapsed_seconds"] = 1.0
        report = diff_snapshots(a, b)
        assert "perf-improvement" in report.classes()

    def test_small_deltas_are_noise(self):
        a = snap_of(BASE_SOURCE)
        b = clone(a)
        a["volatile"]["perf"]["elapsed_seconds"] = 0.010
        b["volatile"]["perf"]["elapsed_seconds"] = 0.012  # below the 5 ms floor
        report = diff_snapshots(a, b)
        assert "perf-regression" not in report.classes()

    def test_mem_regression(self):
        a = snap_of(BASE_SOURCE)
        b = clone(a)
        a["volatile"]["memory"]["tracemalloc_peak_kb"] = 1000.0
        b["volatile"]["memory"]["tracemalloc_peak_kb"] = 2000.0
        report = diff_snapshots(a, b)
        assert "mem-regression" in report.classes()

    def test_mem_below_floor_is_noise(self):
        a = snap_of(BASE_SOURCE)
        b = clone(a)
        a["volatile"]["memory"]["blocks_created"] = 100
        b["volatile"]["memory"]["blocks_created"] = 150  # +50%, below 256 floor
        report = diff_snapshots(a, b)
        assert "mem-regression" not in report.classes()


class TestFailOn:
    def test_parse_classes_and_thresholds(self):
        spec = parse_fail_on("precision-loss,perf:5%,mem:20%")
        assert spec.kinds == {"precision-loss", "perf-regression", "mem-regression"}
        assert spec.perf_threshold == pytest.approx(0.05)
        assert spec.mem_threshold == pytest.approx(0.20)

    def test_parse_bare_perf_and_mem(self):
        spec = parse_fail_on("perf,mem")
        assert spec.kinds == {"perf-regression", "mem-regression"}
        assert spec.perf_threshold is None

    def test_parse_empty(self):
        assert parse_fail_on(None).kinds == set()
        assert parse_fail_on("").kinds == set()

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError, match="unknown --fail-on class"):
            parse_fail_on("precison-loss")

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError, match="bad --fail-on threshold"):
            parse_fail_on("perf:fast")

    def test_failed_intersects_present_classes(self):
        old = snap_of(BASE_SOURCE)
        new = snap_of(WIDENED_SOURCE)
        report = diff_snapshots(old, new)
        assert report.failed(parse_fail_on("precision-loss")) == {"precision-loss"}
        assert report.failed(parse_fail_on("mem")) == set()


class TestReportSurface:
    def test_as_dict_and_summary_are_ordered(self):
        old = snap_of(BASE_SOURCE)
        new = snap_of(WIDENED_SOURCE)
        report = diff_snapshots(old, new)
        payload = report.as_dict()
        kinds = [r["kind"] for r in payload["records"]]
        assert kinds == sorted(kinds, key=DRIFT_KINDS.index)
        assert payload["identical"] is False
        assert set(payload["classes"]) == report.classes()
        assert len(report.summary_lines()) == len(report.records)

    def test_unknown_kind_rejected(self):
        report = DiffReport("a", "b")
        with pytest.raises(AssertionError):
            report.add("not-a-kind")

    def test_failed_with_default_failon(self):
        report = DiffReport("a", "b")
        report.add("precision-loss", proc="main")
        assert report.failed(FailOn()) == set()
