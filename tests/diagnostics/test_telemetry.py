"""Tests for the serve-path telemetry layer (repro.diagnostics.telemetry).

The load-bearing property is the histogram's accuracy contract: every
reported quantile is within one bucket's relative-error bound of the
exact sorted-sample quantile computed with the same nearest-rank rule.
Hypothesis drives that over adversarial positive samples spanning many
orders of magnitude.  The merge tests pin exactness (digest equality,
not float closeness) and the algebra the load generator leans on:
merging is associative and commutative, so per-thread histograms fold
to the same distribution in any order.
"""

import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagnostics.telemetry import (
    DEFAULT_RELATIVE_ERROR,
    Counter,
    Gauge,
    LogHistogram,
    TelemetryRegistry,
    TokenBucket,
)

# positive samples spanning ~12 orders of magnitude (microseconds to
# hours, if read as milliseconds) — the histogram must hold its error
# bound across the whole range, not just around its "typical" scale
positive_samples = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


def exact_quantile(values, q):
    """The nearest-rank quantile the histogram approximates: rank
    ``max(1, ceil(q * n))`` over the sorted sample."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


# -- quantile accuracy ----------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(values=positive_samples, q=st.floats(min_value=0.0, max_value=1.0))
def test_quantile_within_relative_error_of_exact(values, q):
    hist = LogHistogram()
    hist.record_many(values)
    estimate = hist.quantile(q)
    exact = exact_quantile(values, q)
    assert estimate is not None
    # one bucket's bound: |est - exact| <= eps * exact, with a hair of
    # slack for the log/ceil boundary landing a value one bucket over
    tolerance = hist.relative_error * exact * 1.0001 + 1e-12
    assert abs(estimate - exact) <= tolerance


@settings(max_examples=50, deadline=None)
@given(values=positive_samples)
def test_extreme_quantiles_are_exact(values):
    hist = LogHistogram()
    hist.record_many(values)
    assert hist.quantile(0.0) == min(values)
    assert hist.quantile(1.0) == max(values)
    assert hist.min == min(values)
    assert hist.max == max(values)
    assert hist.count == len(values)


def test_empty_histogram_reports_none():
    hist = LogHistogram()
    assert hist.quantile(0.5) is None
    snap = hist.snapshot()
    assert snap["count"] == 0
    assert snap["min"] is None and snap["max"] is None
    assert snap["mean"] is None and snap["p99"] is None


def test_quantile_rejects_out_of_range():
    hist = LogHistogram()
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        hist.quantile(-0.1)


def test_non_positive_values_land_in_zero_bucket():
    hist = LogHistogram()
    hist.record_many([-1.0, 0.0, 0.0, 5.0])
    assert hist.count == 4
    assert hist.min == -1.0 and hist.max == 5.0
    # rank 2 and 3 of 4 fall in the zero bucket
    assert hist.quantile(0.5) == 0.0


def test_relative_error_validation():
    with pytest.raises(ValueError):
        LogHistogram(relative_error=0.0)
    with pytest.raises(ValueError):
        LogHistogram(relative_error=1.0)


def test_snapshot_shape():
    hist = LogHistogram()
    hist.record_many([1.0, 2.0, 3.0])
    snap = hist.snapshot()
    assert snap["count"] == 3
    assert snap["min"] == 1.0 and snap["max"] == 3.0
    assert snap["mean"] == 2.0
    assert snap["relative_error"] == DEFAULT_RELATIVE_ERROR
    for key in ("p50", "p90", "p99"):
        assert snap[key] is not None


# -- merging --------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(a=positive_samples, b=positive_samples)
def test_merge_is_commutative(a, b):
    ha, hb = LogHistogram(), LogHistogram()
    ha.record_many(a)
    hb.record_many(b)
    ab = LogHistogram.merged([ha, hb])
    ba = LogHistogram.merged([hb, ha])
    assert ab.digest() == ba.digest()
    assert ab.count == len(a) + len(b)


@settings(max_examples=50, deadline=None)
@given(a=positive_samples, b=positive_samples, c=positive_samples)
def test_merge_is_associative(a, b, c):
    def fresh(samples):
        h = LogHistogram()
        h.record_many(samples)
        return h

    left = LogHistogram.merged([fresh(a), fresh(b)]).merge(fresh(c))
    right = fresh(a).merge(LogHistogram.merged([fresh(b), fresh(c)]))
    assert left.digest() == right.digest()


@settings(max_examples=50, deadline=None)
@given(values=positive_samples)
def test_merge_equals_direct_recording(values):
    """Splitting a sample across histograms and merging reproduces the
    single-histogram digest — recording order never matters."""
    direct = LogHistogram()
    direct.record_many(values)
    half = len(values) // 2
    a, b = LogHistogram(), LogHistogram()
    a.record_many(values[:half])
    b.record_many(values[half:])
    assert LogHistogram.merged([a, b]).digest() == direct.digest()


def test_merge_rejects_mismatched_relative_error():
    with pytest.raises(ValueError):
        LogHistogram(relative_error=0.01).merge(LogHistogram(relative_error=0.02))


def test_merged_of_nothing_is_empty():
    hist = LogHistogram.merged([])
    assert hist.count == 0


# -- thread safety --------------------------------------------------------


def test_concurrent_record_loses_nothing():
    """16 threads hammer one histogram; the result is digest-identical
    to recording the same multiset sequentially."""
    hist = LogHistogram()
    per_thread = 500
    threads = 16

    def worker(seed):
        for i in range(per_thread):
            hist.record(0.1 + ((seed * per_thread + i) % 97))

    pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()

    sequential = LogHistogram()
    for seed in range(threads):
        for i in range(per_thread):
            sequential.record(0.1 + ((seed * per_thread + i) % 97))

    assert hist.count == threads * per_thread
    assert hist.digest() == sequential.digest()


# -- counters / gauges / registry ----------------------------------------


def test_counter_and_gauge():
    c = Counter("requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = Gauge("in_flight")
    g.set(3)
    g.add(-1)
    assert g.value == 2


def test_registry_create_on_first_use_and_as_dict():
    reg = TelemetryRegistry()
    assert reg.counter("requests") is reg.counter("requests")
    assert reg.histogram("latency") is reg.histogram("latency")
    reg.counter("requests").inc(2)
    reg.gauge("in_flight").set(1)
    reg.histogram("latency").record(5.0)
    snap = reg.as_dict()
    assert snap["counters"] == {"requests": 2}
    assert snap["gauges"] == {"in_flight": 1}
    assert snap["histograms"]["latency"]["count"] == 1


def test_registry_merge():
    a, b = TelemetryRegistry(), TelemetryRegistry()
    a.counter("requests").inc(2)
    b.counter("requests").inc(3)
    b.counter("errors").inc(1)
    a.histogram("latency").record(1.0)
    b.histogram("latency").record(2.0)
    a.merge(b)
    snap = a.as_dict()
    assert snap["counters"] == {"errors": 1, "requests": 5}
    assert snap["histograms"]["latency"]["count"] == 2


# -- the token bucket (overload shedding, docs/ROBUSTNESS.md §8) ------------


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_starts_full_at_burst(self):
        bucket = TokenBucket(10.0, burst=3.0, clock=_FakeClock())
        assert bucket.tokens == 3.0

    def test_burst_defaults_to_rate_floor_one(self):
        assert TokenBucket(5.0, clock=_FakeClock()).burst == 5.0
        assert TokenBucket(0.25, clock=_FakeClock()).burst == 1.0

    def test_rejects_nonpositive_rate_and_burst(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(-1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0.0)

    def test_take_drains_then_refuses_without_blocking(self):
        clock = _FakeClock()
        bucket = TokenBucket(1.0, burst=2.0, clock=clock)
        assert bucket.take() and bucket.take()
        assert not bucket.take()  # returned immediately, no sleep
        assert bucket.tokens == 0.0

    def test_refill_is_rate_times_elapsed_capped_at_burst(self):
        clock = _FakeClock()
        bucket = TokenBucket(2.0, burst=4.0, clock=clock)
        assert bucket.take(4.0)
        clock.now = 1.5
        assert bucket.tokens == pytest.approx(3.0)  # 1.5 s * 2/s
        clock.now = 100.0
        assert bucket.tokens == 4.0  # never exceeds burst

    def test_batch_take_is_all_or_nothing(self):
        bucket = TokenBucket(1.0, burst=3.0, clock=_FakeClock())
        assert not bucket.take(4.0)
        # the refused batch consumed nothing
        assert bucket.tokens == 3.0
        assert bucket.take(3.0)

    def test_retry_after_is_deficit_over_rate(self):
        clock = _FakeClock()
        bucket = TokenBucket(2.0, burst=2.0, clock=clock)
        assert bucket.retry_after_seconds() == 0.0
        assert bucket.take(2.0)
        assert bucket.retry_after_seconds(1.0) == pytest.approx(0.5)
        assert bucket.retry_after_seconds(2.0) == pytest.approx(1.0)
        clock.now = 0.5  # one token refilled
        assert bucket.retry_after_seconds(1.0) == 0.0

    def test_admission_sequence_is_deterministic(self):
        def run():
            clock = _FakeClock()
            bucket = TokenBucket(1.0, burst=2.0, clock=clock)
            verdicts = []
            for step in range(10):
                clock.now = step * 0.4
                verdicts.append(bucket.take())
            return verdicts

        assert run() == run()

    def test_clock_going_backwards_does_not_mint_tokens(self):
        clock = _FakeClock()
        clock.now = 10.0
        bucket = TokenBucket(1.0, burst=1.0, clock=clock)
        assert bucket.take()
        clock.now = 5.0  # a (hypothetically) misbehaving clock
        assert bucket.tokens == 0.0


# -- cross-process transport (the parallel observatory, ISSUE 9) ------------


@given(positive_samples)
@settings(max_examples=50, deadline=None)
def test_histogram_payload_round_trip_is_exact(values):
    """to_payload/from_payload must transport the *exact* mergeable
    state — a rebuilt histogram answers every quantile identically."""
    h = LogHistogram()
    h.record_many(values)
    rebuilt = LogHistogram.from_payload(h.to_payload())
    assert rebuilt.snapshot() == h.snapshot()
    assert rebuilt.digest() == h.digest()


def test_registry_payload_round_trip_and_merge():
    worker = TelemetryRegistry()
    worker.counter("parallel.tasks").inc(3)
    worker.gauge("parallel.jobs").set(2)
    worker.histogram("parallel.run_ms").record_many([1.0, 10.0, 100.0])
    payload = worker.to_payload()
    # payload is plain data: JSON round-trips it unchanged
    payload = json.loads(json.dumps(payload))

    parent = TelemetryRegistry()
    parent.counter("parallel.tasks").inc(1)
    parent.histogram("parallel.run_ms").record(5.0)
    parent.merge_payload(payload)
    snap = parent.as_dict()
    assert snap["counters"]["parallel.tasks"] == 4
    assert snap["gauges"]["parallel.jobs"] == 2
    assert snap["histograms"]["parallel.run_ms"]["count"] == 4

    # bucket-exact: payload merge == direct merge of the live registries
    direct = TelemetryRegistry()
    direct.counter("parallel.tasks").inc(1)
    direct.histogram("parallel.run_ms").record(5.0)
    direct.merge(worker)
    assert (
        direct.histogram("parallel.run_ms").digest()
        == parent.histogram("parallel.run_ms").digest()
    )


# -- Prometheus text exposition (the `metrics` admin op) --------------------


def test_prometheus_text_shape():
    from repro.diagnostics.telemetry import prometheus_text

    reg = TelemetryRegistry()
    reg.counter("requests").inc(7)
    reg.gauge("in_flight").set(2)
    reg.histogram("latency.points_to").record_many([1.0, 2.0, 3.0])
    text = prometheus_text(reg, extra_gauges={"server.uptime_seconds": 1.5})
    lines = text.splitlines()
    assert "# TYPE repro_requests_total counter" in lines
    assert "repro_requests_total 7" in lines
    assert "# TYPE repro_in_flight gauge" in lines
    assert "repro_in_flight 2" in lines
    assert "# TYPE repro_server_uptime_seconds gauge" in lines
    assert "repro_server_uptime_seconds 1.5" in lines
    assert "# TYPE repro_latency_points_to summary" in lines
    assert "repro_latency_points_to_count 3" in lines
    assert any(
        l.startswith('repro_latency_points_to{quantile="0.5"}')
        for l in lines
    )
    # every HELP has a TYPE, every metric name is legal
    import re

    metric = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*")
    for line in lines:
        if not line.startswith("#"):
            assert metric.match(line), line


def test_prometheus_text_without_registry():
    """Telemetry off: the extra server gauges still render (scraping a
    --no-telemetry daemon yields levels, not an error)."""
    from repro.diagnostics.telemetry import prometheus_text

    text = prometheus_text(None, extra_gauges={"server.requests": 4})
    assert "repro_server_requests 4" in text.splitlines()


def test_prometheus_text_is_deterministic():
    from repro.diagnostics.telemetry import prometheus_text

    def build():
        reg = TelemetryRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.gauge("z").set(1)
        reg.histogram("h").record(1.0)
        return prometheus_text(reg)

    assert build() == build()
