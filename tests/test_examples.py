"""Every example script must run cleanly and demonstrate what it claims."""

import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "context_sensitivity.py",
    "parallelize.py",
    "function_pointers.py",
    "optimize.py",
    "whole_project.py",
]

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    path = os.path.join(REPO, "examples", name)
    assert os.path.isfile(path), path
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{name} produced no output"


def test_quickstart_shows_ptfs():
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "examples", "quickstart.py")],
        capture_output=True, text=True, timeout=120, cwd=REPO,
    )
    assert "PTF" in proc.stdout
    assert "avg PTFs / procedure" in proc.stdout


def test_context_sensitivity_shows_spectrum():
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "examples", "context_sensitivity.py")],
        capture_output=True, text=True, timeout=120, cwd=REPO,
    )
    assert "Wilson-Lam" in proc.stdout
    assert "Andersen" in proc.stdout
    assert "Steensgaard" in proc.stdout


def test_parallelize_reports_speedups():
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "examples", "parallelize.py")],
        capture_output=True, text=True, timeout=120, cwd=REPO,
    )
    assert "PARALLEL" in proc.stdout
    assert "speedup" in proc.stdout
