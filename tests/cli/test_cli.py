"""Command-line interface tests."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        """
        int g;
        int *q;
        void set(int **slot, int *v) { *slot = v; }
        int main(void) { set(&q, &g); return 0; }
        """
    )
    return str(path)


class TestAnalyze:
    def test_basic(self, prog_file, capsys):
        assert main(["analyze", prog_file]) == 0
        out = capsys.readouterr().out
        assert "procedures" in out and "avg PTFs" in out

    def test_points_to_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--points-to", "q"]) == 0
        out = capsys.readouterr().out
        assert "'g'" in out

    def test_points_to_with_proc(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--points-to", "main:q"]) == 0
        assert "'g'" in capsys.readouterr().out

    def test_ptfs_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--ptfs", "set"]) == 0
        out = capsys.readouterr().out
        assert "PTF#" in out and "initial" in out

    def test_dense_state_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--state", "dense"]) == 0

    def test_heap_context_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--heap-context", "2"]) == 0

    def test_missing_file(self, capsys):
        assert main(["analyze", "/no/such/file.c"]) == 2


class TestStatsJson:
    def test_bare_flag_dumps_to_stdout(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--stats-json"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        stats = json.loads(out[start : out.rindex("}") + 1])
        assert stats["lookup_cache"] is True
        assert stats["state_kind"] == "sparse"
        assert stats["counters"]["lookups"] > 0
        assert stats["counters"]["eval_passes"] > 0
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert "analysis" in stats["timers"]["phases"]
        assert "main" in stats["timers"]["procedures"]

    def test_path_writes_file(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "stats.json"
        assert main(["analyze", prog_file, "--stats-json", str(dest)]) == 0
        stats = json.loads(dest.read_text())
        assert stats["counters"]["dom_walk_steps"] >= 0
        assert stats["elapsed_seconds"] >= 0
        # the human-readable report still goes to stdout
        assert "procedures" in capsys.readouterr().out

    def test_no_lookup_cache_flag(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "stats.json"
        assert (
            main(
                [
                    "analyze",
                    prog_file,
                    "--no-lookup-cache",
                    "--stats-json",
                    str(dest),
                ]
            )
            == 0
        )
        stats = json.loads(dest.read_text())
        assert stats["lookup_cache"] is False
        assert stats["counters"]["cache_hits"] == 0
        assert stats["counters"]["cache_misses"] == 0
        assert stats["counters"]["dom_walk_steps"] > 0

    def test_cache_modes_agree_on_points_to(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--points-to", "q"]) == 0
        with_cache = capsys.readouterr().out
        assert (
            main(["analyze", prog_file, "--no-lookup-cache", "--points-to", "q"])
            == 0
        )
        without = capsys.readouterr().out
        assert with_cache == without

    def test_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main(void { return 0; }")
        assert main(["analyze", str(bad)]) == 2


class TestCallgraph:
    def test_edges_printed(self, prog_file, capsys):
        assert main(["callgraph", prog_file]) == 0
        out = capsys.readouterr().out
        assert "main -> set" in out


class TestCompare:
    def test_three_analyses(self, prog_file, capsys):
        assert main(["compare", prog_file, "--var", "q"]) == 0
        out = capsys.readouterr().out
        assert "wilson-lam" in out and "andersen" in out and "steensgaard" in out


class TestParallelize:
    def test_loop_report(self, tmp_path, capsys):
        path = tmp_path / "loops.c"
        path.write_text(
            """
            double a[64], b[64];
            int main(void) {
                int i;
                for (i = 0; i < 64; i++)
                    b[i] = a[i] * 2.0;
                return 0;
            }
            """
        )
        assert main(["parallelize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PARALLEL" in out and "speedups" in out


class TestTables:
    def test_table2_subset(self, capsys):
        assert main(["table2", "--names", "allroots"]) == 0
        out = capsys.readouterr().out
        assert "allroots" in out


class TestReport:
    def test_report_runs(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "reproduction report" in out
        assert "per-context" in out
