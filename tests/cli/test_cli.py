"""Command-line interface tests."""

import pytest

from repro.cli import main


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        """
        int g;
        int *q;
        void set(int **slot, int *v) { *slot = v; }
        int main(void) { set(&q, &g); return 0; }
        """
    )
    return str(path)


class TestAnalyze:
    def test_basic(self, prog_file, capsys):
        assert main(["analyze", prog_file]) == 0
        out = capsys.readouterr().out
        assert "procedures" in out and "avg PTFs" in out

    def test_points_to_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--points-to", "q"]) == 0
        out = capsys.readouterr().out
        assert "'g'" in out

    def test_points_to_with_proc(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--points-to", "main:q"]) == 0
        assert "'g'" in capsys.readouterr().out

    def test_ptfs_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--ptfs", "set"]) == 0
        out = capsys.readouterr().out
        assert "PTF#" in out and "initial" in out

    def test_dense_state_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--state", "dense"]) == 0

    def test_heap_context_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--heap-context", "2"]) == 0

    def test_missing_file(self, capsys):
        assert main(["analyze", "/no/such/file.c"]) == 2

    def test_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main(void { return 0; }")
        assert main(["analyze", str(bad)]) == 2


class TestCallgraph:
    def test_edges_printed(self, prog_file, capsys):
        assert main(["callgraph", prog_file]) == 0
        out = capsys.readouterr().out
        assert "main -> set" in out


class TestCompare:
    def test_three_analyses(self, prog_file, capsys):
        assert main(["compare", prog_file, "--var", "q"]) == 0
        out = capsys.readouterr().out
        assert "wilson-lam" in out and "andersen" in out and "steensgaard" in out


class TestParallelize:
    def test_loop_report(self, tmp_path, capsys):
        path = tmp_path / "loops.c"
        path.write_text(
            """
            double a[64], b[64];
            int main(void) {
                int i;
                for (i = 0; i < 64; i++)
                    b[i] = a[i] * 2.0;
                return 0;
            }
            """
        )
        assert main(["parallelize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PARALLEL" in out and "speedups" in out


class TestTables:
    def test_table2_subset(self, capsys):
        assert main(["table2", "--names", "allroots"]) == 0
        out = capsys.readouterr().out
        assert "allroots" in out


class TestReport:
    def test_report_runs(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "reproduction report" in out
        assert "per-context" in out
