"""Command-line interface tests."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def prog_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        """
        int g;
        int *q;
        void set(int **slot, int *v) { *slot = v; }
        int main(void) { set(&q, &g); return 0; }
        """
    )
    return str(path)


class TestAnalyze:
    def test_basic(self, prog_file, capsys):
        assert main(["analyze", prog_file]) == 0
        out = capsys.readouterr().out
        assert "procedures" in out and "avg PTFs" in out

    def test_points_to_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--points-to", "q"]) == 0
        out = capsys.readouterr().out
        assert "'g'" in out

    def test_points_to_with_proc(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--points-to", "main:q"]) == 0
        assert "'g'" in capsys.readouterr().out

    def test_ptfs_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--ptfs", "set"]) == 0
        out = capsys.readouterr().out
        assert "PTF#" in out and "initial" in out

    def test_dense_state_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--state", "dense"]) == 0

    def test_heap_context_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--heap-context", "2"]) == 0

    def test_missing_file(self, capsys):
        assert main(["analyze", "/no/such/file.c"]) == 2


class TestStatsJson:
    def test_bare_flag_dumps_to_stdout(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--stats-json"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        stats = json.loads(out[start : out.rindex("}") + 1])
        assert stats["lookup_cache"] is True
        assert stats["state_kind"] == "sparse"
        assert stats["counters"]["lookups"] > 0
        assert stats["counters"]["eval_passes"] > 0
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert "analysis" in stats["timers"]["phases"]
        assert "main" in stats["timers"]["procedures"]
        # the exclusive (self) buckets and the derived block are part of
        # the --stats-json schema
        assert "main" in stats["timers"]["procedures_self"]
        assert (
            stats["timers"]["procedures_self"]["main"]
            <= stats["timers"]["procedures"]["main"] + 1e-9
        )
        assert stats["derived"]["dom_steps_per_lookup"] >= 0.0
        assert 0.0 <= stats["derived"]["cache_hit_rate"] <= 1.0

    def test_path_writes_file(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "stats.json"
        assert main(["analyze", prog_file, "--stats-json", str(dest)]) == 0
        stats = json.loads(dest.read_text())
        assert stats["counters"]["dom_walk_steps"] >= 0
        assert stats["elapsed_seconds"] >= 0
        # the human-readable report still goes to stdout
        assert "procedures" in capsys.readouterr().out

    def test_no_lookup_cache_flag(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "stats.json"
        assert (
            main(
                [
                    "analyze",
                    prog_file,
                    "--no-lookup-cache",
                    "--stats-json",
                    str(dest),
                ]
            )
            == 0
        )
        stats = json.loads(dest.read_text())
        assert stats["lookup_cache"] is False
        assert stats["counters"]["cache_hits"] == 0
        assert stats["counters"]["cache_misses"] == 0
        assert stats["counters"]["dom_walk_steps"] > 0

    def test_cache_modes_agree_on_points_to(self, prog_file, capsys):
        def lines(out):
            # everything but the wall-clock line must agree exactly
            return [l for l in out.splitlines() if "analysis time" not in l]

        assert main(["analyze", prog_file, "--points-to", "q"]) == 0
        with_cache = capsys.readouterr().out
        assert (
            main(["analyze", prog_file, "--no-lookup-cache", "--points-to", "q"])
            == 0
        )
        without = capsys.readouterr().out
        assert lines(with_cache) == lines(without)

    def test_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main(void { return 0; }")
        assert main(["analyze", str(bad)]) == 2


class TestRobustness:
    """Budget flags, fault injection, and the exit-code convention
    (0 clean / 2 hard error / 4 partial; see docs/ROBUSTNESS.md)."""

    def test_deadline_zero_exits_partial(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--deadline", "0"]) == 4
        err = capsys.readouterr().err
        assert "deadline" in err and "repro:" in err

    def test_strict_deadline_is_hard_error(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--deadline", "0", "--strict"]) == 2
        assert "strict" in capsys.readouterr().err

    def test_injected_exhaustion_exits_partial_and_stays_sound(
        self, prog_file, capsys
    ):
        assert (
            main(
                [
                    "analyze",
                    prog_file,
                    "--inject-faults",
                    "exhaust=set",
                    "--points-to",
                    "q",
                ]
            )
            == 4
        )
        captured = capsys.readouterr()
        # the precise answer {g} must survive inside the havoced superset
        assert "'g'" in captured.out
        assert "injected" in captured.err

    def test_max_call_depth_flag(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--max-call-depth", "1"]) == 4
        assert "call_depth" in capsys.readouterr().err

    def test_bad_unit_in_project_degrades_to_partial(
        self, prog_file, tmp_path, capsys
    ):
        bad = tmp_path / "broken.c"
        bad.write_text("int broken( {{{")
        assert main(["analyze", prog_file, str(bad)]) == 4
        err = capsys.readouterr().err
        assert "frontend" in err and "broken.c" in err

    def test_bad_unit_strict_is_hard_error(self, prog_file, tmp_path, capsys):
        bad = tmp_path / "broken.c"
        bad.write_text("int broken( {{{")
        assert main(["analyze", prog_file, str(bad), "--strict"]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_default_guards_do_not_change_output(self, prog_file, capsys):
        def lines(out):
            return [l for l in out.splitlines() if "analysis time" not in l]

        assert main(["analyze", prog_file, "--points-to", "q"]) == 0
        default = capsys.readouterr().out
        assert (
            main(
                [
                    "analyze",
                    prog_file,
                    "--points-to",
                    "q",
                    "--max-passes",
                    "200",
                    "--max-call-depth",
                    "200",
                    "--deadline",
                    "3600",
                ]
            )
            == 0
        )
        generous = capsys.readouterr().out
        assert lines(default) == lines(generous)

    def test_degradation_lands_in_stats_json(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "stats.json"
        assert (
            main(
                [
                    "analyze",
                    prog_file,
                    "--max-call-depth",
                    "1",
                    "--stats-json",
                    str(dest),
                ]
            )
            == 4
        )
        stats = json.loads(dest.read_text())
        assert stats["degradation"]["reasons"]["call_depth"] >= 1
        assert stats["counters"]["guard_trips"] >= 1
        assert stats["counters"]["degraded_calls"] >= 1

    def test_degrade_events_reach_the_trace(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "trace.json"
        assert (
            main(
                [
                    "analyze",
                    prog_file,
                    "--max-call-depth",
                    "1",
                    "--trace-json",
                    str(dest),
                ]
            )
            == 4
        )
        names = {e["name"] for e in json.loads(dest.read_text())["traceEvents"]}
        assert "degrade.call" in names

    def test_bad_fault_spec_rejected(self, prog_file, capsys):
        with pytest.raises(ValueError):
            main(["analyze", prog_file, "--inject-faults", "bogus=0.5"])


class TestTraceJson:
    def test_path_writes_chrome_trace(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "trace.json"
        assert main(["analyze", prog_file, "--trace-json", str(dest)]) == 0
        doc = json.loads(dest.read_text())
        events = doc["traceEvents"]
        assert events
        assert all(e["ph"] in {"B", "E", "X", "i"} for e in events)
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        names = {e["name"] for e in events}
        assert "analyze" in names and "ptf.create" in names

    def test_bare_flag_dumps_to_stdout(self, prog_file, capsys):
        assert main(["analyze", prog_file, "--trace-json"]) == 0
        out = capsys.readouterr().out
        start = out.index('{"traceEvents"')
        doc = json.loads(out[start:].strip())
        assert doc["traceEvents"]

    def test_jsonl_variant(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "trace.jsonl"
        assert main(["analyze", prog_file, "--trace-jsonl", str(dest)]) == 0
        lines = dest.read_text().splitlines()
        assert lines
        assert all(json.loads(l)["ph"] in {"B", "E", "X", "i"} for l in lines)

    def test_no_trace_flag_no_tracer(self, prog_file, tmp_path, capsys):
        # without the flag nothing trace-related reaches stdout or disk
        assert main(["analyze", prog_file]) == 0
        out = capsys.readouterr().out
        assert "traceEvents" not in out


class TestProfileParallel:
    @pytest.fixture
    def two_files(self, tmp_path):
        a = tmp_path / "a.c"
        a.write_text("int g; int *id(int *p) { return p; }\n"
                     "int main(void) { int x; g = *id(&x); return 0; }\n")
        b = tmp_path / "b.c"
        b.write_text("int h(int v) { return v + 1; }\n"
                     "int main(void) { return h(2); }\n")
        return [str(a), str(b)]

    def test_profile_run_writes_profile_trace_and_stats(
        self, two_files, tmp_path, capsys
    ):
        profile = tmp_path / "pp.json"
        trace = tmp_path / "merged.json"
        stats = tmp_path / "stats.json"
        wdir = tmp_path / "wt"
        assert main(
            ["analyze", *two_files, "--jobs", "2",
             "--profile-parallel", str(profile),
             "--trace-json", str(trace),
             "--worker-trace-dir", str(wdir),
             "--stats-json", str(stats)]
        ) == 0
        doc = json.loads(profile.read_text())
        assert doc["format"] == "repro-parprof/1"
        assert doc["theoretical_speedup"] >= doc["measured_speedup"]
        assert [p["name"] for p in doc["programs"]] == ["a", "b"]
        for prog in doc["programs"]:
            assert prog["critical_path"]
            assert prog["candidates"]
        # merged trace: one labeled lane per worker plus the driver
        chrome = json.loads(trace.read_text())
        meta = {
            e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "driver" in meta
        assert any(name.startswith("worker pid=") for name in meta)
        ts = [e["ts"] for e in chrome["traceEvents"]]
        assert ts == sorted(ts)
        # each worker also wrote its own JSONL trace
        assert sorted(p.name for p in wdir.iterdir()) == [
            "a.worker.jsonl", "b.worker.jsonl",
        ]
        # batch stats carry the observatory columns + merged telemetry
        payload = json.loads(stats.read_text())
        assert payload["batch"]["utilization"] is not None
        assert payload["batch"]["critical_path_seconds"] > 0
        assert payload["telemetry"]["counters"]["parallel.tasks"] == 2

    def test_profiled_digests_match_unprofiled(
        self, two_files, tmp_path, capsys
    ):
        plain = tmp_path / "plain.json"
        prof = tmp_path / "prof.json"
        assert main(["analyze", *two_files, "--jobs", "2",
                     "--stats-json", str(plain)]) == 0
        assert main(["analyze", *two_files, "--jobs", "2",
                     "--profile-parallel", str(tmp_path / "pp.json"),
                     "--stats-json", str(prof)]) == 0
        digests = lambda p: {  # noqa: E731
            name: row["digest"]
            for name, row in json.loads(p.read_text())["programs"].items()
        }
        assert digests(plain) == digests(prof)

    def test_parallel_report_renders_text_and_json(
        self, two_files, tmp_path, capsys
    ):
        profile = tmp_path / "pp.json"
        assert main(["analyze", *two_files, "--jobs", "2",
                     "--profile-parallel", str(profile)]) == 0
        capsys.readouterr()
        assert main(["parallel-report", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "theoretical speedup" in out
        assert "summarize these procedures first" in out
        assert main(["parallel-report", str(profile), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-parprof/1"

    def test_parallel_report_rejects_non_profile(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "other/1"}')
        assert main(["parallel-report", str(bogus)]) == 2
        assert "not a parallel profile" in capsys.readouterr().err


class TestExplain:
    def test_explains_pointer(self, prog_file, capsys):
        assert main(["explain", prog_file, "--query", "q"]) == 0
        out = capsys.readouterr().out
        assert "main:q -> g" in out
        assert "summary" in out or "assign" in out

    def test_json_output(self, prog_file, capsys):
        assert main(["explain", prog_file, "--query", "q", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["query"] == "q"
        exps = payload[0]["explanations"]
        assert exps and exps[0]["display"] == "g"
        assert exps[0]["chain"], "derivation chain must be present"

    def test_query_with_proc(self, prog_file, capsys):
        assert main(["explain", prog_file, "--query", "q@main"]) == 0
        assert "main:q -> g" in capsys.readouterr().out

    def test_unknown_proc_exits_nonzero(self, prog_file, capsys):
        assert main(["explain", prog_file, "--query", "q@nope"]) == 2

    def test_unknown_var_reports_no_values(self, prog_file, capsys):
        assert main(["explain", prog_file, "--query", "zzz"]) == 0
        assert "no pointer values" in capsys.readouterr().out


class TestCallgraph:
    def test_edges_printed(self, prog_file, capsys):
        assert main(["callgraph", prog_file]) == 0
        out = capsys.readouterr().out
        assert "main -> set" in out


class TestCompare:
    def test_three_analyses(self, prog_file, capsys):
        assert main(["compare", prog_file, "--var", "q"]) == 0
        out = capsys.readouterr().out
        assert "wilson-lam" in out and "andersen" in out and "steensgaard" in out


class TestParallelize:
    def test_loop_report(self, tmp_path, capsys):
        path = tmp_path / "loops.c"
        path.write_text(
            """
            double a[64], b[64];
            int main(void) {
                int i;
                for (i = 0; i < 64; i++)
                    b[i] = a[i] * 2.0;
                return 0;
            }
            """
        )
        assert main(["parallelize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PARALLEL" in out and "speedups" in out


class TestTables:
    def test_table2_subset(self, capsys):
        assert main(["table2", "--names", "allroots"]) == 0
        out = capsys.readouterr().out
        assert "allroots" in out

    def test_table2_json(self, capsys):
        assert main(["table2", "--names", "allroots", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["name"] == "allroots"
        assert rows[0]["dom_walk_steps"] >= 0
        assert "paper" in rows[0]


class TestReport:
    def test_report_runs(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "reproduction report" in out
        assert "per-context" in out


class TestTable2Status:
    def test_json_rows_carry_status(self, capsys):
        assert main(["table2", "--names", "allroots", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["status"] == "ok"

    def test_record_appends_trajectory(self, tmp_path, capsys, monkeypatch):
        dest = tmp_path / "BENCH_table2.json"
        assert main(["table2", "--names", "allroots", "--record", str(dest)]) == 0
        capsys.readouterr()
        assert main(["table2", "--names", "allroots", "--record", str(dest)]) == 0
        err = capsys.readouterr().err
        assert "recorded entry" in err
        data = json.loads(dest.read_text())
        assert len(data["entries"]) == 2
        assert data["entries"][-1]["rows"][0]["name"] == "allroots"


class TestSnapshot:
    def test_snapshot_to_file(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "snap.json"
        assert main(["snapshot", prog_file, "-o", str(dest)]) == 0
        err = capsys.readouterr().err
        assert "digest" in err
        snap = json.loads(dest.read_text())
        assert snap["format"] == "repro-snapshot/1"
        assert snap["digest"]["program"]
        assert "solution" in snap

    def test_snapshot_to_stdout(self, prog_file, capsys):
        assert main(["snapshot", prog_file]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["format"] == "repro-snapshot/1"

    def test_no_solution_flag(self, prog_file, capsys):
        assert main(["snapshot", prog_file, "--no-solution"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert "solution" not in snap
        assert snap["digest"]["program"]

    def test_memory_flag_samples_peak(self, prog_file, capsys):
        assert main(["snapshot", prog_file, "--memory"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["volatile"]["memory"]["tracemalloc_peak_kb"] > 0

    def test_repeat_runs_share_a_digest(self, prog_file, tmp_path, capsys):
        # same-process reruns need fresh interning for bit-identity
        # (block uids seed iteration order; a fresh process — the real
        # CLI usage — gets this for free, see the snapshot docstring)
        from repro.memory.pointsto import reset_interning

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        reset_interning()
        assert main(["snapshot", prog_file, "-o", str(a)]) == 0
        reset_interning()
        assert main(["snapshot", prog_file, "-o", str(b)]) == 0
        sa = json.loads(a.read_text())
        sb = json.loads(b.read_text())
        assert sa["digest"]["program"] == sb["digest"]["program"]

    def test_degraded_run_exits_partial(self, prog_file, tmp_path, capsys):
        dest = tmp_path / "snap.json"
        code = main(["snapshot", prog_file, "--max-ptfs", "1",
                     "-o", str(dest)])
        assert code == 4
        snap = json.loads(dest.read_text())
        assert snap["degradation"]["partial"] or snap["degradation"]["records"]

    def test_missing_file(self, capsys):
        assert main(["snapshot", "/no/such/file.c"]) == 2


class TestDiff:
    def make_snaps(self, prog_file, tmp_path):
        from repro.memory.pointsto import reset_interning

        a, b, c = (tmp_path / n for n in ("a.json", "b.json", "c.json"))
        reset_interning()
        assert main(["snapshot", prog_file, "-o", str(a)]) == 0
        reset_interning()
        assert main(["snapshot", prog_file, "-o", str(b)]) == 0
        reset_interning()
        assert main(["snapshot", prog_file, "--max-ptfs", "1",
                     "-o", str(c)]) == 4
        return str(a), str(b), str(c)

    def test_identical_snapshots(self, prog_file, tmp_path, capsys):
        a, b, _ = self.make_snaps(prog_file, tmp_path)
        capsys.readouterr()
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out

    def test_drifted_snapshots_report_loss(self, prog_file, tmp_path, capsys):
        a, _, c = self.make_snaps(prog_file, tmp_path)
        capsys.readouterr()
        assert main(["diff", a, c]) == 0  # no --fail-on: report only
        out = capsys.readouterr().out
        assert "precision-loss" in out

    def test_fail_on_gates_exit_code(self, prog_file, tmp_path, capsys):
        a, b, c = self.make_snaps(prog_file, tmp_path)
        capsys.readouterr()
        assert main(["diff", a, c, "--fail-on", "precision-loss"]) == 1
        err = capsys.readouterr().err
        assert "drift gate failed" in err
        assert main(["diff", a, b, "--fail-on", "precision-loss"]) == 0

    def test_json_report(self, prog_file, tmp_path, capsys):
        a, _, c = self.make_snaps(prog_file, tmp_path)
        capsys.readouterr()
        assert main(["diff", a, c, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "precision-loss" in payload["classes"]
        assert payload["records"]

    def test_bad_fail_on_spec(self, prog_file, tmp_path, capsys):
        a, b, _ = self.make_snaps(prog_file, tmp_path)
        capsys.readouterr()
        assert main(["diff", a, b, "--fail-on", "nonsense"]) == 2
        assert "unknown --fail-on" in capsys.readouterr().err

    def test_not_a_snapshot(self, prog_file, tmp_path, capsys):
        a, _, _ = self.make_snaps(prog_file, tmp_path)
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        capsys.readouterr()
        assert main(["diff", a, str(bogus)]) == 2
