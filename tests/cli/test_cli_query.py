"""CLI coverage for the query subsystem: index / query / serve, plus the
shared ``-``-means-stdout writer convention they ride on."""

import json

import pytest

from repro.cli import main

SOURCE = """
int g;
int *gp;
void set(int **pp, int *v) { *pp = v; }
int use(int *p) { return *p; }
int main(void) {
    int x;
    int *p = &x;
    set(&gp, &g);
    return use(p);
}
"""


@pytest.fixture()
def prog_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture()
def store_file(prog_file, tmp_path):
    path = tmp_path / "prog.store.json"
    assert main(["index", prog_file, "-o", str(path)]) == 0
    return str(path)


# -- repro index ------------------------------------------------------------


def test_index_writes_valid_store(store_file):
    from repro.query import load_store

    store = load_store(store_file)
    assert set(store["index"]["procedures"]) == {"main", "set", "use"}
    [src] = store["sources"]
    assert len(src["sha256"]) == 64


def test_index_skips_when_up_to_date(prog_file, store_file, capsys):
    assert main(["index", prog_file, "-o", store_file]) == 0
    err = capsys.readouterr().err
    assert "up to date" in err
    assert "skipping re-analysis" in err


def test_index_force_rebuilds(prog_file, store_file, capsys):
    assert main(["index", prog_file, "-o", store_file, "--force"]) == 0
    err = capsys.readouterr().err
    assert "indexed" in err
    assert "skipping" not in err


def test_index_rebuilds_after_edit(prog_file, store_file, tmp_path, capsys):
    edited = SOURCE.replace("return *p;", "return *p + 1;")
    (tmp_path / "prog.c").write_text(edited)
    assert main(["index", prog_file, "-o", store_file]) == 0
    err = capsys.readouterr().err
    assert "changed   : use" in err
    assert "indexed" in err


def test_index_to_stdout(prog_file, capsys):
    assert main(["index", prog_file, "-o", "-"]) == 0
    store = json.loads(capsys.readouterr().out)
    assert store["format"] == "repro-store/1"


# -- repro query ------------------------------------------------------------


def test_query_text_answers(store_file, capsys):
    assert main(["query", store_file, "points-to p@main",
                 "alias p gp@main", "callees main"]) == 0
    out = capsys.readouterr().out
    assert "points-to p@main -> ['x']" in out
    assert "alias p gp @main -> no" in out
    assert "callees main: set, use" in out
    assert "explain: repro explain" in out


def test_query_json_answers(store_file, capsys):
    assert main(["query", store_file, "points-to gp@main", "--json"]) == 0
    [ans] = json.loads(capsys.readouterr().out)
    assert ans["targets"] == ["g"]


def test_query_json_to_file(store_file, tmp_path, capsys):
    out = tmp_path / "answers.json"
    assert main(["query", store_file, "stats", "--json",
                 "-o", str(out)]) == 0
    assert capsys.readouterr().out == ""
    [ans] = json.loads(out.read_text())
    assert ans["op"] == "stats"


def test_query_unknown_var_is_exit_2(store_file, capsys):
    assert main(["query", store_file, "points-to nosuch@main"]) == 2
    assert "unknown" in capsys.readouterr().err or True


def test_query_bad_store_is_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "nope"}))
    assert main(["query", str(bad), "stats"]) == 2


def test_query_answers_match_fresh_analysis(prog_file, store_file, capsys):
    """The demand path answers exactly what a fresh analyze would."""
    assert main(["query", store_file, "points-to p@main", "--json"]) == 0
    [stored] = json.loads(capsys.readouterr().out)
    assert main(["analyze", prog_file, "--points-to", "main:p"]) == 0
    fresh = capsys.readouterr().out
    assert f"points-to main:p -> {stored['targets']}" in fresh


# -- repro serve (stdio; the TCP path is covered in tests/query) ------------


def test_serve_stdio_round_trip(store_file, capsys, monkeypatch):
    import io

    lines = [
        json.dumps({"op": "ping", "id": 1}),
        json.dumps([{"op": "points_to", "var": "p", "proc": "main", "id": 2},
                    {"op": "points_to", "var": "p", "proc": "main", "id": 3},
                    {"op": "stats", "id": 4}]),
        json.dumps({"op": "shutdown", "id": 5}),
    ]
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
    assert main(["serve", store_file]) == 0
    out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
    assert [env["id"] for env in out] == [1, 2, 3, 4, 5]
    stats = out[3]["result"]
    assert stats["cache_hits"] == 1  # the repeated points_to hit


def test_serve_bad_tcp_spec_is_exit_2(store_file, capsys):
    assert main(["serve", store_file, "--tcp", "nonsense"]) == 2


def test_serve_metrics_op_over_stdio(store_file, capsys, monkeypatch):
    import io

    lines = [
        json.dumps({"op": "ping", "id": 1}),
        json.dumps({"op": "metrics", "id": 2}),
        json.dumps({"op": "shutdown", "id": 3}),
    ]
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
    assert main(["serve", store_file]) == 0
    out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
    result = out[1]["result"]
    assert result["content_type"] == "text/plain; version=0.0.4"
    assert "# TYPE repro_requests_total counter" in result["text"]


def test_serve_access_log_rotation(store_file, tmp_path, capsys, monkeypatch):
    """--access-log-max-bytes: the daemon's buffered access log rotates
    by size (atomic rename to .1) without dropping or tearing records."""
    import io

    log = tmp_path / "access.log"
    reqs = [json.dumps({"op": "ping", "id": i}) for i in range(120)]
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(reqs) + "\n"))
    assert main(
        ["serve", store_file, "--access-log", str(log),
         "--access-log-max-bytes", "2048"]
    ) == 0
    capsys.readouterr()
    rotated = tmp_path / "access.log.1"
    assert log.exists() and rotated.exists()
    for path in (log, rotated):
        for line in path.read_text().splitlines():
            record = json.loads(line)  # whole records on both sides
            assert record["op"] == "ping"


# -- the shared '-'-means-stdout convention (satellite) ---------------------


def test_explain_json_to_file(prog_file, tmp_path, capsys):
    out = tmp_path / "explain.json"
    assert main(["explain", prog_file, "--query", "p@main", "--json",
                 "-o", str(out)]) == 0
    assert capsys.readouterr().out == ""
    [payload] = json.loads(out.read_text())
    assert payload["proc"] == "main" and payload["var"] == "p"


def test_explain_json_stdout_default(prog_file, capsys):
    assert main(["explain", prog_file, "--query", "p@main", "--json"]) == 0
    [payload] = json.loads(capsys.readouterr().out)
    assert payload["var"] == "p"


def test_stats_json_file_and_stdout_agree(prog_file, tmp_path, capsys):
    out = tmp_path / "stats.json"
    assert main(["analyze", prog_file, "--stats-json", str(out)]) == 0
    capsys.readouterr()
    assert main(["analyze", prog_file, "--stats-json"]) == 0
    stdout_stats = capsys.readouterr().out
    file_stats = json.loads(out.read_text())
    # same keys both ways (values may differ in timings)
    start = stdout_stats.index("{")
    assert set(json.loads(stdout_stats[start:])) == set(file_stats)
