"""DOT export sanity."""

import pytest

from repro import analyze_source
from repro.ir.dot import call_graph_to_dot, cfg_to_dot, points_to_graph_to_dot

SRC = """
int g;
int *get(void) { return &g; }
int main(void) {
    int *(*fp)(void) = get;
    int *p = fp();
    if (p) p = 0;
    return 0;
}
"""


@pytest.fixture(scope="module")
def result():
    return analyze_source(SRC, "dot.c")


class TestCFG:
    def test_valid_digraph(self, result):
        dot = cfg_to_dot(result.program.procedures["main"])
        assert dot.startswith("digraph") and dot.endswith("}")

    def test_has_entry_and_exit(self, result):
        dot = cfg_to_dot(result.program.procedures["main"])
        assert "entry" in dot and "exit" in dot

    def test_edges_present(self, result):
        dot = cfg_to_dot(result.program.procedures["main"])
        assert "->" in dot

    def test_branch_shapes(self, result):
        dot = cfg_to_dot(result.program.procedures["main"])
        assert "diamond" in dot

    def test_back_edges_dashed(self):
        r = analyze_source("int c; int main(void){ while(c) c--; return 0; }")
        dot = cfg_to_dot(r.program.procedures["main"])
        assert "style=dashed" in dot


class TestCallGraph:
    def test_indirect_edge_dotted(self, result):
        dot = call_graph_to_dot(result)
        assert '"main" -> "get" [style=dotted]' in dot

    def test_all_procs_listed(self, result):
        dot = call_graph_to_dot(result)
        assert '"main"' in dot and '"get"' in dot

    def test_direct_edge_solid(self):
        r = analyze_source("void f(void){} int main(void){ f(); return 0; }")
        dot = call_graph_to_dot(r)
        assert '"main" -> "f";' in dot


class TestPointsToGraph:
    def test_summary_edges(self, result):
        dot = points_to_graph_to_dot(result, "get")
        assert "->" in dot and "digraph" in dot

    def test_initial_edges_dashed(self):
        r = analyze_source(
            """
            int g;
            int *id(int *p) { return p; }
            int main(void){ int *q = id(&g); return 0; }
            """
        )
        dot = points_to_graph_to_dot(r, "id")
        assert "label=init" in dot

    def test_missing_proc_empty(self, result):
        assert points_to_graph_to_dot(result, "nope") == "digraph empty {}"

    def test_quotes_escaped(self):
        r = analyze_source(
            'int main(void){ char *s = "say \\"hi\\""; return 0; }'
        )
        dot = points_to_graph_to_dot(r, "main")
        # must remain parseable: balanced quotes per line
        for line in dot.splitlines():
            assert line.count('"') % 2 == 0, line
