"""CFG construction through the front end: node kinds, edges, shapes."""

import pytest

from repro import load_program
from repro.ir.nodes import (
    AssignNode,
    BranchNode,
    CallNode,
    EntryNode,
    ExitNode,
    MeetNode,
)


def cfg_of(src, proc="main"):
    program = load_program(src, "t.c")
    return program.procedures[proc]


def kinds(proc):
    return [n.kind for n in proc.rpo]


class TestStraightLine:
    def test_empty_function(self):
        proc = cfg_of("int main(void) { return 0; }")
        ks = kinds(proc)
        assert ks[0] == "entry" and ks[-1] == "exit"

    def test_assignments_in_order(self):
        proc = cfg_of("int a; int main(void){ int *p = &a; int *q = p; return 0; }")
        assigns = [n for n in proc.rpo if isinstance(n, AssignNode)]
        descs = [n.describe() for n in assigns]
        assert any("p = &a" in d for d in descs)
        assert any("q =" in d for d in descs)

    def test_exit_reachable(self):
        proc = cfg_of("int main(void) { for(;;); return 0; }")
        # even with an infinite loop, exit exists in the graph
        assert proc.exit in proc.rpo or proc.exit.preds == [] or True
        assert proc.finalized


class TestBranching:
    def test_if_makes_meet(self):
        proc = cfg_of("int c; int main(void){ if (c) c = 1; return 0; }")
        assert any(isinstance(n, MeetNode) for n in proc.rpo)
        assert any(isinstance(n, BranchNode) for n in proc.rpo)

    def test_if_else_two_paths(self):
        proc = cfg_of(
            "int a,b,c; int main(void){ int *p; if (c) p=&a; else p=&b; return 0; }"
        )
        branch = next(n for n in proc.rpo if isinstance(n, BranchNode))
        assert len(branch.succs) == 2

    def test_while_has_back_edge(self):
        proc = cfg_of("int c; int main(void){ while (c) c--; return 0; }")
        back = [
            (n, s)
            for n in proc.rpo
            for s in n.succs
            if s.rpo_index >= 0 and s.rpo_index < n.rpo_index
        ]
        assert back, "expected a back edge"

    def test_switch_dispatch_edges(self):
        proc = cfg_of(
            """
            int s;
            int main(void){
                switch (s) { case 0: break; case 1: break; default: break; }
                return 0;
            }
            """
        )
        dispatch = max(
            (n for n in proc.rpo if isinstance(n, BranchNode)),
            key=lambda n: len(n.succs),
        )
        assert len(dispatch.succs) >= 3

    def test_return_jumps_to_exit(self):
        proc = cfg_of(
            "int c; int main(void){ if (c) return 1; return 0; }"
        )
        # two return paths: exit has at least two predecessors
        assert len(proc.exit.preds) >= 2


class TestCalls:
    def test_call_node_created(self):
        proc = cfg_of("void f(void); int main(void){ f(); return 0; }")
        assert len(proc.call_nodes()) == 1

    def test_call_args_lowered(self):
        proc = cfg_of(
            "int a; void f(int *p); int main(void){ f(&a); return 0; }"
        )
        call = proc.call_nodes()[0]
        assert len(call.args) == 1
        assert "&" in str(call.args[0])

    def test_call_in_expression_gets_temp(self):
        proc = cfg_of(
            "int f(void); int main(void){ int x = f() + 1; return x; }"
        )
        call = proc.call_nodes()[0]
        assert call.dst is not None

    def test_void_call_has_no_dst(self):
        proc = cfg_of("void f(void); int main(void){ f(); return 0; }")
        assert proc.call_nodes()[0].dst is None

    def test_call_site_names_are_distinct(self):
        proc = cfg_of(
            "void f(void); int main(void){ f(); f(); return 0; }"
        )
        sites = {c.site for c in proc.call_nodes()}
        assert len(sites) == 2


class TestProcedures:
    def test_formals_registered(self):
        program = load_program(
            "void f(int *a, char **b) { } int main(void){ return 0; }", "t.c"
        )
        f = program.procedures["f"]
        assert [x.name for x in f.formals] == ["a", "b"]
        assert all(x.is_formal for x in f.formals)

    def test_locals_registered(self):
        proc = cfg_of("int main(void){ int x; double y; return 0; }")
        assert "x" in proc.locals and "y" in proc.locals

    def test_local_blocks_unique_per_symbol(self):
        proc = cfg_of("int main(void){ int x; return 0; }")
        sym = proc.locals["x"]
        assert proc.local_block(sym) is proc.local_block(sym)

    def test_stats(self):
        program = load_program(
            "void f(void) { } int main(void){ f(); return 0; }", "t.c"
        )
        stats = program.stats()
        assert stats["procedures"] == 2
        assert stats["call_sites"] == 1

    def test_source_lines_counted(self):
        program = load_program(
            "int main(void)\n{\n  int x;\n  return 0;\n}\n", "t.c"
        )
        assert program.procedures["main"].source_lines >= 3
