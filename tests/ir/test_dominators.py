"""Dominator tree / dominance frontier computation."""

import pytest

from repro.ir.dominators import compute_rpo, compute_dominators, finalize_graph, iterated_frontier
from repro.ir.nodes import BranchNode, EntryNode, ExitNode, MeetNode, Node


class FakeProc:
    name = "fake"


def build(edges, n_nodes):
    """Construct a graph with node 0 as entry."""
    proc = FakeProc()
    nodes = [BranchNode(proc) for _ in range(n_nodes)]
    for a, b in edges:
        nodes[a].add_succ(nodes[b])
    rpo = finalize_graph(nodes[0])
    return nodes, rpo


class TestRPO:
    def test_linear_chain(self):
        nodes, rpo = build([(0, 1), (1, 2), (2, 3)], 4)
        assert [n.uid for n in rpo] == [n.uid for n in nodes]

    def test_diamond_order(self):
        nodes, rpo = build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        idx = {n.uid: i for i, n in enumerate(rpo)}
        assert idx[nodes[0].uid] == 0
        assert idx[nodes[3].uid] == 3

    def test_unreachable_excluded(self):
        nodes, rpo = build([(0, 1), (2, 3)], 4)
        uids = {n.uid for n in rpo}
        assert nodes[2].uid not in uids
        assert nodes[3].uid not in uids

    def test_cycle_terminates(self):
        nodes, rpo = build([(0, 1), (1, 2), (2, 1), (2, 3)], 4)
        assert len(rpo) == 4

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        edges = [(i, i + 1) for i in range(n - 1)]
        nodes, rpo = build(edges, n)
        assert len(rpo) == n


class TestIdom:
    def test_linear(self):
        nodes, _ = build([(0, 1), (1, 2)], 3)
        assert nodes[1].idom is nodes[0]
        assert nodes[2].idom is nodes[1]
        assert nodes[0].idom is None

    def test_diamond_join_dominated_by_branch(self):
        nodes, _ = build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        assert nodes[3].idom is nodes[0]
        assert nodes[1].idom is nodes[0]

    def test_loop(self):
        # 0 -> 1(head) -> 2(body) -> 1 ; 1 -> 3(exit)
        nodes, _ = build([(0, 1), (1, 2), (2, 1), (1, 3)], 4)
        assert nodes[1].idom is nodes[0]
        assert nodes[2].idom is nodes[1]
        assert nodes[3].idom is nodes[1]

    def test_nested_diamonds(self):
        # 0 -> (1|2) -> 3 -> (4|5) -> 6
        nodes, _ = build(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6)], 7
        )
        assert nodes[3].idom is nodes[0]
        assert nodes[6].idom is nodes[3]

    def test_dominates_query(self):
        nodes, _ = build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        assert nodes[0].dominates(nodes[3])
        assert nodes[0].dominates(nodes[0])
        assert not nodes[1].dominates(nodes[3])
        assert not nodes[3].dominates(nodes[1])


class TestFrontiers:
    def test_diamond_frontier(self):
        nodes, _ = build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
        assert nodes[3] in nodes[1].dom_frontier
        assert nodes[3] in nodes[2].dom_frontier
        assert nodes[3] not in nodes[0].dom_frontier

    def test_loop_head_in_own_frontier_via_body(self):
        nodes, _ = build([(0, 1), (1, 2), (2, 1), (1, 3)], 4)
        assert nodes[1] in nodes[2].dom_frontier
        # the head's frontier includes itself (back edge)
        assert nodes[1] in nodes[1].dom_frontier

    def test_iterated_frontier(self):
        # two sequential diamonds: a def in the first arm needs phis at
        # both joins only if values propagate; IDF of node1 is {3}; IDF
        # of {3} alone is {} (3 dominates 6's preds? no: 4,5 dominated by 3)
        nodes, _ = build(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6)], 7
        )
        idf = iterated_frontier([nodes[1]])
        assert nodes[3] in idf
        idf2 = iterated_frontier([nodes[4]])
        assert nodes[6] in idf2

    def test_frontier_empty_for_dominating_node(self):
        nodes, _ = build([(0, 1), (1, 2)], 3)
        assert nodes[0].dom_frontier == []
        assert nodes[1].dom_frontier == []
