"""Property: demand answers ≡ exhaustive-store answers, byte for byte,
across the whole benchmark suite (the acceptance gate for demand mode).

For every benchmark program the corpus holds two independent pipelines
over the same sources:

* **exhaustive** — analyze, ``build_store``, store-backed
  :class:`QueryEngine` (exactly what ``repro index`` + ``repro query``
  do), and
* **demand** — a fresh lowering (``fresh_analysis_state`` first: uid
  counters restart, as the tier does before every re-lowering) wrapped
  in :class:`DemandAnalysis`/:class:`DemandEngine`.

The exhaustive sweep then compares every answer the store can produce —
``points_to`` for every indexed (proc, var), ``modref``/``callees``/
``callers`` for every procedure, ``pointed_by`` for every indexed
target — via ``json.dumps(sort_keys=True)`` equality.  Hypothesis
drives an additional randomized ``alias`` sweep (pairs, including the
witness payload) on top.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.demand import (
    DemandAnalysis,
    DemandEngine,
    fresh_analysis_state,
)
from repro.analysis.engine import AnalyzerOptions
from repro.analysis.results import run_analysis
from repro.bench.programs import PROGRAMS, source_path
from repro.frontend.parser import load_project_files
from repro.query import QueryEngine, build_store

ALL_NAMES = [p.name for p in PROGRAMS]

_cache: dict[str, tuple] = {}


def corpus(name: str):
    """(store, store engine, demand engine) for one benchmark.

    The demand side is fully materialized here (``pointed_by_table``
    touches every procedure record) while its analysis generation is
    the active one; after that, both engines answer from rendered
    records only, so the module-level cache is safe across the
    per-benchmark ``fresh_analysis_state`` resets.
    """
    if name not in _cache:
        path = source_path(name)

        fresh_analysis_state()
        program = load_project_files([path], name=name)
        result = run_analysis(program, AnalyzerOptions())
        store = build_store(result, program_name=name, sources=[path])
        store_engine = QueryEngine(store)

        fresh_analysis_state()
        program = load_project_files([path], name=name)
        analysis = DemandAnalysis(program, options=AnalyzerOptions())
        demand = DemandEngine(analysis, sources=[path], program_name=name)
        analysis.pointed_by_table()
        analysis.callsite_table()
        analysis.call_graph_table()

        _cache[name] = (store, store_engine, demand)
    return _cache[name]


def assert_same_answer(store_engine, demand, request, context):
    expected = json.dumps(store_engine.query(dict(request)), sort_keys=True)
    got = json.dumps(demand.query(dict(request)), sort_keys=True)
    assert got == expected, context


@pytest.mark.parametrize("name", ALL_NAMES)
def test_demand_equals_store_exhaustively(name):
    """Every answer the store index can produce, demand reproduces."""
    store, store_engine, demand = corpus(name)
    procedures = store["index"]["procedures"]
    assert procedures, name
    for proc, rec in sorted(procedures.items()):
        for var in sorted(rec["vars"]):
            assert_same_answer(
                store_engine, demand,
                {"op": "points_to", "var": var, "proc": proc},
                (name, proc, var),
            )
        for request in (
            {"op": "modref", "proc": proc},
            {"op": "callees", "proc": proc},
            {"op": "callers", "proc": proc},
        ):
            assert_same_answer(
                store_engine, demand, request, (name, proc, request["op"])
            )
    for target in sorted(store["index"]["pointed_by"]):
        assert_same_answer(
            store_engine, demand,
            {"op": "pointed_by", "name": target},
            (name, target),
        )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_demand_pointed_by_has_no_extra_targets(name):
    """Demand's reverse index names exactly the store's targets — no
    target appears on one side only."""
    store, _, demand = corpus(name)
    assert set(demand.analysis.pointed_by_table()) == set(
        store["index"]["pointed_by"]
    )


@given(data=st.data())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_alias_verdicts_identical(data):
    """Randomized alias pairs (same-proc), witness payload included."""
    name = data.draw(st.sampled_from(ALL_NAMES))
    store, store_engine, demand = corpus(name)
    procedures = store["index"]["procedures"]
    eligible = sorted(p for p, r in procedures.items() if len(r["vars"]) >= 2)
    if not eligible:
        return
    proc = data.draw(st.sampled_from(eligible))
    variables = sorted(procedures[proc]["vars"])
    a = data.draw(st.sampled_from(variables))
    b = data.draw(st.sampled_from(variables))
    assert_same_answer(
        store_engine, demand,
        {"op": "alias", "a": a, "b": b, "proc": proc},
        (name, proc, a, b),
    )
