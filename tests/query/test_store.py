"""The persistent analysis store: build, serialize, reload, prove.

The store's one correctness obligation is *fidelity*: everything the
demand engine will answer from it must be exactly what the live
:class:`~repro.analysis.results.AnalysisResult` would have answered.
These tests pin that at the store layer (the engine layer has its own,
and the hypothesis property test sweeps the full benchmark suite).
"""

import json
import os

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.query import (
    STORE_FORMAT,
    StoreError,
    build_store,
    load_store,
    seal_store,
    verify_store_integrity,
    write_store,
)
from repro.query.store import _loc_key

SOURCE = """
int g;
int *gp;
void set(int **pp, int *v) { *pp = v; }
int use(int *p) { return *p; }
int main(void) {
    int x;
    int *p = &x;
    set(&gp, &g);
    return use(p);
}
"""


@pytest.fixture(scope="module")
def result():
    return analyze_source(SOURCE, options=AnalyzerOptions())


@pytest.fixture(scope="module")
def store(result):
    return build_store(result, program_name="unit")


def test_store_document_shape(store):
    assert store["format"] == STORE_FORMAT
    assert store["program"] == "unit"
    for key in ("snapshot", "ir", "call_graph", "index", "created"):
        assert key in store
    index = store["index"]
    assert set(index) == {"procedures", "pointed_by", "callsites"}
    assert set(index["procedures"]) == {"main", "set", "use"}


def test_store_is_json_serializable(store):
    # the whole document round-trips through JSON without custom encoders
    again = json.loads(json.dumps(store))
    assert again["index"] == store["index"]


def test_vars_table_matches_live_points_to(store, result):
    for proc, rec in store["index"]["procedures"].items():
        for var, entry in rec["vars"].items():
            live = sorted(result.points_to_names(proc, var))
            assert entry["targets"] == live, (proc, var)


def test_queryable_lists_locals_and_globals(store, result):
    rec = store["index"]["procedures"]["main"]
    assert "p" in rec["queryable"]
    assert "g" in rec["queryable"]  # globals are queryable everywhere
    assert rec["queryable"] == sorted(rec["queryable"])


def test_alias_table_is_per_ptf(store):
    """Alias rows carry the PTF uid — merging across PTFs would
    manufacture spurious may-aliases, so the format must keep them
    apart."""
    for rec in store["index"]["procedures"].values():
        for rows in rec["alias"].values():
            for row in rows:
                assert set(row) == {"ptf", "locs"}
                assert isinstance(row["ptf"], int)


def test_pointed_by_inverts_vars(store):
    index = store["index"]
    for proc, rec in index["procedures"].items():
        for var, entry in rec["vars"].items():
            for target in entry["targets"]:
                assert [proc, var] in index["pointed_by"][target]
    # and nothing extra: every reverse edge has a forward edge
    for target, pairs in index["pointed_by"].items():
        for proc, var in pairs:
            assert target in index["procedures"][proc]["vars"][var]["targets"]


def test_embedded_snapshot_is_bit_identical_to_fresh(store, result):
    """The store's snapshot is the archival artifact: byte-for-byte what
    ``repro snapshot`` would have written for the same run."""
    from repro.diagnostics.snapshot import build_snapshot

    fresh = build_snapshot(result, program_name="unit", include_solution=True)
    embedded = dict(store["snapshot"])
    # wall-clock/memory profiles are volatile by design; the hashed half
    # must match exactly
    embedded.pop("volatile", None)
    fresh.pop("volatile", None)
    assert embedded == fresh


def test_write_is_atomic(tmp_path, store):
    target = tmp_path / "x.store.json"
    write_store(dict(store, hello=1), str(target))
    assert not os.path.exists(str(target) + ".tmp")
    # the extra key fails the whole-store digest (the sealed doc didn't
    # carry it) but not the shape checks: verify=False loads it
    assert load_store(str(target), verify=False)["hello"] == 1


def test_write_to_stream(tmp_path, store):
    import io

    buf = io.StringIO()
    write_store(store, buf)
    again = json.loads(buf.getvalue())
    assert again["format"] == STORE_FORMAT


def test_load_rejects_wrong_format(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "repro-store/999"}))
    with pytest.raises(ValueError, match="unsupported store format"):
        load_store(str(bad))


def test_source_records_hash_content(tmp_path):
    from repro.query import source_records

    f = tmp_path / "a.c"
    f.write_text("int main(void) { return 0; }\n")
    [rec] = source_records([str(f)])
    assert rec["path"] == str(f)
    assert len(rec["sha256"]) == 64
    f.write_text("int main(void) { return 1; }\n")
    [rec2] = source_records([str(f)])
    assert rec2["sha256"] != rec["sha256"]


def test_loc_keys_collapse_to_caller_visible_identity(result):
    """Two blocks share a key iff they display as the same caller-visible
    memory — the on-disk replacement for object identity.  In particular
    a global-backed extended parameter keys as its global (``2_g`` and
    ``g`` are the same memory seen from two name spaces)."""
    seen = {}
    for proc in result.program.procedures:
        for var in result.queryable_vars(proc):
            for loc in result.points_to(proc, var):
                key = _loc_key(loc.base)
                display = result.display_name(loc.base)
                if key in seen:
                    assert seen[key] == display, key
                else:
                    seen[key] = display


def test_pure_flag_tracks_empty_mod(store):
    for name, rec in store["index"]["procedures"].items():
        assert rec["pure"] == (not rec["modref"]["mod"]), name


# -- integrity + defensive loading (docs/ROBUSTNESS.md §8) -------------------


class TestIntegrity:
    def test_build_store_seals(self, store):
        record = store["integrity"]
        assert record["algorithm"] == "sha256"
        assert len(record["digest"]) == 64

    def test_sealed_store_round_trips(self, tmp_path, store):
        path = tmp_path / "x.store.json"
        write_store(store, str(path))
        again = load_store(str(path))  # verify=True is the default
        assert again["integrity"] == store["integrity"]

    def test_tampered_store_is_refused(self, tmp_path, store):
        doc = json.loads(json.dumps(store))
        # flip one indexed fact without resealing: a bit-rotted or
        # hand-edited store must not be served
        doc["index"]["procedures"]["main"]["pure"] = True
        path = tmp_path / "x.store.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(StoreError, match="integrity check failed"):
            load_store(str(path))

    def test_verify_false_loads_tampered(self, tmp_path, store):
        doc = json.loads(json.dumps(store))
        doc["program"] = "renamed"
        path = tmp_path / "x.store.json"
        path.write_text(json.dumps(doc))
        assert load_store(str(path), verify=False)["program"] == "renamed"

    def test_reseal_restores_trust(self, store):
        doc = json.loads(json.dumps(store))
        doc["program"] = "renamed"
        seal_store(doc)
        assert verify_store_integrity(doc) is True

    def test_legacy_store_without_record_is_accepted(self, tmp_path, store):
        doc = json.loads(json.dumps(store))
        doc.pop("integrity")
        path = tmp_path / "x.store.json"
        path.write_text(json.dumps(doc))
        again = load_store(str(path))  # nothing to verify, shape is fine
        assert "integrity" not in again

    def test_malformed_integrity_record_is_refused(self, tmp_path, store):
        doc = json.loads(json.dumps(store))
        doc["integrity"] = {"algorithm": "md5", "digest": "short"}
        path = tmp_path / "x.store.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(StoreError, match="malformed integrity record"):
            load_store(str(path))

    def test_digest_ignores_key_order(self, store):
        from repro.query import store_integrity_digest

        reordered = dict(reversed(list(store.items())))
        assert store_integrity_digest(reordered) == store_integrity_digest(
            store
        )


class TestDefensiveLoading:
    """Every bad-input failure is a :class:`StoreError` naming the
    store — the CLI renders it as one ``repro:`` line with exit 2,
    never a raw decoder traceback."""

    def test_truncated_json_is_a_store_error(self, tmp_path, store):
        path = tmp_path / "x.store.json"
        payload = json.dumps(store)
        path.write_text(payload[: len(payload) // 2])
        with pytest.raises(StoreError, match="not valid JSON"):
            load_store(str(path))

    def test_empty_file_is_a_store_error(self, tmp_path):
        path = tmp_path / "x.store.json"
        path.write_text("")
        with pytest.raises(StoreError, match="not valid JSON"):
            load_store(str(path))

    def test_non_object_document_is_a_store_error(self, tmp_path):
        path = tmp_path / "x.store.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(StoreError, match="not a JSON object"):
            load_store(str(path))

    def test_unknown_format_is_a_store_error(self, tmp_path):
        path = tmp_path / "x.store.json"
        path.write_text(json.dumps({"format": "repro-store/999"}))
        with pytest.raises(StoreError, match="unsupported store format"):
            load_store(str(path))

    def test_missing_section_is_a_store_error(self, tmp_path, store):
        doc = json.loads(json.dumps(store))
        doc.pop("call_graph")
        path = tmp_path / "x.store.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(StoreError, match="call_graph"):
            load_store(str(path))

    def test_store_error_is_a_value_error(self):
        # existing `except ValueError` call sites keep catching it
        assert issubclass(StoreError, ValueError)

    def test_stream_loading_names_the_stream(self, tmp_path):
        import io

        with pytest.raises(StoreError, match="<stream>"):
            load_store(io.StringIO("{truncated"))
