"""Property: store answers are derivable from — and never exceed — the
snapshot they were built from, across the benchmark suite.

The store is a *reorganization* of the run the embedded snapshot pins
down, not a second analysis; so for every benchmark program:

* a ``points_to`` answer equals the live merged answer
  (:meth:`AnalysisResult.points_to_names` over all PTFs/contexts) —
  **derivable**;
* every name it reports resolves into the snapshot solution's value
  universe for that procedure — it **never exceeds** the snapshot's
  merged facts;
* an ``alias`` verdict agrees with the live :meth:`may_alias`, and a
  ``may`` verdict's witness cites location rows present in the stored
  per-PTF alias tables (the witness itself is derivable).

Hypothesis drives the sweep: it draws (program, procedure, variable
pair) and the engine must hold the properties on all of them.  Analyses
are computed once per program and cached for the module (same
``reset_interning`` discipline as the snapshot determinism tests).
"""

from __future__ import annotations

import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.engine import AnalyzerOptions
from repro.bench.harness import analyze_benchmark
from repro.bench.programs import PROGRAMS
from repro.memory.pointsto import reset_interning
from repro.query import QueryEngine, build_store

ALL_NAMES = [p.name for p in PROGRAMS]

_cache: dict[str, tuple] = {}

#: ``(name, offset[, stride])`` — the stable str() form of location sets
#: used throughout the canonical snapshot solution
_LOC_STR = re.compile(r"\(([^,()]+),")


def corpus(name: str):
    """(result, store, engine, per-proc snapshot name universe) for one
    benchmark, computed once."""
    if name not in _cache:
        reset_interning()
        result = analyze_benchmark(name, AnalyzerOptions())
        store = build_store(result, program_name=name)
        universe = {
            proc: _value_universe(payloads)
            for proc, payloads in store["snapshot"]["solution"].items()
        }
        _cache[name] = (result, store, QueryEngine(store), universe)
    return _cache[name]


def _names_in(rendered: str) -> set[str]:
    return set(_LOC_STR.findall(rendered))


def _value_universe(payloads: list) -> set[str]:
    """Every base name appearing anywhere in a procedure's canonical PTF
    payloads (initial-entry sources/targets and final points-to values),
    normalized to bare names (``proc::x`` -> ``x``)."""
    names: set[str] = set()
    for payload in payloads:
        for entry in payload["initial"]:
            names |= _names_in(entry["source"])
            for t in entry["targets"]:
                names |= _names_in(t)
        for key, values in payload["final"].items():
            names |= _names_in(key)
            for v in values:
                names |= _names_in(v)
    return {n.split("::")[-1] for n in names}


def _in_universe(name: str, names: set) -> bool:
    """``name`` appears in a universe directly, or as the extended
    parameter bound to it (caller-space ``work`` is PTF-space
    ``4_work``)."""
    if name in names:
        return True
    xparam = re.compile(r"\d+_" + re.escape(name) + r"\Z")
    return any(xparam.fullmatch(n) for n in names)


def _names_real_memory(key: str, program) -> bool:
    """Whether a stored location key names memory the program actually
    has — the bound for *concretized* caller-space facts, which may
    legitimately reach a caller-frame local the PTF-space snapshot only
    names through a process-local extended-parameter binding."""
    kind, _, rest = key.partition(":")
    if kind == "local":
        proc_name, _, var = rest.rpartition("::")
        proc = program.procedures.get(proc_name)
        return proc is not None and (
            var in proc.locals or any(f.name == var for f in proc.formals)
        )
    if kind == "global":
        return rest in program.globals
    if kind == "proc":
        return rest in program.procedures or rest in program.external_calls
    # heap/string/retval/xparam blocks are analysis-created; their keys
    # embed the creating site/procedure and cannot be cross-checked
    # against the source symbol tables
    return kind in ("heap", "string", "retval", "xparam")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_every_stored_fact_is_derivable_and_bounded(name):
    """Exhaustive over the store (not sampled):

    * caller-space vars-table answers equal the live merged answer and
      never name memory the program doesn't have;
    * the PTF-space alias tables — the exact facts the snapshot
      canonicalized — stay inside the snapshot's value universe for
      their procedure.
    """
    result, store, engine, universe = corpus(name)
    for proc, rec in store["index"]["procedures"].items():
        for var, entry in rec["vars"].items():
            live = sorted(result.points_to_names(proc, var))
            answer = engine.points_to(var, proc)
            assert answer["targets"] == live, (name, proc, var)
            for key, _display, _off, _stride in entry["locs"]:
                assert _names_real_memory(key, result.program), (
                    name, proc, var, key)
        for var, rows in rec["alias"].items():
            for row in rows:
                for key, _off, _stride in row["locs"]:
                    kind, _, rest = key.partition(":")
                    if kind in ("string", "heap", "retval"):
                        # their names embed literal text / site
                        # coordinates with commas and quotes, which the
                        # universe's location-set parse cannot extract;
                        # covered by the real-memory bound above
                        continue
                    base = rest.rpartition(":")[2] if kind == "xparam" else rest
                    base = base.split("::")[-1]
                    assert _in_universe(base, universe[proc]), (
                        name, proc, var, key)


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_alias_verdicts_agree_with_live_and_witness_is_stored(data):
    name = data.draw(st.sampled_from(ALL_NAMES), label="program")
    result, store, engine, _ = corpus(name)
    procs = sorted(store["index"]["procedures"])
    proc = data.draw(st.sampled_from(procs), label="proc")
    rec = store["index"]["procedures"][proc]
    pool = sorted(rec["alias"]) or rec["queryable"]
    if not pool:
        return
    a = data.draw(st.sampled_from(pool), label="a")
    b = data.draw(st.sampled_from(pool), label="b")
    answer = engine.alias(a, b, proc)
    live = result.may_alias(proc, a, b)
    assert (answer["verdict"] == "may") == live, (name, proc, a, b)
    if answer["witness"] is not None:
        w = answer["witness"]
        rows_a = {row["ptf"]: row["locs"] for row in rec["alias"].get(a, ())}
        rows_b = {row["ptf"]: row["locs"] for row in rec["alias"].get(b, ())}
        assert w["a"] in rows_a[w["ptf"]], (name, proc, a, b, w)
        assert w["b"] in rows_b[w["ptf"]], (name, proc, a, b, w)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_sampled_points_to_round_trips_through_query_grammar(data):
    from repro.query import parse_query_spec

    name = data.draw(st.sampled_from(ALL_NAMES), label="program")
    _, store, engine, _ = corpus(name)
    procs = sorted(store["index"]["procedures"])
    proc = data.draw(st.sampled_from(procs), label="proc")
    rec = store["index"]["procedures"][proc]
    if not rec["queryable"]:
        return
    var = data.draw(st.sampled_from(rec["queryable"]), label="var")
    request = parse_query_spec(f"points-to {var}@{proc}")
    direct = engine.points_to(var, proc)
    via_grammar = engine.query(request)
    assert via_grammar["targets"] == direct["targets"]
