"""The demand fallback tier end to end: engine routing, server
envelopes, hot-reload counter carry-over, and the CLI surface
(``--demand``/``--no-demand``/``--analyze-on-miss``/``--demand-root``).

Every store here records its sources (path + sha256), because that is
what the tier probes; the scenarios then edit those sources on disk and
check who answers — the store (fresh), the demand engine
(``mode: demand``), or the store annotated (``stale: true``).
"""

import json

import pytest

from repro import AnalyzerOptions
from repro.analysis.demand import DemandTier, fresh_analysis_state
from repro.analysis.results import run_analysis
from repro.cli import main
from repro.frontend.parser import load_project_files
from repro.query.engine import QueryEngine
from repro.query.server import QueryServer
from repro.query.store import build_store, load_store, write_store

SOURCE = """
int g, h;
int *pick(int *p) { return p; }
int main(void) {
    int *a = pick(&g);
    return 0;
}
"""

#: same program, one edit inside ``main``: a now points at h
EDITED = SOURCE.replace("pick(&g)", "pick(&h)")

#: touches only the leaf, leaving main stale via the dependents set
LEAF_EDIT = SOURCE.replace(
    "int *pick(int *p) { return p; }",
    "int *pick(int *p) { int unused = 0; (void)unused; return p; }",
)


def index_sources(tmp_path, text=SOURCE):
    """Write ``text``, index it the way ``repro index`` does, and load
    the sealed store back — digests, sources and all."""
    src = tmp_path / "prog.c"
    src.write_text(text)
    fresh_analysis_state()
    program = load_project_files([str(src)], name="prog")
    result = run_analysis(program, AnalyzerOptions())
    store = build_store(result, program_name="prog", sources=[str(src)])
    store_path = tmp_path / "prog.store.json"
    write_store(store, str(store_path))
    return src, store_path, load_store(str(store_path))


def demand_engine_for(store):
    return QueryEngine(store, demand=DemandTier(store, enabled=True))


POINTS_TO_A = {"op": "points_to", "var": "a", "proc": "main"}


# -- engine routing ---------------------------------------------------------


class TestRouting:
    def test_fresh_store_gets_no_annotations(self, tmp_path):
        _, _, store = index_sources(tmp_path)
        engine = demand_engine_for(store)
        info = {}
        ans = engine.query(dict(POINTS_TO_A), info=info)
        assert ans["targets"] == ["g"]
        assert "mode" not in info and "stale" not in info

    def test_edit_routes_to_demand_with_fresh_facts(self, tmp_path):
        src, _, store = index_sources(tmp_path)
        engine = demand_engine_for(store)
        engine.query(dict(POINTS_TO_A))  # warm the store path first
        src.write_text(EDITED)
        info = {}
        ans = engine.query(dict(POINTS_TO_A), info=info)
        assert info.get("mode") == "demand"
        assert ans["targets"] == ["h"]

    def test_demand_answer_matches_reindexed_store(self, tmp_path):
        src, _, store = index_sources(tmp_path)
        engine = demand_engine_for(store)
        src.write_text(EDITED)
        demand_answer = engine.query(dict(POINTS_TO_A), info={})
        # now rebuild the store from the edited sources and compare bytes
        _, _, fresh_store = index_sources(tmp_path, EDITED)
        fresh_answer = QueryEngine(fresh_store).query(dict(POINTS_TO_A))
        assert json.dumps(demand_answer, sort_keys=True) == json.dumps(
            fresh_answer, sort_keys=True
        )

    def test_leaf_edit_marks_caller_stale_too(self, tmp_path):
        src, _, store = index_sources(tmp_path)
        engine = demand_engine_for(store)
        src.write_text(LEAF_EDIT)
        info = {}
        engine.query(dict(POINTS_TO_A), info=info)
        assert info.get("mode") == "demand"  # main is a dependent of pick

    def test_disabled_tier_serves_store_annotated_stale(self, tmp_path):
        src, _, store = index_sources(tmp_path)
        engine = QueryEngine(store, demand=DemandTier(store, enabled=False))
        src.write_text(EDITED)
        info = {}
        ans = engine.query(dict(POINTS_TO_A), info=info)
        assert info.get("stale") is True
        assert "mode" not in info
        assert ans["targets"] == ["g"]  # the outdated stored fact

    def test_revert_returns_to_fresh(self, tmp_path):
        src, _, store = index_sources(tmp_path)
        engine = demand_engine_for(store)
        src.write_text(EDITED)
        engine.query(dict(POINTS_TO_A), info={})
        src.write_text(SOURCE)  # byte-identical to the indexed content
        info = {}
        ans = engine.query(dict(POINTS_TO_A), info=info)
        assert "mode" not in info and "stale" not in info
        assert ans["targets"] == ["g"]

    def test_parse_error_degrades_to_stale_serving(self, tmp_path):
        src, _, store = index_sources(tmp_path)
        engine = demand_engine_for(store)
        src.write_text("int main(void) { this does not parse")
        info = {}
        ans = engine.query(dict(POINTS_TO_A), info=info)
        assert info.get("stale") is True  # no engine, but serving survives
        assert ans["targets"] == ["g"]
        tier = engine.demand
        assert "error" in tier.stats()

    def test_stats_expose_tier_block(self, tmp_path):
        src, _, store = index_sources(tmp_path)
        engine = demand_engine_for(store)
        src.write_text(EDITED)
        engine.query(dict(POINTS_TO_A), info={})
        stats = engine.query({"op": "stats"})
        demand = stats["demand"]
        assert demand["verdict"] == "stale"
        assert demand["fallbacks"] == 1
        assert demand["analyses"] == 1


# -- the daemon -------------------------------------------------------------


class TestServer:
    def build(self, tmp_path, enabled=True):
        src, store_path, store = index_sources(tmp_path)
        tier = DemandTier(store, enabled=enabled)
        engine = QueryEngine(store, demand=tier)
        server = QueryServer(engine, store_path=str(store_path))
        return src, store_path, server

    def test_envelope_carries_demand_mode(self, tmp_path):
        src, _, server = self.build(tmp_path)
        fresh = server.handle_request(dict(POINTS_TO_A))
        assert fresh["ok"] and "mode" not in fresh and "stale" not in fresh
        src.write_text(EDITED)
        envelope = server.handle_request(dict(POINTS_TO_A))
        assert envelope["ok"] and envelope["status"] == 0
        assert envelope["mode"] == "demand"
        assert envelope["result"]["targets"] == ["h"]

    def test_envelope_carries_stale_when_disabled(self, tmp_path):
        src, _, server = self.build(tmp_path, enabled=False)
        src.write_text(EDITED)
        envelope = server.handle_request(dict(POINTS_TO_A))
        assert envelope["stale"] is True
        assert envelope["result"]["targets"] == ["g"]

    def test_fallback_counter_in_stats_and_metrics(self, tmp_path):
        src, _, server = self.build(tmp_path)
        src.write_text(EDITED)
        server.handle_request(dict(POINTS_TO_A))
        server.handle_request(dict(POINTS_TO_A))
        stats = server.handle_request({"op": "stats"})["result"]
        assert stats["server"]["demand_fallbacks"] == 2
        assert stats["demand"]["fallbacks"] == 2
        metrics = server.handle_request(
            {"op": "stats", "format": "prometheus"}
        )["result"]["text"]
        assert "repro_server_demand_fallbacks 2" in metrics

    def test_reload_rebinds_tier_and_keeps_counters(self, tmp_path):
        src, store_path, server = self.build(tmp_path)
        src.write_text(EDITED)
        demand_envelope = server.handle_request(dict(POINTS_TO_A))
        assert demand_envelope["mode"] == "demand"
        old_tier = server.engine.demand
        # full re-index of the edited sources, then hot swap
        _, _, fresh_store = index_sources(tmp_path, EDITED)
        write_store(fresh_store, str(store_path))
        reload_env = server.handle_request({"op": "reload"})
        assert reload_env["ok"]
        new_tier = server.engine.demand
        assert new_tier is not old_tier
        assert new_tier.fallbacks == 1  # carried across the swap
        after = server.handle_request(dict(POINTS_TO_A))
        assert "mode" not in after  # new store is fresh for the new bytes
        assert json.dumps(after["result"], sort_keys=True) == json.dumps(
            demand_envelope["result"], sort_keys=True
        )


# -- the CLI ----------------------------------------------------------------


class TestCLI:
    def prog(self, tmp_path, text=SOURCE):
        src = tmp_path / "prog.c"
        src.write_text(text)
        store = tmp_path / "prog.store.json"
        assert main(["index", str(src), "-o", str(store)]) == 0
        return src, store

    def test_missing_store_prints_hint(self, tmp_path, capsys):
        rc = main(
            ["query", str(tmp_path / "absent.json"), "points-to a@main"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "repro: hint:" in err
        assert "--analyze-on-miss" in err

    def test_analyze_on_miss_answers_without_store(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(SOURCE)
        rc = main(
            [
                "query", str(tmp_path / "absent.json"), "points-to a@main",
                "--analyze-on-miss", str(src), "--json",
            ]
        )
        assert rc == 0
        answers = json.loads(capsys.readouterr().out)
        assert answers[0]["targets"] == ["g"]
        assert answers[0]["mode"] == "demand"

    def test_stale_query_recomputed_by_default(self, tmp_path, capsys):
        src, store = self.prog(tmp_path)
        capsys.readouterr()
        src.write_text(EDITED)
        rc = main(["query", str(store), "points-to a@main", "--json"])
        assert rc == 0
        captured = capsys.readouterr()
        answers = json.loads(captured.out)
        assert answers[0]["targets"] == ["h"]
        assert answers[0]["mode"] == "demand"
        assert "recomputed" in captured.err

    def test_no_demand_marks_stale_json(self, tmp_path, capsys):
        src, store = self.prog(tmp_path)
        capsys.readouterr()
        src.write_text(EDITED)
        rc = main(
            ["query", str(store), "points-to a@main", "--json", "--no-demand"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        answers = json.loads(captured.out)
        assert answers[0]["targets"] == ["g"]
        assert answers[0]["stale"] is True
        assert "--no-demand" in captured.err  # the warning names the way out

    def test_demand_root_prints_slice(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(SOURCE)
        rc = main(["analyze", str(src), "--demand-root", "a@main"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "demand slice a@main:" in out
        assert "-> ['g']" in out

    def test_demand_root_unreachable_is_empty(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(SOURCE + "\nint *stray(int *s) { return s; }\n")
        rc = main(["analyze", str(src), "--demand-root", "s@stray"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unreachable" in out
