"""The query daemon: envelopes, batching, both transports, concurrency.

The headline property (the PR's daemon acceptance check) is
``test_concurrent_clients_match_sequential_answers``: N threads issuing
interleaved batched queries over TCP receive byte-identical payloads to
sequential one-shot runs, and shutdown leaves no orphan socket and
returns 0.
"""

import io
import json
import socket
import threading
import time

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.query import QueryEngine, build_store
from repro.query.server import QueryServer, _probe_tcp

SOURCE = """
int g;
int *gp;
void set(int **pp, int *v) { *pp = v; }
int use(int *p) { return *p; }
int main(void) {
    int x, y;
    int *p = &x;
    int *q = &y;
    set(&gp, &g);
    return use(p) + use(q);
}
"""

#: the scripted query mix the concurrency test replays (a superset of
#: what the CI serve smoke sends)
REQUESTS = [
    {"op": "points_to", "var": "p", "proc": "main"},
    {"op": "points_to", "var": "q", "proc": "main"},
    {"op": "points_to", "var": "gp", "proc": "main"},
    {"op": "alias", "a": "p", "b": "q", "proc": "main"},
    {"op": "alias", "a": "gp", "b": "p", "proc": "main"},
    {"op": "pointed_by", "name": "g"},
    {"op": "modref", "proc": "set"},
    {"op": "modref", "proc": "use"},
    {"op": "reaches", "src": "main", "dst": "use"},
    {"op": "callees", "proc": "main"},
    {"op": "callers", "proc": "set"},
]


@pytest.fixture(scope="module")
def store():
    result = analyze_source(SOURCE, options=AnalyzerOptions())
    return build_store(result, program_name="daemon")


def make_server(store, **kwargs):
    return QueryServer(QueryEngine(store), **kwargs)


# -- envelopes / stdio ------------------------------------------------------


def run_stdio(server, lines):
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    code = server.serve_stdio(stdin, stdout)
    return code, [json.loads(l) for l in stdout.getvalue().splitlines()]


def test_single_request_envelope(store):
    code, out = run_stdio(
        make_server(store),
        [json.dumps({"op": "points_to", "var": "p", "proc": "main", "id": 7})],
    )
    assert code == 0
    [env] = out
    assert env["id"] == 7 and env["ok"] and env["status"] == 0
    assert env["result"]["targets"] == ["x"]


def test_batch_answers_in_request_order(store):
    batch = [dict(req, id=i) for i, req in enumerate(REQUESTS)]
    code, out = run_stdio(make_server(store), [json.dumps(batch)])
    assert code == 0
    assert [env["id"] for env in out] == list(range(len(REQUESTS)))
    assert all(env["ok"] for env in out)


def test_error_envelopes_carry_stable_codes(store):
    lines = [
        json.dumps({"op": "nope", "id": 1}),
        json.dumps({"op": "points_to", "var": "zz", "proc": "main", "id": 2}),
        json.dumps({"op": "modref", "proc": "zz", "id": 3}),
        "this is not json",
        json.dumps(["not-an-object"]),
    ]
    code, out = run_stdio(make_server(store), lines)
    assert code == 0
    codes = [(env["ok"], env["status"], (env.get("error") or {}).get("code"))
             for env in out]
    assert codes == [
        (False, 2, "bad-request"),
        (False, 2, "unknown-var"),
        (False, 2, "unknown-proc"),
        (False, 2, "bad-json"),
        (False, 2, "bad-request"),
    ]


def test_ping_and_shutdown(store):
    server = make_server(store)
    code, out = run_stdio(server, [
        json.dumps({"op": "ping", "id": 1}),
        json.dumps({"op": "shutdown", "id": 2}),
        json.dumps({"op": "ping", "id": 3}),  # after shutdown: never read
    ])
    assert code == 0
    assert [env["id"] for env in out] == [1, 2]
    assert out[0]["result"]["program"] == "daemon"
    assert server.shutting_down.is_set()


def test_expired_deadline_maps_to_error_envelope(store):
    server = make_server(store, deadline_seconds=-1.0)  # already expired
    code, out = run_stdio(
        server, [json.dumps({"op": "callees", "proc": "main", "id": 1})]
    )
    assert code == 0
    [env] = out
    assert not env["ok"] and env["status"] == 2
    assert env["error"]["code"] == "deadline"


def test_degraded_store_answers_with_status_4(store):
    poisoned = json.loads(json.dumps(store))
    poisoned["snapshot"]["degradation"]["ok"] = False
    code, out = run_stdio(
        make_server(poisoned),
        [json.dumps({"op": "callees", "proc": "main", "id": 1})],
    )
    [env] = out
    assert env["ok"] and env["status"] == 4


def test_blank_lines_are_ignored(store):
    code, out = run_stdio(make_server(store), ["", "   ", ""])
    assert code == 0 and out == []


# -- TCP transport ----------------------------------------------------------


def start_tcp(server):
    addr = {}
    ready = threading.Event()

    def cb(a):
        addr["a"] = a
        ready.set()

    thread = threading.Thread(
        target=server.serve_tcp,
        kwargs=dict(host="127.0.0.1", port=0, ready_cb=cb, log=io.StringIO()),
    )
    thread.start()
    assert ready.wait(10), "server never announced readiness"
    return thread, addr["a"]


def tcp_exchange(addr, lines):
    """Send each line, read one response line per request it contains."""
    out = []
    with socket.create_connection(addr, timeout=10) as sock:
        fh = sock.makefile("rw", encoding="utf-8")
        for line in lines:
            payload = json.loads(line)
            n = len(payload) if isinstance(payload, list) else 1
            fh.write(line + "\n")
            fh.flush()
            for _ in range(n):
                out.append(fh.readline().rstrip("\n"))
    return out


def shutdown_tcp(addr):
    with socket.create_connection(addr, timeout=10) as sock:
        fh = sock.makefile("rw", encoding="utf-8")
        fh.write(json.dumps({"op": "shutdown"}) + "\n")
        fh.flush()
        return json.loads(fh.readline())


def test_tcp_round_trip_and_clean_shutdown(store):
    server = make_server(store)
    thread, addr = start_tcp(server)
    try:
        [answer] = tcp_exchange(
            addr, [json.dumps({"op": "points_to", "var": "p",
                               "proc": "main", "id": 1})]
        )
        env = json.loads(answer)
        assert env["ok"] and env["result"]["targets"] == ["x"]
    finally:
        env = shutdown_tcp(addr)
        assert env["ok"]
        thread.join(10)
    assert not thread.is_alive()
    # no orphan socket: nothing accepts connections on the old port
    deadline = time.time() + 5
    while _probe_tcp(*addr) and time.time() < deadline:
        time.sleep(0.05)
    assert not _probe_tcp(*addr)


def test_concurrent_clients_match_sequential_answers(store):
    """Satellite acceptance: N threads, interleaved batches, answers
    byte-identical to sequential one-shot queries; clean shutdown."""
    # sequential baseline: a fresh engine per request (one-shot runs)
    baseline = {}
    for req in REQUESTS:
        engine = QueryEngine(store)
        key = json.dumps(req, sort_keys=True)
        baseline[key] = json.dumps(engine.query(dict(req)), sort_keys=True)

    server = make_server(store)
    thread, addr = start_tcp(server)
    failures = []

    def client(seed: int) -> None:
        try:
            # each client interleaves the ops differently and mixes
            # batched and single requests
            order = REQUESTS[seed:] + REQUESTS[:seed]
            half = len(order) // 2
            batch = json.dumps([dict(r, id=f"{seed}-{i}")
                                for i, r in enumerate(order[:half])])
            singles = [json.dumps(dict(r, id=f"{seed}-s{i}"))
                       for i, r in enumerate(order[half:])]
            raw = tcp_exchange(addr, [batch] + singles)
            for line in raw:
                env = json.loads(line)
                assert env["ok"], env
                req_id = env["id"]
                # map the answer back to its request by id
                idx = int(str(req_id).split("-")[-1].lstrip("s"))
                is_single = "s" in str(req_id)
                req = order[half + idx] if is_single else order[idx]
                key = json.dumps(req, sort_keys=True)
                got = json.dumps(env["result"], sort_keys=True)
                assert got == baseline[key], (req, got)
        except Exception as exc:  # pragma: no cover - diagnostic
            failures.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    try:
        assert not failures, failures[0]
        # the shared engine actually shared: repeats across clients hit
        stats = server.engine.query({"op": "stats"})
        assert stats["cache_hits"] > 0
    finally:
        shutdown_tcp(addr)
        thread.join(10)
    assert not thread.is_alive()
    assert not _probe_tcp(*addr)


def test_requests_handled_counter(store):
    server = make_server(store)
    run_stdio(server, [
        json.dumps({"op": "ping"}),
        json.dumps([{"op": "stats"}, {"op": "stats"}]),
        "garbage",
    ])
    # ping + 2 batched + garbage line is not counted as a request (it
    # never became one), so: 3
    assert server.requests_handled == 3


# -- telemetry / access log / admin ops -------------------------------------


def test_stats_op_carries_server_block_and_telemetry(store):
    from repro.diagnostics.telemetry import TelemetryRegistry

    server = make_server(store, telemetry=TelemetryRegistry())
    lines = [json.dumps(dict(req, id=i)) for i, req in enumerate(REQUESTS)]
    lines.append(json.dumps({"op": "stats", "id": "admin"}))
    code, out = run_stdio(server, lines)
    assert code == 0
    stats = out[-1]["result"]
    # engine keys the CI smoke client depends on survive untouched
    assert stats["cache_misses"] >= 1 and "cache_hit_rate" in stats
    block = stats["server"]
    # every earlier request was finalized before stats was answered
    assert block["requests"] == len(REQUESTS)
    assert block["in_flight"] >= 1  # the stats line itself
    assert block["uptime_seconds"] >= 0
    assert block["access_log"] is False
    telem = block["telemetry"]
    assert telem["counters"]["requests"] == len(REQUESTS)
    assert telem["histograms"]["latency"]["count"] == len(REQUESTS)
    # the stats line itself is still in flight; every earlier line's
    # gauge increment was paired with a decrement at finalize
    assert telem["gauges"]["in_flight"] == 1
    # after the whole batch drains the gauge returns to zero
    assert server.telemetry.gauge("in_flight").value == 0


def test_metrics_op_emits_prometheus_text(store):
    """The `metrics` admin op: Prometheus text exposition straight from
    the live registry, server levels folded in as gauges."""
    from repro.diagnostics.telemetry import TelemetryRegistry

    server = make_server(store, telemetry=TelemetryRegistry())
    lines = [json.dumps(dict(req, id=i)) for i, req in enumerate(REQUESTS)]
    lines.append(json.dumps({"op": "metrics", "id": "scrape"}))
    code, out = run_stdio(server, lines)
    assert code == 0
    env = out[-1]
    assert env["ok"] and env["id"] == "scrape"
    result = env["result"]
    assert result["op"] == "metrics"
    assert result["content_type"] == "text/plain; version=0.0.4"
    text_lines = result["text"].splitlines()
    assert "# TYPE repro_requests_total counter" in text_lines
    assert f"repro_requests_total {len(REQUESTS)}" in text_lines
    assert "# TYPE repro_server_requests gauge" in text_lines
    assert f"repro_server_requests {len(REQUESTS)}" in text_lines
    assert "# TYPE repro_latency summary" in text_lines
    assert f"repro_latency_count {len(REQUESTS)}" in text_lines


def test_stats_prometheus_format_matches_metrics_op(store):
    from repro.diagnostics.telemetry import TelemetryRegistry

    server = make_server(store, telemetry=TelemetryRegistry())
    code, out = run_stdio(
        server,
        [json.dumps({"op": "stats", "format": "prometheus", "id": 1})],
    )
    assert code == 0
    [env] = out
    assert env["ok"]
    assert env["result"]["op"] == "metrics"
    assert "# TYPE" in env["result"]["text"]
    # plain stats is unchanged by the new format branch
    code, out = run_stdio(
        make_server(store), [json.dumps({"op": "stats", "id": 2})]
    )
    assert "server" in out[0]["result"]


def test_metrics_op_works_with_telemetry_off(store):
    """--no-telemetry daemons still answer scrapes with the server-level
    gauges (and nothing else)."""
    code, out = run_stdio(
        make_server(store), [json.dumps({"op": "metrics", "id": 1})]
    )
    assert code == 0
    [env] = out
    assert env["ok"]
    text = env["result"]["text"]
    assert "repro_server_uptime_seconds" in text
    assert "_total" not in text  # no registry, no counters


def test_metrics_is_a_control_op():
    from repro.query.server import CONTROL_OPS

    assert "metrics" in CONTROL_OPS


def test_stats_counts_exactly_match_requests_sent(store):
    """Satellite acceptance: after a concurrent run, the daemon's own
    accounting — requests counter and histogram totals — exactly equals
    the number of requests the clients sent (no lost or double-counted
    finalizations)."""
    from repro.diagnostics.telemetry import TelemetryRegistry

    server = make_server(store, telemetry=TelemetryRegistry())
    thread, addr = start_tcp(server)
    clients = 6
    failures = []

    def client(seed):
        try:
            order = REQUESTS[seed:] + REQUESTS[:seed]
            lines = [json.dumps(dict(r, id=f"{seed}-{i}"))
                     for i, r in enumerate(order)]
            for line in tcp_exchange(addr, lines):
                assert json.loads(line)["ok"]
        except Exception as exc:  # pragma: no cover - diagnostic
            failures.append(exc)

    pool = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for t in pool:
        t.start()
    for t in pool:
        t.join(30)
    try:
        assert not failures, failures[0]
        sent = clients * len(REQUESTS)

        # a handler finalizes its counters *after* flushing the envelope
        # to the peer, so a client can see its last answer a beat before
        # the daemon's own accounting catches up; convergence (not the
        # instant of the last flush) is the invariant — wait for the
        # in-process finalize count (telemetry records before it), then
        # assert exactness over the wire
        deadline = time.monotonic() + 5.0
        while (
            server.requests_finalized < sent
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        with socket.create_connection(addr, timeout=10) as sock:
            fh = sock.makefile("rw", encoding="utf-8")
            fh.write(json.dumps({"op": "stats"}) + "\n")
            fh.flush()
            stats = json.loads(fh.readline())["result"]
        assert stats["server"]["requests"] == sent
        telem = stats["server"]["telemetry"]
        assert telem["counters"]["requests"] == sent
        assert telem["histograms"]["latency"]["count"] == sent
        # per-op histograms partition the total exactly
        per_op = sum(
            snap["count"]
            for name, snap in telem["histograms"].items()
            if name.startswith("latency.")
        )
        assert per_op == sent
        assert telem["counters"]["cache_hits"] + telem["counters"][
            "cache_misses"
        ] == sent
    finally:
        shutdown_tcp(addr)
        thread.join(10)


def test_health_op_answers_without_touching_cache(store):
    from repro.diagnostics.telemetry import TelemetryRegistry

    server = make_server(store, telemetry=TelemetryRegistry())
    code, out = run_stdio(server, [json.dumps({"op": "health", "id": 1})])
    assert code == 0
    [env] = out
    assert env["ok"]
    result = env["result"]
    assert result["healthy"] is True
    assert result["program"] == "daemon"
    assert result["degraded"] is False
    assert result["in_flight"] >= 1
    # health never probes the LRU
    assert server.engine.query({"op": "stats"})["cache_hits"] == 0


def test_telemetry_enabled_answers_byte_identical(store):
    """Acceptance: telemetry + access log on never changes a single
    answer byte (the info out-param keeps cached answers shared)."""
    from repro.diagnostics.telemetry import TelemetryRegistry

    lines = [json.dumps(dict(req, id=i)) for i, req in enumerate(REQUESTS)]
    lines += lines  # repeats: the second half answers from the LRU

    def run(server):
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        assert server.serve_stdio(stdin, stdout) == 0
        return stdout.getvalue()

    plain = run(make_server(store))
    instrumented = run(
        make_server(
            store, telemetry=TelemetryRegistry(), access_log=io.StringIO()
        )
    )
    assert instrumented == plain


def test_access_log_schema(store):
    access = io.StringIO()
    server = make_server(store, access_log=access)
    run_stdio(server, [
        json.dumps({"op": "points_to", "var": "p", "proc": "main", "id": 1}),
        json.dumps({"op": "points_to", "var": "p", "proc": "main", "id": 2}),
        json.dumps({"op": "points_to", "var": "zz", "proc": "main", "id": 3}),
        "not json",
        json.dumps([{"op": "ping", "id": "a"}, {"op": "modref",
                                                "proc": "set", "id": "b"}]),
    ])
    records = [json.loads(l) for l in access.getvalue().splitlines()]
    assert len(records) == 6  # 3 singles + bad line + 2 batched
    for rec in records:
        assert set(rec) == {
            "t", "rid", "id", "op", "ok", "status", "code", "ms",
            "cache", "peer",
        }
        assert rec["ms"] >= 0 and rec["peer"] == "stdio"
    # rids are unique and increasing in finalization order
    rids = [rec["rid"] for rec in records]
    assert rids == sorted(rids) and len(set(rids)) == len(rids)
    assert records[0]["op"] == "points_to" and records[0]["cache"] == "miss"
    assert records[1]["cache"] == "hit"
    assert records[2]["ok"] is False and records[2]["code"] == "unknown-var"
    assert records[3]["op"] == "invalid" and records[3]["code"] == "bad-json"
    # batched requests share their line's latency (one wire unit)
    assert records[4]["ms"] == records[5]["ms"]


def test_slow_counter_and_trace_instants(store):
    from repro.diagnostics.telemetry import TelemetryRegistry
    from repro.diagnostics.trace import EVENT_VOCABULARY, Tracer

    tracer = Tracer()
    server = make_server(
        store, telemetry=TelemetryRegistry(), tracer=tracer, slow_ms=0.0
    )
    run_stdio(server, [
        json.dumps({"op": "points_to", "var": "p", "proc": "main", "id": 1}),
        json.dumps({"op": "ping", "id": 2}),
    ])
    snap = server.telemetry.as_dict()
    # with a 0ms threshold every finalized request counts as slow
    assert snap["counters"]["slow"] == 2
    names = {e["name"] for e in tracer.events}
    assert names == {"server.request", "server.slow"}
    assert names <= set(EVENT_VOCABULARY)
    requests = [e for e in tracer.events if e["name"] == "server.request"]
    assert [e["args"]["op"] for e in requests] == ["points_to", "ping"]


def test_deadline_counter(store):
    from repro.diagnostics.telemetry import TelemetryRegistry

    server = make_server(
        store, telemetry=TelemetryRegistry(), deadline_seconds=-1.0
    )
    run_stdio(server, [json.dumps({"op": "callees", "proc": "main",
                                   "id": 1})])
    snap = server.telemetry.as_dict()
    assert snap["counters"]["deadlines"] == 1
    assert snap["counters"]["errors"] == 1


def test_shutdown_report_written_on_request(store):
    from repro.diagnostics.telemetry import TelemetryRegistry

    access = io.StringIO()
    server = make_server(store, telemetry=TelemetryRegistry(),
                         access_log=access)
    stdin = io.StringIO(json.dumps({"op": "ping", "id": 1}) + "\n"
                        + json.dumps({"op": "shutdown", "id": 2}) + "\n")
    stdout, log = io.StringIO(), io.StringIO()
    assert server.serve_stdio(stdin, stdout, log=log) == 0
    text = log.getvalue()
    assert "repro: shutdown (request) after 2 request(s)" in text
    telemetry_lines = [l for l in text.splitlines()
                       if l.startswith("repro: telemetry ")]
    assert len(telemetry_lines) == 1
    snapshot = json.loads(telemetry_lines[0].split("repro: telemetry ", 1)[1])
    assert snapshot["counters"]["requests"] == 2


def test_sigterm_drains_and_exits_zero(store, tmp_path):
    """Satellite acceptance: a SIGTERM'd ``repro serve --tcp`` daemon
    stops accepting, flushes its access log, writes the final telemetry
    snapshot to stderr, and exits 0."""
    import os
    import signal
    import subprocess
    import sys as _sys

    store_path = tmp_path / "store.json"
    store_path.write_text(json.dumps(store))
    access_path = tmp_path / "access.jsonl"
    proc = subprocess.Popen(
        [_sys.executable, "-m", "repro.cli", "serve", str(store_path),
         "--tcp", "127.0.0.1:0", "--access-log", str(access_path)],
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ, PYTHONPATH="src"),
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
    )
    try:
        announce = proc.stderr.readline()
        assert "repro: serving daemon on " in announce, announce
        host, _, port = announce.strip().rpartition(" ")[2].rpartition(":")
        addr = (host, int(port))
        [answer] = tcp_exchange(
            addr, [json.dumps({"op": "points_to", "var": "p",
                               "proc": "main", "id": 1})]
        )
        assert json.loads(answer)["ok"]
        proc.send_signal(signal.SIGTERM)
        stderr = proc.stderr.read()
        assert proc.wait(timeout=15) == 0
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait()
    assert "repro: shutdown (SIGTERM) after 1 request(s)" in stderr
    assert "repro: telemetry " in stderr
    records = [json.loads(l)
               for l in access_path.read_text().splitlines()]
    assert [r["op"] for r in records] == ["points_to"]
    assert not _probe_tcp(*addr)
