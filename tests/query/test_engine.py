"""The demand query engine: every op, the grammar, the cache, deadlines.

The fidelity anchor is always the live :class:`AnalysisResult` the store
was built from — a stored answer is correct iff the live API agrees.
"""

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.analysis.guards import AnalysisBudget, GuardTripped
from repro.diagnostics import Tracer
from repro.diagnostics.metrics import Metrics
from repro.query import (
    QueryEngine,
    QueryError,
    build_store,
    parse_query_spec,
)

SOURCE = """
int g;
int *gp;
void set(int **pp, int *v) { *pp = v; }
int use(int *p) { return *p; }
int maybe(int c, int *a, int *b) {
    int *r = c ? a : b;
    return *r;
}
int main(void) {
    int x, y;
    int *p = &x;
    int *q = &x;
    int *r = &y;
    set(&gp, &g);
    maybe(1, p, r);
    return use(p) + *q;
}
"""


@pytest.fixture(scope="module")
def result():
    return analyze_source(SOURCE, options=AnalyzerOptions())


@pytest.fixture(scope="module")
def store(result):
    return build_store(result, program_name="unit")


@pytest.fixture()
def engine(store):
    return QueryEngine(store)


# -- grammar ----------------------------------------------------------------


def test_parse_points_to():
    assert parse_query_spec("points-to p@main") == {
        "op": "points_to", "var": "p", "proc": "main"}
    assert parse_query_spec("points-to p")["proc"] == "main"


def test_parse_alias_forms():
    assert parse_query_spec("alias a b@f") == {
        "op": "alias", "a": "a", "b": "b", "proc": "f"}
    assert parse_query_spec("alias a,b@f")["proc"] == "f"
    # proc attached to the first variable distributes to the pair
    assert parse_query_spec("alias a@f b")["proc"] == "f"


def test_parse_modref_forms():
    assert parse_query_spec("modref f") == {"op": "modref", "proc": "f"}
    assert parse_query_spec("modref f:12") == {
        "op": "modref", "proc": "f", "line": 12}


def test_parse_rejects_garbage():
    for bad in ("", "frobnicate x", "points-to", "alias onlyone",
                "reaches just_src"):
        with pytest.raises(QueryError) as exc:
            parse_query_spec(bad)
        assert exc.value.code == "bad-request"


# -- op fidelity ------------------------------------------------------------


def test_points_to_agrees_with_live(engine, result):
    ans = engine.query({"op": "points_to", "var": "p", "proc": "main"})
    assert ans["targets"] == sorted(result.points_to_names("main", "p"))
    assert ans["explain"].startswith("repro explain")


def test_alias_verdicts_agree_with_live(engine, result):
    cases = [("p", "q", "main"), ("p", "r", "main"), ("p", "gp", "main"),
             ("a", "b", "maybe"), ("r", "a", "maybe")]
    for a, b, proc in cases:
        ans = engine.query({"op": "alias", "a": a, "b": b, "proc": proc})
        live = result.may_alias(proc, a, b)
        assert (ans["verdict"] == "may") == live, (a, b, proc)
        if ans["verdict"] == "may":
            assert ans["witness"] is not None
            # the witness names a block both variables reach
            assert ans["witness"]["a"][0] == ans["witness"]["b"][0]
        else:
            assert ans["witness"] is None


def test_pointed_by_inverse(engine):
    fwd = engine.query({"op": "points_to", "var": "p", "proc": "main"})
    for target in fwd["targets"]:
        back = engine.query({"op": "pointed_by", "name": target})
        assert ["main", "p"] in back["pointers"]


def test_modref_procedure(engine, result):
    ans = engine.query({"op": "modref", "proc": "set"})
    live = result.mod_ref("set")
    assert ans["mod"] == live["mod"]
    assert ans["ref"] == live["ref"]
    assert ans["pure"] == (not live["mod"])


def test_modref_callsite_unions_callees(engine, store):
    [site] = [s for s in store["index"]["callsites"]
              if s["proc"] == "main" and "set" in s["callees"]]
    line = int(site["coord"].rsplit(":", 2)[-2])
    ans = engine.query({"op": "modref", "proc": "main", "line": line})
    assert "set" in ans["callees"]
    per_proc = engine.query({"op": "modref", "proc": "set"})
    for name in per_proc["mod"]:
        assert name in ans["mod"]


def test_reaches_and_call_neighbourhoods(engine):
    ans = engine.query({"op": "reaches", "src": "main", "dst": "use"})
    assert ans["reachable"] and ans["path"][0] == "main" \
        and ans["path"][-1] == "use"
    no = engine.query({"op": "reaches", "src": "use", "dst": "main"})
    assert not no["reachable"] and no["path"] == []
    assert "set" in engine.query({"op": "callees", "proc": "main"})["callees"]
    assert engine.query({"op": "callers", "proc": "use"})["callers"] == ["main"]


def test_empty_answer_vs_unknown_var(engine):
    # a queryable variable with no pointer values answers empty ...
    ans = engine.query({"op": "points_to", "var": "x", "proc": "main"})
    assert ans["targets"] == []
    # ... an unknown name is an error
    with pytest.raises(QueryError) as exc:
        engine.query({"op": "points_to", "var": "nosuch", "proc": "main"})
    assert exc.value.code == "unknown-var"


def test_unknown_proc_and_op(engine):
    with pytest.raises(QueryError) as exc:
        engine.query({"op": "modref", "proc": "nosuch"})
    assert exc.value.code == "unknown-proc"
    with pytest.raises(QueryError) as exc:
        engine.query({"op": "frobnicate"})
    assert exc.value.code == "bad-request"


# -- cache ------------------------------------------------------------------


def test_cache_hits_and_metrics(store):
    metrics = Metrics()
    tracer = Tracer()
    engine = QueryEngine(store, metrics=metrics, tracer=tracer)
    req = {"op": "points_to", "var": "p", "proc": "main"}
    first = engine.query(req)
    second = engine.query(dict(req))  # equal but distinct dict
    assert second is first  # shared cache entry
    assert metrics.queries == 2
    assert metrics.query_cache_hits == 1
    assert metrics.query_cache_misses == 1
    assert metrics.query_cache_hit_rate() == 0.5
    names = [e["name"] for e in tracer.events]
    assert names.count("query.miss") == 1
    assert names.count("query.hit") == 1


def test_cache_is_bounded_lru(store):
    engine = QueryEngine(store, cache_size=2)
    a = {"op": "callees", "proc": "main"}
    b = {"op": "callees", "proc": "set"}
    c = {"op": "callees", "proc": "use"}
    engine.query(a)
    engine.query(b)
    engine.query(a)      # a is now most recent
    engine.query(c)      # evicts b
    engine.query(a)
    assert engine.metrics.query_cache_hits == 2
    engine.query(b)      # miss again: was evicted
    assert engine.metrics.query_cache_misses == 4


def test_request_id_does_not_split_cache(store):
    engine = QueryEngine(store)
    engine.query({"op": "stats", "id": 1})
    first = engine.query({"op": "callees", "proc": "main", "id": 1})
    second = engine.query({"op": "callees", "proc": "main", "id": 2})
    assert second is first


def test_stats_never_cached(engine):
    s1 = engine.query({"op": "stats"})
    s2 = engine.query({"op": "stats"})
    assert s2["queries"] == s1["queries"] + 1


# -- deadlines --------------------------------------------------------------


def test_expired_budget_trips_guard(store):
    tracer = Tracer()
    engine = QueryEngine(store, tracer=tracer)
    budget = AnalysisBudget(deadline_seconds=0.0)
    budget.start()
    with pytest.raises(GuardTripped) as exc:
        engine.query({"op": "stats"}, budget=budget)
    assert exc.value.reason == "deadline"
    assert any(e["name"] == "query.deadline" for e in tracer.events)


def test_unexpired_budget_is_transparent(engine):
    budget = AnalysisBudget(deadline_seconds=60.0)
    budget.start()
    ans = engine.query({"op": "callees", "proc": "main"}, budget=budget)
    assert ans["callees"]


# -- store validation -------------------------------------------------------


def test_engine_rejects_wrong_format(store):
    bad = dict(store)
    bad["format"] = "repro-store/999"
    with pytest.raises(ValueError, match="unsupported store format"):
        QueryEngine(bad)
