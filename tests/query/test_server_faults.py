"""Fault tolerance of the serve daemon (docs/ROBUSTNESS.md §8).

Four pillars, each pinned here: hot store swap (the ``reload`` admin op
promotes a new store atomically under traffic — in-flight lines answer
entirely from the old store, never a torn mix), overload protection
(in-flight gate + token bucket shed with the stable ``overloaded`` code
while control ops stay exempt), store integrity on the reload path (a
corrupted target is refused while the old store keeps serving), and the
injected serve faults (slow handlers, mid-request disconnects) that the
chaos gate builds on.
"""

import io
import json
import socket
import threading
import time

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.diagnostics.faults import FaultPlan
from repro.diagnostics.telemetry import TelemetryRegistry
from repro.memory.pointsto import reset_interning
from repro.query import QueryEngine, build_store, load_store, write_store
from repro.query.server import QueryServer

SOURCE_V1 = """
int g;
int *gp;
void set(int **pp, int *v) { *pp = v; }
int use(int *p) { return *p; }
int iso(void) { int z; int *r = &z; return *r; }
int main(void) {
    int x, y;
    int *p = &x;
    int *q = &y;
    set(&gp, &g);
    return use(p) + use(q) + iso();
}
"""

#: ``use`` edited — ``main`` (its caller) goes stale with it, ``iso``
#: and ``set`` stay clean; every points-to answer is unchanged
SOURCE_V2 = SOURCE_V1.replace(
    "int use(int *p) { return *p; }",
    "int use(int *p) { return *p + 1; }",
)

#: ``main`` edited so an *answer* changes: p points to y, not x
SOURCE_V3 = SOURCE_V1.replace("int *p = &x;", "int *p = &y;")


def build(source: str) -> dict:
    reset_interning()
    result = analyze_source(source, options=AnalyzerOptions())
    return build_store(result, program_name="faulty")


@pytest.fixture(scope="module")
def store_v1():
    return build(SOURCE_V1)


@pytest.fixture(scope="module")
def store_v2():
    return build(SOURCE_V2)


@pytest.fixture(scope="module")
def store_v3():
    return build(SOURCE_V3)


def make_server(store, **kwargs):
    return QueryServer(QueryEngine(store), **kwargs)


def run_stdio(server, lines):
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    code = server.serve_stdio(stdin, stdout)
    return code, [json.loads(l) for l in stdout.getvalue().splitlines()]


def ask(server, request) -> dict:
    [text] = server.handle_line(json.dumps(request))
    return json.loads(text)


P_MAIN = {"op": "points_to", "var": "p", "proc": "main"}
R_ISO = {"op": "points_to", "var": "r", "proc": "iso"}


# -- hot store swap ---------------------------------------------------------


def test_reload_promotes_new_store(tmp_path, store_v1, store_v3):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(store_v1, store_path=path)
    assert ask(server, P_MAIN)["result"]["targets"] == ["x"]
    write_store(store_v3, path)
    env = ask(server, {"op": "reload", "id": 9})
    assert env["ok"] and env["id"] == 9
    result = env["result"]
    assert result["generation"] == 2
    assert result["store"] == path
    assert server.generation == 2 and server.reloads == 1
    # the promoted store answers
    assert ask(server, P_MAIN)["result"]["targets"] == ["y"]


def test_reload_stale_report_in_result(tmp_path, store_v1, store_v2):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(store_v1, store_path=path)
    write_store(store_v2, path)
    result = ask(server, {"op": "reload"})["result"]
    assert result["stale"]["changed"] == 1  # use
    assert result["stale"]["globals_changed"] is False
    assert result["stale"]["stale"] == 2  # use + its caller main
    assert result["stale"]["clean"] >= 2  # set, iso survive


def test_requests_in_one_line_pin_one_store(tmp_path, store_v1, store_v3):
    """The never-torn guarantee, single-threaded and deterministic: a
    batch line that *contains* the reload still answers every request in
    that line from the store pinned when the line arrived."""
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(store_v1, store_path=path)
    write_store(store_v3, path)
    batch = [dict(P_MAIN, id=1), {"op": "reload", "id": 2},
             dict(P_MAIN, id=3)]
    answers = [json.loads(t) for t in server.handle_line(json.dumps(batch))]
    # the swap happened mid-line...
    assert answers[1]["ok"] and server.generation == 2
    # ...but both queries in the line saw the old store
    assert answers[0]["result"]["targets"] == ["x"]
    assert answers[2]["result"]["targets"] == ["x"]
    # the next line sees the new store
    assert ask(server, P_MAIN)["result"]["targets"] == ["y"]


def test_reload_carries_clean_cache_slice(tmp_path, store_v1, store_v2):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(store_v1, store_path=path)
    iso_before = ask(server, R_ISO)["result"]
    ask(server, P_MAIN)  # second cache entry, proc main (stale in v2)
    write_store(store_v2, path)
    result = ask(server, {"op": "reload"})["result"]
    assert result["cache"] == {"carried": 1, "dropped": 1}
    # the carried entry answers as a cache hit on the new engine (the
    # metrics are shared across the swap, so the counters are cumulative)
    hits_before = server.engine.metrics.query_cache_hits
    env = ask(server, R_ISO)
    assert env["result"] == iso_before
    assert server.engine.metrics.query_cache_hits == hits_before + 1


def test_reload_without_store_path_is_refused(store_v1):
    server = make_server(store_v1)
    env = ask(server, {"op": "reload"})
    assert not env["ok"] and env["error"]["code"] == "reload-failed"
    assert "in-memory" in env["error"]["message"]


def test_reload_accepts_explicit_path(tmp_path, store_v1, store_v3):
    other = str(tmp_path / "other.store.json")
    write_store(store_v3, other)
    server = make_server(store_v1)  # no store_path at all
    env = ask(server, {"op": "reload", "path": other})
    assert env["ok"] and env["result"]["generation"] == 2
    assert ask(server, P_MAIN)["result"]["targets"] == ["y"]


# -- integrity on the reload path -------------------------------------------


def test_reload_rejects_truncated_target_and_keeps_serving(
    tmp_path, store_v1
):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(store_v1, store_path=path)
    payload = json.dumps(store_v1)
    (tmp_path / "hot.store.json").write_text(payload[: len(payload) // 2])
    env = ask(server, {"op": "reload"})
    assert not env["ok"] and env["error"]["code"] == "reload-failed"
    assert "still serving generation 1" in env["error"]["message"]
    assert server.generation == 1 and server.reload_failures == 1
    # the old store keeps answering
    assert ask(server, P_MAIN)["result"]["targets"] == ["x"]


def test_reload_rejects_tampered_target(tmp_path, store_v1, store_v3):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(store_v1, store_path=path)
    doc = json.loads(json.dumps(store_v3))
    doc["program"] = "evil"  # flips bytes without resealing
    (tmp_path / "hot.store.json").write_text(json.dumps(doc))
    env = ask(server, {"op": "reload"})
    assert not env["ok"] and env["error"]["code"] == "reload-failed"
    assert "integrity check failed" in env["error"]["message"]
    assert server.generation == 1
    assert ask(server, P_MAIN)["result"]["targets"] == ["x"]


def test_injected_corrupt_reload_fault(tmp_path, store_v1, store_v3):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(
        store_v1, store_path=path,
        faults=FaultPlan(corrupt_reload_rate=1.0),
    )
    write_store(store_v3, path)  # a perfectly good target
    env = ask(server, {"op": "reload"})
    assert not env["ok"] and env["error"]["code"] == "reload-failed"
    assert "injected corrupt_reload fault" in env["error"]["message"]
    assert server.generation == 1 and server.reload_failures == 1
    assert ask(server, P_MAIN)["result"]["targets"] == ["x"]


# -- the --watch poller -----------------------------------------------------


def test_watch_hot_swaps_on_store_change(tmp_path, store_v1, store_v3):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(store_v1, store_path=path)
    log = io.StringIO()
    server.start_watch(0.05, log=log)
    try:
        time.sleep(0.12)  # poller records the initial signature
        write_store(store_v3, path)
        deadline = time.time() + 10
        while server.generation < 2 and time.time() < deadline:
            time.sleep(0.02)
        assert server.generation == 2
        assert ask(server, P_MAIN)["result"]["targets"] == ["y"]
        assert "repro: reload: generation 2" in log.getvalue()
    finally:
        server.shutting_down.set()
        server._watch_thread.join(5)
    assert not server._watch_thread.is_alive()


def test_watch_requires_store_path(store_v1):
    with pytest.raises(ValueError):
        make_server(store_v1).start_watch(0.05)


# -- overload protection ----------------------------------------------------


def test_in_flight_gate_sheds_with_stable_code(store_v1):
    server = make_server(store_v1, max_in_flight=0,
                         telemetry=TelemetryRegistry())
    code, out = run_stdio(server, [
        json.dumps(dict(P_MAIN, id=1)),
        json.dumps({"op": "ping", "id": 2}),
        json.dumps({"op": "stats", "id": 3}),
    ])
    assert code == 0
    shed, ping, stats = out
    assert not shed["ok"] and shed["status"] == 2
    assert shed["error"]["code"] == "overloaded"
    assert shed["error"]["retry_after_ms"] > 0
    # control ops pass the gate: an overloaded daemon stays probeable
    assert ping["ok"] and stats["ok"]
    block = stats["result"]["server"]
    assert block["sheds"] == 1
    assert block["telemetry"]["counters"]["sheds"] == 1
    assert block["telemetry"]["counters"]["sheds.in_flight"] == 1


def test_token_bucket_sheds_after_burst(store_v1):
    server = make_server(store_v1, rate_limit=0.001, burst=2.0,
                         telemetry=TelemetryRegistry())
    code, out = run_stdio(server, [
        json.dumps(dict(P_MAIN, id=i)) for i in range(4)
    ] + [json.dumps({"op": "ping", "id": "probe"})])
    assert code == 0
    assert [env["ok"] for env in out] == [True, True, False, False, True]
    for env in out[2:4]:
        assert env["error"]["code"] == "overloaded"
        assert env["error"]["retry_after_ms"] > 0
    assert server.sheds == 2


def test_batch_line_pays_its_whole_weight(store_v1):
    server = make_server(store_v1, rate_limit=0.001, burst=2.0)
    batch = [dict(P_MAIN, id=i) for i in range(3)]
    answers = [json.loads(t) for t in server.handle_line(json.dumps(batch))]
    # 3 requests > 2 tokens: the whole line sheds, one envelope each
    assert [env["error"]["code"] for env in answers] == ["overloaded"] * 3
    # the bucket was not drained by the refused batch
    single = ask(server, dict(P_MAIN, id=9))
    assert single["ok"]


def test_non_shed_answers_identical_to_unlimited_server(store_v1):
    """Shedding happens before the engine: whatever gets through is
    byte-identical to an unlimited server's answer."""
    unlimited = make_server(store_v1)
    limited = make_server(store_v1, rate_limit=0.001, burst=1.0)
    line = json.dumps(dict(P_MAIN, id=1))
    assert limited.handle_line(line) == unlimited.handle_line(line)


# -- injected serve faults --------------------------------------------------


def test_slow_fault_stalls_the_line(store_v1):
    server = make_server(
        store_v1, faults=FaultPlan(slow_rate=1.0, slow_ms=40.0)
    )
    t0 = time.perf_counter()
    env = ask(server, dict(P_MAIN, id=1))
    elapsed_ms = (time.perf_counter() - t0) * 1000.0
    assert env["ok"] and env["result"]["targets"] == ["x"]
    assert elapsed_ms >= 40.0
    assert server.fault_slow == 1


def test_fault_verdicts_are_per_line_deterministic(store_v1):
    plan = FaultPlan(seed=7, slow_rate=0.5)
    line_a = json.dumps(dict(P_MAIN, id=1))
    line_b = json.dumps(dict(P_MAIN, id=2))
    assert plan.slow_serve(line_a) == plan.slow_serve(line_a)
    verdicts = {plan.slow_serve(line_a), plan.slow_serve(line_b)}
    # same plan, same line -> same verdict (set may hold either/both)
    assert verdicts <= {True, False}


# -- TCP: idle timeout, injected disconnects, garbage -----------------------


def start_tcp(server):
    addr = {}
    ready = threading.Event()

    def cb(a):
        addr["a"] = a
        ready.set()

    thread = threading.Thread(
        target=server.serve_tcp,
        kwargs=dict(host="127.0.0.1", port=0, ready_cb=cb, log=io.StringIO()),
    )
    thread.start()
    assert ready.wait(10), "server never announced readiness"
    return thread, addr["a"]


def shutdown_tcp(addr):
    with socket.create_connection(addr, timeout=10) as sock:
        fh = sock.makefile("rw", encoding="utf-8")
        fh.write(json.dumps({"op": "shutdown"}) + "\n")
        fh.flush()
        return json.loads(fh.readline())


def _wait_for(predicate, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def test_idle_timeout_releases_connection(store_v1):
    server = make_server(store_v1, idle_timeout=0.3)
    thread, addr = start_tcp(server)
    try:
        with socket.create_connection(addr, timeout=10) as sock:
            fh = sock.makefile("rw", encoding="utf-8")
            fh.write(json.dumps({"op": "ping", "id": 1}) + "\n")
            fh.flush()
            assert json.loads(fh.readline())["ok"]
            # now sit silent: the daemon must hang up, not hang on
            assert fh.readline() == ""
        assert _wait_for(lambda: server.idle_timeouts == 1)
    finally:
        shutdown_tcp(addr)
        thread.join(10)
    assert not thread.is_alive()


def test_injected_disconnect_drops_answer_but_finalizes(store_v1):
    line = json.dumps(dict(P_MAIN, id=1))
    server = make_server(
        store_v1, faults=FaultPlan(disconnect_names=frozenset({line}))
    )
    thread, addr = start_tcp(server)
    try:
        with socket.create_connection(addr, timeout=10) as sock:
            fh = sock.makefile("rw", encoding="utf-8")
            fh.write(line + "\n")
            fh.flush()
            assert fh.readline() == ""  # dropped mid-request
        # the request was processed and finalized regardless — the
        # accounting invariant the chaos gate asserts on
        assert _wait_for(lambda: server.requests_finalized == 1)
        assert server.fault_disconnects == 1
        # the daemon is fine; a fresh connection is answered (the fault
        # is keyed by the exact line text, and this one differs)
        with socket.create_connection(addr, timeout=10) as sock:
            fh = sock.makefile("rw", encoding="utf-8")
            fh.write(json.dumps(dict(P_MAIN, id=2)) + "\n")
            fh.flush()
            assert json.loads(fh.readline())["result"]["targets"] == ["x"]
    finally:
        shutdown_tcp(addr)
        thread.join(10)
    assert not thread.is_alive()


def test_client_vanishing_mid_request_never_crashes(store_v1):
    server = make_server(store_v1, telemetry=TelemetryRegistry())
    thread, addr = start_tcp(server)
    try:
        for i in range(5):
            sock = socket.create_connection(addr, timeout=10)
            fh = sock.makefile("rw", encoding="utf-8")
            fh.write(json.dumps(dict(P_MAIN, id=i)) + "\n")
            fh.flush()
            sock.close()  # gone before the answer
        sock = socket.create_connection(addr, timeout=10)
        fh = sock.makefile("rw", encoding="utf-8")
        fh.write("@@garbage@@\n")
        fh.flush()
        sock.close()
        # every sent line is eventually read and finalized (5 queries
        # + 1 garbage line), and the daemon still answers
        assert _wait_for(lambda: server.requests_finalized == 6)
        with socket.create_connection(addr, timeout=10) as sock:
            fh = sock.makefile("rw", encoding="utf-8")
            fh.write(json.dumps({"op": "health", "id": "z"}) + "\n")
            fh.flush()
            env = json.loads(fh.readline())
            assert env["ok"] and env["result"]["healthy"]
    finally:
        shutdown_tcp(addr)
        thread.join(10)
    assert not thread.is_alive()


# -- generation in admin answers --------------------------------------------


def test_stats_and_health_carry_generation(tmp_path, store_v1, store_v3):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = make_server(store_v1, store_path=path)
    assert ask(server, {"op": "health"})["result"]["generation"] == 1
    write_store(store_v3, path)
    ask(server, {"op": "reload"})
    stats = ask(server, {"op": "stats"})["result"]["server"]
    assert stats["generation"] == 2
    assert stats["reloads"] == 1 and stats["reload_failures"] == 0
    assert ask(server, {"op": "health"})["result"]["generation"] == 2
