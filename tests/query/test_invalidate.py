"""Staleness detection: IR digests and the minimal recomputation set.

The headline property (the PR's incrementality acceptance check) is the
two-unit test below: edit one procedure and only that procedure plus its
transitive call-graph *callers* go stale — and re-analysis proves the
clean procedures really did keep their solution digests.
"""

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.frontend.parser import load_project_files
from repro.memory.pointsto import reset_interning
from repro.query import (
    build_store,
    compute_stale,
    compute_stale_between_stores,
    procedure_ir_digest,
    program_ir_digests,
)

UNIT_A = """
int g;
void leaf(int *p) { g = *p; }
void mid(int *p) { leaf(p); }
"""

UNIT_B = """
void mid(int *p);
void top(int *p) { mid(p); }
int main(void) { int x; top(&x); return 0; }
"""

# leaf's body changed: it now writes through the pointer twice
UNIT_A_EDITED = """
int g;
void leaf(int *p) { g = *p; g = *p + 1; }
void mid(int *p) { leaf(p); }
"""


def _program(tmp_path, unit_a: str, unit_b: str = UNIT_B, tag: str = ""):
    tmp_path.mkdir(parents=True, exist_ok=True)
    a = tmp_path / f"a{tag}.c"
    b = tmp_path / f"b{tag}.c"
    a.write_text(unit_a)
    b.write_text(unit_b)
    # keep the file *names* identical across the edit by using separate
    # directories per variant instead (names feed nothing hashed, but
    # being strict here keeps the test honest)
    return load_project_files([str(a), str(b)])


def _analyze(program):
    from repro.analysis.results import run_analysis

    reset_interning()
    return run_analysis(program, AnalyzerOptions())


# -- digest stability -------------------------------------------------------


def test_digest_deterministic_across_processes_worth_of_runs(tmp_path):
    p1 = _program(tmp_path / "r1", UNIT_A)
    p2 = _program(tmp_path / "r2", UNIT_A)
    assert program_ir_digests(p1) == program_ir_digests(p2)


def test_line_shift_does_not_dirty_siblings(tmp_path):
    """Source coordinates are excluded: adding a comment block above
    every procedure must not move any digest."""
    shifted = "\n\n/* a\n   very\n   long\n   comment */\n\n" + UNIT_A
    d1 = program_ir_digests(_program(tmp_path / "r1", UNIT_A))
    d2 = program_ir_digests(_program(tmp_path / "r2", shifted))
    assert d1["procedures"] == d2["procedures"]


def test_new_string_literal_does_not_renumber_other_units(tmp_path):
    """String literals hash by text, not by their program-wide ``<strN>``
    interning index — a new literal in unit A must not dirty unit B's
    procedures."""
    with_str = UNIT_A.replace(
        "void mid(int *p) { leaf(p); }",
        'char *s1 = "alpha";\nvoid mid(int *p) { leaf(p); }',
    )
    p1 = _program(tmp_path / "r1", UNIT_A)
    p2 = _program(tmp_path / "r2", with_str)
    d1 = program_ir_digests(p1)["procedures"]
    d2 = program_ir_digests(p2)["procedures"]
    for proc in ("top", "main"):  # unit B's procedures
        assert d1[proc] == d2[proc], proc


def test_editing_one_proc_moves_only_its_digest(tmp_path):
    d1 = program_ir_digests(_program(tmp_path / "r1", UNIT_A))["procedures"]
    d2 = program_ir_digests(
        _program(tmp_path / "r2", UNIT_A_EDITED)
    )["procedures"]
    assert d1["leaf"] != d2["leaf"]
    for name in ("mid", "top", "main"):
        assert d1[name] == d2[name], name


def test_procedure_digest_covers_structure(tmp_path):
    p1 = _program(tmp_path / "r1", UNIT_A)
    p2 = _program(
        tmp_path / "r2", UNIT_A.replace("leaf(p);", "if (*p) leaf(p);")
    )
    assert procedure_ir_digest(
        p1.procedures["mid"], p1
    ) != procedure_ir_digest(p2.procedures["mid"], p2)


# -- the incrementality property (acceptance) -------------------------------


def test_two_unit_edit_marks_only_proc_and_dependents_stale(tmp_path):
    """Edit ``leaf`` in unit A: the stale set is exactly ``leaf`` plus
    its transitive callers (``mid``, ``top``, ``main``) minus nothing —
    and since *everything* here transitively calls leaf, also check the
    complementary program where a pure sibling stays clean."""
    program = _program(tmp_path / "orig", UNIT_A)
    result = _analyze(program)
    store = build_store(result, program_name="two-unit")

    edited = _program(tmp_path / "edit", UNIT_A_EDITED)
    report = compute_stale(store, edited)
    assert not report.up_to_date
    assert report.changed == ["leaf"]
    assert report.added == [] and report.removed == []
    # dependents: every transitive caller of leaf, through the *stored*
    # call graph
    assert report.dependents == ["main", "mid", "top"]
    assert report.stale == ["leaf", "main", "mid", "top"]
    assert report.clean == []
    assert not report.globals_changed


def test_unrelated_procedure_stays_clean_with_matching_solution(tmp_path):
    """A procedure outside the edited one's caller chain is *clean* —
    and its per-procedure solution digest is bit-identical when the
    edited program is re-analyzed (the proof that skipping it is
    sound)."""
    unit_b = UNIT_B + "\nint lonely(int *q) { return *q; }\n"
    program = _program(tmp_path / "orig", UNIT_A, unit_b)
    result = _analyze(program)
    store = build_store(result, program_name="two-unit")

    edited = _program(tmp_path / "edit", UNIT_A_EDITED, unit_b)
    report = compute_stale(store, edited)
    assert "lonely" in report.clean
    assert "lonely" not in report.stale

    # re-analyze the edited program: the clean procedure's solution
    # digest must not have moved (stale ones may)
    result2 = _analyze(edited)
    from repro.diagnostics.snapshot import build_snapshot

    old_digests = store["snapshot"]["digest"]["procedures"]
    new_digests = build_snapshot(
        result2, program_name="two-unit", include_solution=True
    )["digest"]["procedures"]
    assert old_digests["lonely"] == new_digests["lonely"]


def test_up_to_date_on_identical_sources(tmp_path):
    program = _program(tmp_path / "orig", UNIT_A)
    result = _analyze(program)
    store = build_store(result, program_name="two-unit")
    again = _program(tmp_path / "again", UNIT_A)
    report = compute_stale(store, again)
    assert report.up_to_date
    assert report.summary_lines() == [
        "store is up to date (all procedure digests match)"
    ]


def test_added_procedure_invalidates_its_callers(tmp_path):
    program = _program(tmp_path / "orig", UNIT_A)
    result = _analyze(program)
    store = build_store(result, program_name="two-unit")
    grown = UNIT_A.replace(
        "void mid(int *p) { leaf(p); }",
        "void extra(int *p) { *p = 1; }\n"
        "void mid(int *p) { leaf(p); extra(p); }",
    )
    edited = _program(tmp_path / "edit", grown)
    report = compute_stale(store, edited)
    assert report.added == ["extra"]
    assert "mid" in report.changed  # its body changed too
    assert "extra" in report.stale
    # mid's callers invalidate through the stored graph
    assert {"top", "main"} <= set(report.stale)


def test_removed_procedure_invalidates_former_callers(tmp_path):
    program = _program(tmp_path / "orig", UNIT_A)
    result = _analyze(program)
    store = build_store(result, program_name="two-unit")
    shrunk = UNIT_A.replace("void mid(int *p) { leaf(p); }",
                            "void mid(int *p) { (void)p; }")
    shrunk = shrunk.replace("void leaf(int *p) { g = *p; }", "")
    edited = _program(tmp_path / "edit", shrunk)
    report = compute_stale(store, edited)
    assert report.removed == ["leaf"]
    assert "mid" in report.stale
    assert not report.up_to_date


def test_global_environment_change_invalidates_everything(tmp_path):
    program = _program(tmp_path / "orig", UNIT_A)
    result = _analyze(program)
    store = build_store(result, program_name="two-unit")
    edited = _program(tmp_path / "edit", UNIT_A.replace("int g;", "int g, h;"))
    report = compute_stale(store, edited)
    assert report.globals_changed
    assert report.stale == sorted(edited.procedures)
    assert report.clean == []


def test_report_dict_round_trip(tmp_path):
    program = _program(tmp_path / "orig", UNIT_A)
    result = _analyze(program)
    store = build_store(result, program_name="two-unit")
    report = compute_stale(store, _program(tmp_path / "edit", UNIT_A_EDITED))
    d = report.as_dict()
    assert d["up_to_date"] is False
    assert d["changed"] == ["leaf"]
    assert set(d) == {"up_to_date", "changed", "added", "removed",
                      "dependents", "globals_changed", "stale", "clean"}


# -- store-to-store staleness (the hot-swap cache carryover) -----------------


def _store_for(tmp_path, unit_a: str, unit_b: str = UNIT_B):
    result = _analyze(_program(tmp_path, unit_a, unit_b))
    return build_store(result, program_name="two-unit")


def test_identical_stores_are_up_to_date(tmp_path):
    old = _store_for(tmp_path / "r1", UNIT_A)
    new = _store_for(tmp_path / "r2", UNIT_A)
    report = compute_stale_between_stores(old, new)
    assert report.up_to_date
    assert report.clean == sorted(new["ir"]["procedures"])


def test_between_stores_matches_compute_stale(tmp_path):
    """The recorded-digest comparison agrees with the live one: editing
    ``leaf`` marks it and its transitive callers stale, nothing else."""
    unit_b = UNIT_B + "\nint lonely(int *q) { return *q; }\n"
    old = _store_for(tmp_path / "orig", UNIT_A, unit_b)
    new = _store_for(tmp_path / "edit", UNIT_A_EDITED, unit_b)
    report = compute_stale_between_stores(old, new)
    assert report.changed == ["leaf"]
    assert report.stale == ["leaf", "main", "mid", "top"]
    assert report.clean == ["lonely"]
    assert not report.globals_changed


def test_between_stores_globals_change_dirties_everything(tmp_path):
    old = _store_for(tmp_path / "orig", UNIT_A)
    new = _store_for(
        tmp_path / "edit", UNIT_A.replace("int g;", "int g, h;")
    )
    report = compute_stale_between_stores(old, new)
    assert report.globals_changed
    assert report.stale == sorted(new["ir"]["procedures"])
    assert report.clean == []


def test_between_stores_missing_globals_digest_is_conservative(tmp_path):
    """A store from before the globals digest was recorded cannot prove
    anything clean — everything goes stale rather than risking a wrong
    cache carryover."""
    old = _store_for(tmp_path / "r1", UNIT_A)
    new = _store_for(tmp_path / "r2", UNIT_A)
    old["ir"].pop("globals", None)
    report = compute_stale_between_stores(old, new)
    assert report.globals_changed
    assert report.clean == []


def test_between_stores_added_and_removed(tmp_path):
    grown = UNIT_A.replace(
        "void mid(int *p) { leaf(p); }",
        "void extra(int *p) { *p = 1; }\n"
        "void mid(int *p) { leaf(p); extra(p); }",
    )
    old = _store_for(tmp_path / "orig", UNIT_A)
    new = _store_for(tmp_path / "edit", grown)
    forward = compute_stale_between_stores(old, new)
    assert forward.added == ["extra"]
    backward = compute_stale_between_stores(new, old)
    assert backward.removed == ["extra"]
