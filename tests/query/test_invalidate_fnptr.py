"""Function-pointer retargeting must widen the stale set (ISSUE 6).

The under-invalidation hole: ``compute_stale`` propagates staleness
through the *stored* (pre-edit) call graph.  An edit that retargets a
function pointer creates an indirect call edge that exists only in the
post-edit world — the stored graph cannot name it, so the procedure
containing the indirect call site would stay "clean" while its stored
facts (resolved callees, summarized side effects) are wrong for the new
sources.  The widening rule: a changed/added procedure that is
address-taken (before or after the edit), or any movement of the
address-taken set, forces every indirect-call-containing procedure
stale.
"""

from repro import AnalyzerOptions
from repro.analysis.results import run_analysis
from repro.frontend.parser import load_project_files
from repro.memory.pointsto import reset_interning
from repro.query import build_store, compute_stale

# Unit A: the two candidate targets.
UNIT_A = """
int g;
void f(int *p) { g = *p; }
void h(int *p) { g = *p + 1; }
"""

# h's body changed structurally (the retargeted callee is also edited,
# as in a real retargeting change: the new target gains real behavior);
# a constant-only tweak would not move the lowered-IR digest, since the
# pointer IR abstracts integer values away
UNIT_A_EDITED = """
int g;
void f(int *p) { g = *p; }
void h(int *p) { if (*p) g = *p; g = *p + 2; }
"""

# Unit B: dispatch calls through the pointer; main picks the target.
UNIT_B = """
void f(int *p);
void h(int *p);
void dispatch(void (*fp)(int *), int *p) { fp(p); }
int main(void) { int x; dispatch(f, &x); return 0; }
"""

# the retargeting edit: main now passes h where it passed f
UNIT_B_EDITED = """
void f(int *p);
void h(int *p);
void dispatch(void (*fp)(int *), int *p) { fp(p); }
int main(void) { int x; dispatch(h, &x); return 0; }
"""

# control edit: a change with no function-pointer involvement at all
UNIT_B_LEAF_EDIT = """
void f(int *p);
void h(int *p);
void dispatch(void (*fp)(int *), int *p) { fp(p); }
void leaf(void) { }
int main(void) { int x; leaf(); dispatch(f, &x); return 0; }
"""


def _program(tmp_path, unit_a: str, unit_b: str):
    tmp_path.mkdir(parents=True, exist_ok=True)
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text(unit_a)
    b.write_text(unit_b)
    return load_project_files([str(a), str(b)])


def _store(tmp_path):
    program = _program(tmp_path, UNIT_A, UNIT_B)
    reset_interning()
    result = run_analysis(program, AnalyzerOptions())
    return build_store(result, program_name="fnptr")


def test_store_records_address_taken_and_indirect_callers(tmp_path):
    store = _store(tmp_path / "orig")
    assert store["ir"]["address_taken"] == ["f"]
    assert store["ir"]["indirect_callers"] == ["dispatch"]


def test_retargeting_edit_widens_to_indirect_callers(tmp_path):
    """The two-unit regression from the ISSUE: main retargets the
    pointer from f to h (and h's body changes).  The stored call graph
    has no dispatch -> h edge, yet dispatch's stored facts are wrong for
    the new sources — the widening must mark it stale."""
    store = _store(tmp_path / "orig")
    # precondition for the regression to be meaningful: the stored graph
    # really has no edge from dispatch to h
    assert "h" not in store["call_graph"].get("dispatch", [])

    edited = _program(tmp_path / "edit", UNIT_A_EDITED, UNIT_B_EDITED)
    report = compute_stale(store, edited)
    assert not report.up_to_date
    assert set(report.changed) == {"h", "main"}
    # the widening: dispatch (the indirect-call-site owner) is stale even
    # though no stored call edge connects it to any changed procedure
    assert "dispatch" in report.stale
    assert "dispatch" in report.dependents
    # f itself did not change and is nobody's caller: stays clean
    assert "f" in report.clean


def test_retarget_only_edit_still_widens(tmp_path):
    """Even when only the *caller* changes (h's body untouched), the
    address-taken set moves (f-only -> h-only), so the indirect caller
    goes stale — its resolved targets are no longer trustworthy."""
    store = _store(tmp_path / "orig")
    edited = _program(tmp_path / "edit", UNIT_A, UNIT_B_EDITED)
    report = compute_stale(store, edited)
    assert report.changed == ["main"]
    assert "dispatch" in report.stale


def test_unrelated_edit_does_not_widen(tmp_path):
    """Control: an edit with no address-taken involvement (a new leaf
    procedure called directly) must not drag the indirect caller into
    the stale set — widening is targeted, not a sledgehammer."""
    store = _store(tmp_path / "orig")
    edited = _program(tmp_path / "edit", UNIT_A, UNIT_B_LEAF_EDIT)
    report = compute_stale(store, edited)
    assert report.added == ["leaf"]
    assert "main" in report.stale  # leaf's direct caller
    assert "dispatch" in report.clean
    assert "f" in report.clean and "h" in report.clean


def test_old_store_without_record_falls_back_conservatively(tmp_path):
    """Stores written before ``address_taken`` existed must still widen:
    both sides are recomputed from the new program."""
    store = _store(tmp_path / "orig")
    del store["ir"]["address_taken"]
    del store["ir"]["indirect_callers"]
    edited = _program(tmp_path / "edit", UNIT_A_EDITED, UNIT_B_EDITED)
    report = compute_stale(store, edited)
    assert "dispatch" in report.stale
