"""Regression tests for the sparse lookup memoization layer.

These pin down the tentpole invariants:

* the caches are pure memoization — cached and uncached sparse states give
  identical answers over identical operation sequences,
* ``lookup_overlapping`` normalizes its result exactly like the dense
  representation (values recorded before their base parameter was subsumed
  must not leak through),
* a wide read is *not* fenced by a narrower strong update (the kill-size
  fix), matching the dense per-key kill semantics,
* ``DenseState.set_initial`` only bumps ``change_counter`` when the
  initial values actually change,
* write invalidation is per base block — a def for one base must not
  disturb memoized answers for another base, while still invalidating its
  own.
"""

import pytest

from repro.diagnostics.metrics import Metrics
from repro.memory.blocks import ExtendedParameter, LocalBlock
from repro.memory.locset import LocationSet
from repro.memory.pointsto import DenseState, SparseState

from .test_pointsto import diamond_graph, linear_graph, loc


def _sparse_pair(entry):
    """A cached and an uncached sparse state over the same graph."""
    return SparseState(entry, lookup_cache=True), SparseState(
        entry, lookup_cache=False
    )


class TestCachedEqualsUncached:
    def test_linear_scripted_sequence(self):
        entry, nodes, exit_ = linear_graph(6)
        cached, plain = _sparse_pair(entry)
        block = LocalBlock("p", "fake")
        l = LocationSet(block, 0, 0)
        l4 = LocationSet(block, 4, 0)
        whole = LocationSet(block, 0, 1)
        script = [
            ("set_initial", l, frozenset({loc("init")})),
            ("assign", whole, frozenset({loc("old")}), nodes[0], False),
            ("assign", l, frozenset({loc("a")}), nodes[1], True),
            ("assign", l4, frozenset({loc("b")}), nodes[2], True),
            ("assign", l, frozenset({loc("c")}), nodes[3], False),
        ]
        for st in (cached, plain):
            for op in script:
                if op[0] == "set_initial":
                    st.set_initial(op[1], op[2])
                else:
                    st.assign(op[1], op[2], op[3], strong=op[4])
        for node in [*nodes, exit_]:
            for probe in (l, l4, whole):
                for before in (True, False):
                    assert cached.lookup(probe, node, before=before) == plain.lookup(
                        probe, node, before=before
                    )
                    for width in (1, 4, 8):
                        assert cached.lookup_overlapping(
                            probe, node, width=width, before=before
                        ) == plain.lookup_overlapping(
                            probe, node, width=width, before=before
                        )
        assert cached.summary(exit_) == plain.summary(exit_)

    def test_interleaved_lookups_and_writes(self):
        # lookups *between* writes exercise invalidation, not just warmup
        entry, nodes, exit_ = linear_graph(5)
        cached, plain = _sparse_pair(entry)
        l = loc("q")
        v1, v2, v3 = frozenset({loc("v1")}), frozenset({loc("v2")}), frozenset(
            {loc("v3")}
        )
        for st in (cached, plain):
            st.assign(l, v1, nodes[0], strong=True)
        assert cached.lookup(l, exit_) == plain.lookup(l, exit_)
        for st in (cached, plain):
            st.assign(l, v2, nodes[2], strong=True)
        assert cached.lookup(l, exit_) == plain.lookup(l, exit_)
        assert cached.lookup(l, nodes[1]) == plain.lookup(l, nodes[1])
        for st in (cached, plain):
            st.assign(l, v3, nodes[4], strong=False)
        for node in [*nodes, exit_]:
            assert cached.lookup(l, node, before=False) == plain.lookup(
                l, node, before=False
            )

    def test_diamond_with_phi(self):
        entry, branch, left, right, meet, exit_ = diamond_graph()
        cached, plain = _sparse_pair(entry)
        l = loc("p")
        va, vb = frozenset({loc("a")}), frozenset({loc("b")})
        for st in (cached, plain):
            st.assign(l, va, left, strong=True)
            st.assign(l, vb, right, strong=True)
            merged = st.lookup(l, left, before=False) | st.lookup(
                l, right, before=False
            )
            st.assign_phi(l, merged, meet)
        assert cached.lookup(l, exit_) == plain.lookup(l, exit_)
        assert cached.summary(exit_) == plain.summary(exit_)


class TestOverlapNormalization:
    def test_overlap_result_follows_subsumption(self):
        """Values whose base was later subsumed must come out renormalized
        from lookup_overlapping — on both representations, identically."""
        entry, nodes, exit_ = linear_graph(3)
        dense = DenseState(entry)
        sparse = SparseState(entry)
        p1 = ExtendedParameter("1_p", "f")
        target = LocationSet(p1, 0, 0)
        l = loc("q")
        dense.merge_at(nodes[0], set())
        for st in (dense, sparse):
            st.assign(l, frozenset({target}), nodes[0], strong=True)
        # subsume p1 after the value was recorded
        p2 = ExtendedParameter("2_p", "f")
        p1.subsumed_by = p2
        sparse.mark_changed()
        dense.merge_at(nodes[1], {nodes[0].uid})
        want = frozenset({LocationSet(p2, 0, 0)})
        got_dense = dense.lookup_overlapping(l, nodes[1], width=4)
        got_sparse = sparse.lookup_overlapping(l, nodes[1], width=4)
        assert got_dense == want
        assert got_sparse == want

    def test_overlap_subsumption_without_notification(self):
        """Direct ``subsumed_by`` assignment (no mark_changed) must still be
        observed via the global subsumption epoch."""
        entry, nodes, exit_ = linear_graph(3)
        sparse = SparseState(entry)
        p1 = ExtendedParameter("1_p", "f")
        l = loc("q")
        sparse.assign(l, frozenset({LocationSet(p1, 0, 0)}), nodes[0], strong=True)
        # warm the cache with the pre-subsumption value
        assert sparse.lookup_overlapping(l, nodes[1], width=4) == frozenset(
            {LocationSet(p1, 0, 0)}
        )
        p2 = ExtendedParameter("2_p", "f")
        p1.subsumed_by = p2
        assert sparse.lookup_overlapping(l, nodes[1], width=4) == frozenset(
            {LocationSet(p2, 0, 0)}
        )


class TestWideReadPastNarrowStrongUpdate:
    @pytest.mark.parametrize("cache", [True, False])
    def test_narrow_strong_update_does_not_fence_wide_read(self, cache):
        """A 4-byte strong update must not hide the history of bytes 4..7
        from an 8-byte read at the same offset."""
        entry, nodes, exit_ = linear_graph(3)
        st = SparseState(entry, lookup_cache=cache)
        block = LocalBlock("s", "fake", size=8)
        word0 = LocationSet(block, 0, 0)
        whole = LocationSet(block, 0, 1)
        old, new = loc("old"), loc("new")
        st.assign(whole, frozenset({old}), nodes[0], strong=False)
        st.assign(word0, frozenset({new}), nodes[1], strong=True, size=4)
        # 4-byte read: fully covered by the strong update -> new only
        assert st.lookup_overlapping(word0, nodes[2], width=4) == frozenset({new})
        # 8-byte read: bytes 4..7 were not overwritten -> old survives
        got = st.lookup_overlapping(word0, nodes[2], width=8)
        assert got == frozenset({new, old})

    @pytest.mark.parametrize("cache", [True, False])
    def test_strong_update_fences_read_at_its_own_node(self, cache):
        """A ``before=False`` read at the strong update's own node is an
        *inclusive* read: the covering strong def at the node itself must
        fence the history of the other overlapping keys."""
        entry, nodes, exit_ = linear_graph(3)
        st = SparseState(entry, lookup_cache=cache)
        block = LocalBlock("s", "fake", size=8)
        word0 = LocationSet(block, 0, 0)
        whole = LocationSet(block, 0, 1)
        old, new = loc("old"), loc("new")
        st.assign(whole, frozenset({old}), nodes[0], strong=False)
        st.assign(word0, frozenset({new}), nodes[1], strong=True, size=4)
        # before the node executes the strong update is not visible yet
        assert st.lookup_overlapping(word0, nodes[1], width=4, before=True) == (
            frozenset({old})
        )
        # after it executes, the write at this very node is the fence
        assert st.lookup_overlapping(word0, nodes[1], width=4, before=False) == (
            frozenset({new})
        )

    def test_matches_dense_semantics(self):
        entry, nodes, exit_ = linear_graph(3)
        dense = DenseState(entry)
        sparse = SparseState(entry)
        block = LocalBlock("s", "fake", size=8)
        word0 = LocationSet(block, 0, 0)
        word4 = LocationSet(block, 4, 0)
        old, new = loc("old"), loc("new")
        dense.merge_at(nodes[0], set())
        for st in (dense, sparse):
            st.assign(word4, frozenset({old}), nodes[0], strong=True, size=4)
        dense.merge_at(nodes[1], {nodes[0].uid})
        for st in (dense, sparse):
            st.assign(word0, frozenset({new}), nodes[1], strong=True, size=4)
        dense.merge_at(nodes[2], {nodes[0].uid, nodes[1].uid})
        for width in (1, 4, 8):
            assert dense.lookup_overlapping(
                word0, nodes[2], width=width
            ) == sparse.lookup_overlapping(word0, nodes[2], width=width)


class TestDenseSetInitialCounter:
    def test_repeat_set_initial_is_stable(self):
        entry, nodes, exit_ = linear_graph(2)
        st = DenseState(entry)
        l, v = loc(), frozenset({loc("t")})
        st.set_initial(l, v)
        first = st.change_counter
        st.set_initial(l, v)  # identical values: no change
        assert st.change_counter == first
        st.set_initial(l, frozenset())  # subset: still no change
        assert st.change_counter == first
        st.set_initial(l, v | frozenset({loc("u")}))  # genuinely new
        assert st.change_counter > first

    def test_sparse_counterpart_also_stable(self):
        entry, nodes, exit_ = linear_graph(2)
        st = SparseState(entry)
        l, v = loc(), frozenset({loc("t")})
        st.set_initial(l, v)
        first = st.change_counter
        st.set_initial(l, v)
        assert st.change_counter == first


class TestPerBaseInvalidation:
    def test_write_to_other_base_keeps_partition(self):
        entry, nodes, exit_ = linear_graph(4)
        metrics = Metrics()
        st = SparseState(entry, metrics=metrics)
        la, lb = loc("a"), loc("b")
        vb2 = frozenset({loc("vb2")})
        st.assign(la, frozenset({loc("va")}), nodes[0], strong=True)
        st.assign(lb, frozenset({loc("vb")}), nodes[0], strong=True)
        st.lookup(la, nodes[3])  # warm a's partition
        hits_before = metrics.cache_hits
        st.lookup(la, nodes[3])
        assert metrics.cache_hits == hits_before + 1
        # write to b: a's memoized walk must survive ...
        st.assign(lb, vb2, nodes[2], strong=True)
        hits_before = metrics.cache_hits
        st.lookup(la, nodes[3])
        assert metrics.cache_hits == hits_before + 1
        # ... and b's must not: the fresh def has to be visible
        assert st.lookup(lb, nodes[3]) == vb2

    def test_invalidated_base_sees_new_value(self):
        entry, nodes, exit_ = linear_graph(4)
        st = SparseState(entry)
        l = loc("p")
        v1, v2 = frozenset({loc("v1")}), frozenset({loc("v2")})
        st.assign(l, v1, nodes[0], strong=True)
        assert st.lookup(l, nodes[3]) == v1
        st.assign(l, v2, nodes[1], strong=True)
        assert st.lookup(l, nodes[3]) == v2


class TestMetricsCounting:
    def test_hits_and_misses_counted(self):
        entry, nodes, exit_ = linear_graph(3)
        metrics = Metrics()
        st = SparseState(entry, metrics=metrics)
        l = loc("p")
        st.assign(l, frozenset({loc("v")}), nodes[0], strong=True)
        st.lookup(l, nodes[2])
        assert metrics.cache_misses > 0
        misses = metrics.cache_misses
        st.lookup(l, nodes[2])
        assert metrics.cache_hits >= 1
        assert metrics.cache_misses == misses
        assert 0.0 < metrics.cache_hit_rate() < 1.0

    def test_disabled_cache_counts_nothing(self):
        entry, nodes, exit_ = linear_graph(3)
        metrics = Metrics()
        st = SparseState(entry, lookup_cache=False, metrics=metrics)
        l = loc("p")
        st.assign(l, frozenset({loc("v")}), nodes[0], strong=True)
        st.lookup(l, nodes[2])
        st.lookup(l, nodes[2])
        assert metrics.cache_hits == 0 and metrics.cache_misses == 0
        assert metrics.dom_walk_steps > 0
        assert metrics.cache_hit_rate() == 0.0
