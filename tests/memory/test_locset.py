"""Tests for location sets (§3.1) — including the Table 1 semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.blocks import LocalBlock, HeapBlock
from repro.memory.locset import LocationSet, merge_locations, ranges_overlap_mod


def block(name="b"):
    return LocalBlock(name, "p")


class TestNormalization:
    def test_plain_scalar(self):
        ls = LocationSet(block(), 0, 0)
        assert (ls.offset, ls.stride) == (0, 0)

    def test_offset_mod_stride(self):
        # array nested in struct: offset reduced modulo stride (§3.1)
        ls = LocationSet(block(), 6, 4)
        assert (ls.offset, ls.stride) == (2, 4)

    def test_offset_equal_stride_wraps(self):
        ls = LocationSet(block(), 4, 4)
        assert ls.offset == 0

    def test_negative_offset_with_stride_wraps(self):
        ls = LocationSet(block(), -1, 4)
        assert ls.offset == 3

    def test_negative_offset_no_stride_kept(self):
        # Figure 7: pointers before an extended parameter
        ls = LocationSet(block(), -8, 0)
        assert ls.offset == -8

    def test_negative_stride_rejected(self):
        with pytest.raises(ValueError):
            LocationSet(block(), 0, -4)


class TestDerivedSets:
    def test_with_offset(self):
        b = block()
        assert LocationSet(b, 4, 0).with_offset(4).offset == 8

    def test_with_offset_strided_wraps(self):
        b = block()
        assert LocationSet(b, 0, 8).with_offset(12).offset == 4

    def test_with_stride_gcd(self):
        b = block()
        ls = LocationSet(b, 0, 8).with_stride(12)
        assert ls.stride == 4

    def test_with_stride_zero_is_identity(self):
        b = block()
        ls = LocationSet(b, 4, 8)
        assert ls.with_stride(0) == ls

    def test_blurred_covers_block(self):
        ls = LocationSet(block(), 12, 8).blurred()
        assert ls.offset == 0 and ls.stride == 1
        assert ls.is_whole_block


class TestContains:
    def test_scalar_contains_only_offset(self):
        ls = LocationSet(block(), 8, 0)
        assert ls.contains(8)
        assert not ls.contains(4)

    def test_strided_positions(self):
        ls = LocationSet(block(), 2, 4)
        assert ls.contains(2) and ls.contains(6) and ls.contains(10)
        assert not ls.contains(4)

    def test_positions_enumeration(self):
        ls = LocationSet(block(), 1, 4)
        assert list(ls.positions(3)) == [1, 5, 9]


class TestUniqueness:
    def test_local_scalar_unique(self):
        assert LocationSet(block(), 0, 0).is_unique

    def test_strided_never_unique(self):
        assert not LocationSet(block(), 0, 4).is_unique

    def test_heap_never_unique(self):
        assert not LocationSet(HeapBlock("site"), 0, 0).is_unique


class TestOverlap:
    def test_same_scalar(self):
        b = block()
        assert LocationSet(b, 0, 0).overlaps(LocationSet(b, 0, 0))

    def test_distinct_scalars(self):
        b = block()
        assert not LocationSet(b, 0, 0).overlaps(LocationSet(b, 4, 0))

    def test_different_blocks_never_overlap(self):
        assert not LocationSet(block("a"), 0, 0).overlaps(LocationSet(block("b"), 0, 0))

    def test_word_read_sees_interior_byte(self):
        b = block()
        # 4-byte access at 0 touches the byte at 2
        assert LocationSet(b, 0, 0).overlaps(LocationSet(b, 2, 0), width=4)
        assert not LocationSet(b, 0, 0).overlaps(LocationSet(b, 2, 0), width=2)

    def test_strided_vs_scalar_hit(self):
        b = block()
        arr = LocationSet(b, 0, 8)
        assert arr.overlaps(LocationSet(b, 16, 0))
        assert not arr.overlaps(LocationSet(b, 4, 0))

    def test_strided_vs_strided_gcd(self):
        b = block()
        a = LocationSet(b, 0, 6)
        c = LocationSet(b, 3, 6)
        assert not a.overlaps(c)
        assert a.overlaps(LocationSet(b, 0, 4))  # gcd 2, both even offsets

    def test_whole_block_overlaps_everything(self):
        b = block()
        whole = LocationSet(b, 0, 1)
        assert whole.overlaps(LocationSet(b, 1234, 0))
        assert whole.overlaps(LocationSet(b, 3, 8))

    def test_width_spans_stride_gap(self):
        b = block()
        a = LocationSet(b, 0, 8)
        c = LocationSet(b, 4, 8)
        assert not a.overlaps(c)
        assert a.overlaps(c, width=5)  # 5-byte access reaches offset 4

    def test_negative_offset_overlap(self):
        b = block()
        assert LocationSet(b, -8, 0).overlaps(LocationSet(b, -8, 0))
        assert not LocationSet(b, -8, 0).overlaps(LocationSet(b, 0, 0))


class TestRangesOverlapMod:
    def test_both_fixed(self):
        assert ranges_overlap_mod(0, 0, 4, 2, 0, 1)
        assert not ranges_overlap_mod(0, 0, 2, 2, 0, 1)

    def test_zero_width_never(self):
        assert not ranges_overlap_mod(0, 0, 0, 0, 0, 4)

    def test_symmetry(self):
        for args in [(0, 8, 4, 4, 0, 4), (1, 6, 2, 3, 4, 2), (0, 0, 4, 2, 8, 2)]:
            o1, s1, w1, o2, s2, w2 = args
            assert ranges_overlap_mod(o1, s1, w1, o2, s2, w2) == ranges_overlap_mod(
                o2, s2, w2, o1, s1, w1
            )

    @given(
        o1=st.integers(-64, 64),
        s1=st.sampled_from([0, 1, 2, 4, 8, 12]),
        w1=st.integers(1, 16),
        o2=st.integers(-64, 64),
        s2=st.sampled_from([0, 1, 2, 4, 8, 12]),
        w2=st.integers(1, 16),
    )
    @settings(max_examples=300)
    def test_matches_bruteforce(self, o1, s1, w1, o2, s2, w2):
        """The modular overlap test agrees with explicit enumeration."""

        def positions(o, s):
            if s == 0:
                return [o]
            # wide enough that every position within the offset/width
            # envelope (|o| <= 64, w <= 16) is enumerated for any stride
            return [o + i * s for i in range(-200, 201)]

        brute = any(
            p1 < p2 + w2 and p2 < p1 + w1
            for p1 in positions(o1, s1)
            for p2 in positions(o2, s2)
        )
        assert ranges_overlap_mod(o1, s1, w1, o2, s2, w2) == brute


class TestMergeLocations:
    def test_dedup(self):
        b = block()
        out = merge_locations([LocationSet(b, 0, 0), LocationSet(b, 0, 0)])
        assert len(out) == 1

    def test_whole_block_subsumes(self):
        b = block()
        out = merge_locations([LocationSet(b, 0, 1), LocationSet(b, 8, 0)])
        assert out == [LocationSet(b, 0, 1)]

    def test_distinct_blocks_kept(self):
        out = merge_locations([LocationSet(block("a"), 0, 0), LocationSet(block("b"), 0, 0)])
        assert len(out) == 2


class TestHashing:
    def test_equal_sets_hash_equal(self):
        b = block()
        assert hash(LocationSet(b, 4, 0)) == hash(LocationSet(b, 4, 0))

    def test_usable_in_sets(self):
        b = block()
        s = {LocationSet(b, 0, 0), LocationSet(b, 0, 0), LocationSet(b, 4, 0)}
        assert len(s) == 2

    def test_str_format(self):
        b = block("buf")
        assert str(LocationSet(b, 4, 0)) == "(buf, 4)"
        assert str(LocationSet(b, 0, 8)) == "(buf, 0, 8)"
