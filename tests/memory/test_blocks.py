"""Tests for memory blocks (§3, §4.1 uniqueness rules)."""

from repro.memory.blocks import (
    ExtendedParameter,
    GlobalBlock,
    HeapBlock,
    LocalBlock,
    ProcedureBlock,
    ReturnBlock,
    StringBlock,
    all_pointer_locations,
)


class TestUniqueness:
    def test_locals_always_unique(self):
        assert LocalBlock("x", "f").is_unique

    def test_return_block_unique(self):
        assert ReturnBlock("f").is_unique

    def test_heap_never_unique(self):
        assert not HeapBlock("site").is_unique

    def test_strings_not_unique(self):
        assert not StringBlock("hello", "s0").is_unique

    def test_globals_unique(self):
        assert GlobalBlock("g").is_unique

    def test_param_unique_until_marked(self):
        p = ExtendedParameter("1_p", "f")
        assert p.is_unique
        p.known_unique = False
        assert not p.is_unique


class TestPointerRegistry:
    def test_register_new_location(self):
        b = LocalBlock("x", "f")
        assert b.register_pointer_location(0, 0)
        assert (0, 0) in b.pointer_locations

    def test_register_duplicate_returns_false(self):
        b = LocalBlock("x", "f")
        b.register_pointer_location(4, 0)
        assert not b.register_pointer_location(4, 0)

    def test_version_bumps_on_new_only(self):
        b = LocalBlock("x", "f")
        v0 = b.pointer_version
        b.register_pointer_location(0, 0)
        v1 = b.pointer_version
        b.register_pointer_location(0, 0)
        assert v1 == v0 + 1 == b.pointer_version

    def test_all_pointer_locations_union(self):
        a = LocalBlock("a", "f")
        b = LocalBlock("b", "f")
        a.register_pointer_location(0, 0)
        b.register_pointer_location(4, 0)
        assert all_pointer_locations([a, b]) == {(0, 0), (4, 0)}


class TestSubsumption:
    def test_representative_follows_chain(self):
        p1 = ExtendedParameter("1_p", "f")
        p2 = ExtendedParameter("2_p", "f")
        p3 = ExtendedParameter("3_p", "f")
        p1.subsumed_by = p2
        p2.subsumed_by = p3
        assert p1.representative() is p3
        assert p3.representative() is p3

    def test_global_identity_preserved(self):
        g = GlobalBlock("g")
        p = ExtendedParameter("1_g", "f", global_block=g)
        assert p.global_block is g


class TestIdentity:
    def test_blocks_have_distinct_uids(self):
        a = LocalBlock("x", "f")
        b = LocalBlock("x", "f")
        assert a.uid != b.uid
        assert a != b  # identity-based equality

    def test_string_block_display_truncated(self):
        sb = StringBlock("a" * 50, "s1")
        assert len(sb.name) < 30

    def test_string_block_size(self):
        assert StringBlock("hello", "s2").size == 6  # includes NUL

    def test_procedure_block(self):
        pb = ProcedureBlock("main")
        assert pb.is_unique
        assert pb.proc_name == "main"
