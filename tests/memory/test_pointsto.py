"""Unit tests for the points-to state representations (§3.3, §4.2)."""

import pytest

from repro.memory.blocks import ExtendedParameter, HeapBlock, LocalBlock
from repro.memory.locset import LocationSet
from repro.memory.pointsto import DenseState, SparseState, normalize_loc
from repro.ir.dominators import finalize_graph
from repro.ir.nodes import BranchNode, EntryNode, ExitNode, MeetNode


class FakeProc:
    name = "fake"


def linear_graph(n):
    """entry -> n branch nodes -> exit"""
    proc = FakeProc()
    entry = EntryNode(proc)
    nodes = [BranchNode(proc) for _ in range(n)]
    exit_ = ExitNode(proc)
    prev = entry
    for nd in nodes:
        prev.add_succ(nd)
        prev = nd
    prev.add_succ(exit_)
    finalize_graph(entry)
    return entry, nodes, exit_


def diamond_graph():
    """entry -> branch -> (left | right) -> meet -> exit"""
    proc = FakeProc()
    entry = EntryNode(proc)
    branch = BranchNode(proc)
    left = BranchNode(proc)
    right = BranchNode(proc)
    meet = MeetNode(proc)
    exit_ = ExitNode(proc)
    entry.add_succ(branch)
    branch.add_succ(left)
    branch.add_succ(right)
    left.add_succ(meet)
    right.add_succ(meet)
    meet.add_succ(exit_)
    finalize_graph(entry)
    return entry, branch, left, right, meet, exit_


def loc(name="x"):
    return LocationSet(LocalBlock(name, "fake"), 0, 0)


@pytest.fixture(params=[DenseState, SparseState])
def state_cls(request):
    return request.param


class TestBasics:
    def test_initial_roundtrip(self, state_cls):
        entry, nodes, exit_ = linear_graph(2)
        st = state_cls(entry)
        l = loc()
        v = frozenset({loc("t")})
        st.set_initial(l, v)
        assert st.get_initial(l) == v

    def test_initial_visible_downstream(self, state_cls):
        entry, nodes, exit_ = linear_graph(2)
        st = state_cls(entry)
        l, v = loc(), frozenset({loc("t")})
        st.set_initial(l, v)
        if isinstance(st, DenseState):
            evaluated = set()
            for nd in [*nodes, exit_]:
                st.merge_at(nd, evaluated)
                evaluated.add(nd.uid)
        assert st.lookup(l, exit_) == v

    def test_assign_then_lookup_after(self, state_cls):
        entry, nodes, exit_ = linear_graph(2)
        st = state_cls(entry)
        l, v = loc(), frozenset({loc("t")})
        if isinstance(st, DenseState):
            st.merge_at(nodes[0], set())
        st.assign(l, v, nodes[0], strong=True)
        assert st.lookup(l, nodes[0], before=False) == v

    def test_strong_update_replaces(self, state_cls):
        entry, nodes, exit_ = linear_graph(3)
        st = state_cls(entry)
        l = loc()
        v1, v2 = frozenset({loc("a")}), frozenset({loc("b")})
        evaluated = set()
        for i, nd in enumerate(nodes):
            st.merge_at(nd, evaluated)
            if i == 0:
                st.assign(l, v1, nd, strong=True)
            elif i == 1:
                st.assign(l, v2, nd, strong=True)
            st.finish_node(nd)
            evaluated.add(nd.uid)
        st.merge_at(exit_, evaluated)
        assert st.lookup(l, exit_) == v2

    def test_weak_update_accumulates(self, state_cls):
        entry, nodes, exit_ = linear_graph(3)
        st = state_cls(entry)
        l = loc()
        v1, v2 = frozenset({loc("a")}), frozenset({loc("b")})
        evaluated = set()
        for i, nd in enumerate(nodes):
            st.merge_at(nd, evaluated)
            if i == 0:
                st.assign(l, v1, nd, strong=False)
            elif i == 1:
                st.assign(l, v2, nd, strong=False)
            st.finish_node(nd)
            evaluated.add(nd.uid)
        st.merge_at(exit_, evaluated)
        assert st.lookup(l, exit_) == v1 | v2

    def test_summary_contains_assigned_keys(self, state_cls):
        entry, nodes, exit_ = linear_graph(2)
        st = state_cls(entry)
        l, v = loc(), frozenset({loc("t")})
        evaluated = set()
        for i, nd in enumerate(nodes):
            st.merge_at(nd, evaluated)
            if i == 0:
                st.assign(l, v, nd, strong=True)
            st.finish_node(nd)
            evaluated.add(nd.uid)
        st.merge_at(exit_, evaluated)
        summary = st.summary(exit_)
        assert summary.get(l) == v


class TestDiamondMerge:
    def test_values_merge_at_meet(self, state_cls):
        entry, branch, left, right, meet, exit_ = diamond_graph()
        st = state_cls(entry)
        block = LocalBlock("p", "fake")
        l = LocationSet(block, 0, 0)
        va, vb = frozenset({loc("a")}), frozenset({loc("b")})
        evaluated = {branch.uid}
        if isinstance(st, DenseState):
            st.merge_at(branch, set())
        st.assign(l, va, left, strong=True)
        evaluated.add(left.uid)
        st.assign(l, vb, right, strong=True)
        evaluated.add(right.uid)
        if isinstance(st, DenseState):
            st.merge_at(left, evaluated)
            st.assign(l, va, left, strong=True)
            st.merge_at(right, evaluated)
            st.assign(l, vb, right, strong=True)
            st.merge_at(meet, evaluated)
            got = st.lookup(l, meet, before=True)
        else:
            # sparse: evaluate the φ at the meet
            phis = st.phi_locations(meet)
            assert l in phis
            merged = st.lookup(l, left, before=False) | st.lookup(
                l, right, before=False
            )
            st.assign_phi(l, merged, meet)
            got = st.lookup(l, meet, before=False)
        assert got == va | vb


class TestSparseSpecifics:
    def test_phi_inserted_at_frontier(self):
        entry, branch, left, right, meet, exit_ = diamond_graph()
        st = SparseState(entry)
        l = loc()
        st.assign(l, frozenset({loc("v")}), left, strong=True)
        assert l in st.phi_locations(meet)

    def test_lookup_walks_dominators(self):
        entry, nodes, exit_ = linear_graph(4)
        st = SparseState(entry)
        l, v = loc(), frozenset({loc("t")})
        st.assign(l, v, nodes[0], strong=True)
        # no defs at nodes[1..3]: the walk reaches nodes[0]
        assert st.lookup(l, nodes[3], before=True) == v

    def test_strong_fence_blocks_overlapping_history(self):
        entry, nodes, exit_ = linear_graph(3)
        st = SparseState(entry)
        block = LocalBlock("s", "fake")
        field0 = LocationSet(block, 0, 0)
        field0_dup = LocationSet(block, 0, 0)
        # old value at offset 0 via a different (overlapping) key shape
        whole = LocationSet(block, 0, 1)
        st.assign(whole, frozenset({loc("old")}), nodes[0], strong=False)
        # a strong word write at offset 0 fences the earlier whole-block def
        new_val = loc("new")
        st.assign(field0, frozenset({new_val}), nodes[1], strong=True, size=4)
        got = st.lookup_overlapping(field0_dup, nodes[2], width=4)
        assert got == frozenset({new_val}), got

    def test_phi_is_not_a_fence(self):
        entry, branch, left, right, meet, exit_ = diamond_graph()
        st = SparseState(entry)
        l = loc()
        st.assign(l, frozenset({loc("v")}), left, strong=True)
        st.assign_phi(l, frozenset({loc("v")}), meet)
        # a φ def must not fence overlapping lookups
        fence = st._find_strong_fence(l, exit_, width=4)
        assert fence is not meet


class TestNormalization:
    def test_subsumed_key_normalizes(self):
        p1 = ExtendedParameter("1_p", "f")
        p2 = ExtendedParameter("2_p", "f")
        p1.subsumed_by = p2
        l = LocationSet(p1, 4, 0)
        n = normalize_loc(l)
        assert n.base is p2 and n.offset == 4

    def test_lookup_follows_subsumption(self, state_cls):
        entry, nodes, exit_ = linear_graph(2)
        st = state_cls(entry)
        p1 = ExtendedParameter("1_p", "f")
        l_old = LocationSet(p1, 0, 0)
        v = frozenset({loc("t")})
        if isinstance(st, DenseState):
            st.merge_at(nodes[0], set())
        st.assign(l_old, v, nodes[0], strong=True)
        # now subsume p1
        p2 = ExtendedParameter("2_p", "f")
        p1.subsumed_by = p2
        l_new = LocationSet(p2, 0, 0)
        got = st.lookup(l_new, nodes[0], before=False)
        assert got == v
