"""Parallelizer client tests (§7)."""

import pytest

from repro import analyze_source
from repro.clients import MachineModel, Parallelizer


def loops_of(source, oracle=None):
    par = Parallelizer(source, alias_oracle=oracle, filename="t.c")
    par.run()
    return par


class TestLoopDiscovery:
    def test_finds_for_loop(self):
        par = loops_of(
            "int a[8]; int main(void){ int i; for (i=0;i<8;i++) a[i]=i; return 0; }"
        )
        assert len(par.all_loops()) == 1

    def test_induction_variable(self):
        par = loops_of(
            "int a[8]; int main(void){ int i; for (i=0;i<8;i++) a[i]=i; return 0; }"
        )
        assert par.all_loops()[0].induction_var == "i"

    def test_iteration_count_constant_bound(self):
        par = loops_of(
            "int a[8]; int main(void){ int i; for (i=2;i<8;i++) a[i]=i; return 0; }"
        )
        assert par.all_loops()[0].iterations == 6

    def test_le_bound(self):
        par = loops_of(
            "int a[9]; int main(void){ int i; for (i=0;i<=8;i++) a[i]=i; return 0; }"
        )
        assert par.all_loops()[0].iterations == 9

    def test_while_rewritten_to_for(self):
        par = loops_of(
            """
            int a[8];
            int main(void){
                int i = 0;
                while (i < 8) { a[i] = i; i++; }
                return 0;
            }
            """
        )
        loops = par.all_loops()
        assert loops and loops[0].induction_var == "i"

    def test_nested_loops_found_separately(self):
        par = loops_of(
            """
            int m[4][4];
            int main(void){
                int i, j;
                for (i=0;i<4;i++)
                    for (j=0;j<4;j++)
                        m[i][j] = i + j;
                return 0;
            }
            """
        )
        assert len(par.all_loops()) == 2


class TestDecisions:
    def test_independent_writes_parallel(self):
        par = loops_of(
            "int a[8]; int main(void){ int i; for (i=0;i<8;i++) a[i]=i; return 0; }"
        )
        assert par.all_loops()[0].parallel

    def test_constant_subscript_blocks(self):
        par = loops_of(
            "int a[8]; int main(void){ int i; for (i=0;i<8;i++) a[0]=i; return 0; }"
        )
        assert not par.all_loops()[0].parallel

    def test_shifted_subscript_blocks(self):
        # a[i+1] = a[i] is a loop-carried dependence... but a[i+1] is
        # still affine; the conservative rule allows writes only at i+c
        # with reads at the same pattern; our simplified test treats the
        # affine write as parallelizable only if no other access conflicts
        par = loops_of(
            "int a[9]; int main(void){ int i; for (i=0;i<8;i++) a[i+1]=a[i]; return 0; }"
        )
        loop = par.all_loops()[0]
        # the write is affine; the self-alias check runs through the oracle
        assert loop.induction_var == "i"

    def test_io_blocks(self):
        par = loops_of(
            """
            #include <stdio.h>
            int main(void){ int i; for (i=0;i<8;i++) printf("%d", i); return 0; }
            """
        )
        assert not par.all_loops()[0].parallel

    def test_unknown_call_blocks(self):
        par = loops_of(
            "void frob(void); int main(void){ int i; for (i=0;i<8;i++) frob(); return 0; }"
        )
        assert not par.all_loops()[0].parallel

    def test_pure_math_call_allowed(self):
        par = loops_of(
            """
            #include <math.h>
            double a[8];
            int main(void){ int i; for (i=0;i<8;i++) a[i]=sin((double)i); return 0; }
            """
        )
        assert par.all_loops()[0].parallel

    def test_reduction_parallel(self):
        par = loops_of(
            """
            int a[8];
            int main(void){
                int i, sum = 0;
                for (i=0;i<8;i++) sum += a[i];
                return sum;
            }
            """
        )
        assert par.all_loops()[0].parallel

    def test_no_induction_var_blocks(self):
        par = loops_of(
            """
            int a[8]; int c;
            int main(void){
                int i;
                for (i=0; c; i = a[i])
                    a[i] = c;
                return 0;
            }
            """
        )
        loops = par.all_loops()
        assert loops and not loops[0].parallel
        assert loops[0].induction_var is None


class TestAliasOracle:
    SRC = """
    void axpy(double *x, double *y, int n) {
        int i;
        for (i = 0; i < n; i++)
            y[i] = y[i] + 2.0 * x[i];
    }
    double a[64], b[64];
    int main(void) { axpy(a, b, 64); return 0; }
    """

    ALIASED = """
    void axpy(double *x, double *y, int n) {
        int i;
        for (i = 0; i < n; i++)
            y[i] = y[i] + 2.0 * x[i];
    }
    double a[64];
    int main(void) { axpy(a, a, 64); return 0; }
    """

    def test_oracle_allows_disjoint_arrays(self):
        analysis = analyze_source(self.SRC)
        par = loops_of(self.SRC, oracle=analysis)
        axpy_loops = [l for l in par.all_loops() if l.proc == "axpy"]
        assert axpy_loops[0].parallel

    def test_oracle_blocks_aliased_arrays(self):
        analysis = analyze_source(self.ALIASED)
        par = loops_of(self.ALIASED, oracle=analysis)
        axpy_loops = [l for l in par.all_loops() if l.proc == "axpy"]
        assert not axpy_loops[0].parallel
        assert "alias" in axpy_loops[0].reason

    def test_no_oracle_is_permissive(self):
        par = loops_of(self.ALIASED, oracle=None)
        axpy_loops = [l for l in par.all_loops() if l.proc == "axpy"]
        assert axpy_loops[0].parallel  # without analysis we cannot know


class TestWorkEstimates:
    def test_nested_loop_work_multiplies(self):
        par = loops_of(
            """
            double m[16][32];
            int main(void){
                int i, j;
                for (i=0;i<16;i++) {
                    double *row = m[i];
                    for (j=0;j<32;j++)
                        row[j] = row[j] * 2.0;
                }
                return 0;
            }
            """
        )
        outer = [l for l in par.all_loops() if l.nested_depth == 0][0]
        inner = [l for l in par.all_loops() if l.nested_depth == 1][0]
        assert outer.work > inner.work
        assert outer.work >= 16 * 32

    def test_work_positive(self):
        par = loops_of(
            "int main(void){ int i; for (i=0;i<4;i++) ; return 0; }"
        )
        assert par.all_loops()[0].work >= 1


class TestMachineModel:
    def _loop(self, parallel, work, line=1):
        from repro.clients.parallel import LoopInfo

        l = LoopInfo(proc="p", line=line, induction_var="i", iterations=work)
        l.parallel = parallel
        l.ops_per_iteration = 1
        return l

    def test_serial_program_speedup_one(self):
        mm = MachineModel()
        t = mm.time_program("x", [self._loop(False, 1000)])
        assert abs(t.speedups[2] - 1.0) < 0.05
        assert t.percent_parallel < 5.0

    def test_coarse_parallel_near_linear(self):
        mm = MachineModel()
        t = mm.time_program("x", [self._loop(True, 100000)])
        assert t.speedups[2] > 1.8
        assert t.speedups[4] > 3.2

    def test_fine_grained_saturates(self):
        mm = MachineModel()
        t = mm.time_program("x", [self._loop(True, 800)], invocations={1: 100})
        assert t.speedups[4] < t.speedups[2] * 1.6
        assert t.speedups[4] < 2.5

    def test_speedups_monotone_in_granularity(self):
        mm = MachineModel()
        fine = mm.time_program("f", [self._loop(True, 500)])
        coarse = mm.time_program("c", [self._loop(True, 50000)])
        assert coarse.speedups[4] > fine.speedups[4]

    def test_percent_parallel_mixed(self):
        mm = MachineModel()
        t = mm.time_program(
            "x", [self._loop(True, 9000, line=1), self._loop(False, 1000, line=2)]
        )
        assert 80.0 < t.percent_parallel < 95.0

    def test_row_format(self):
        mm = MachineModel()
        t = mm.time_program("prog", [self._loop(True, 1000)])
        row = t.row()
        assert row[0] == "prog" and len(row) == 5
