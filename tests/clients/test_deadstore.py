"""Dead-store / redundant-load client: precision-driven findings."""

import pytest

from repro import analyze_source
from repro.clients import find_dead_stores, find_redundant_loads


class TestDeadStores:
    def test_simple_dead_store(self):
        src = """
        int a, b;
        void f(int **pp) {
            *pp = &a;
            *pp = &b;
        }
        int main(void){ int *t; f(&t); return 0; }
        """
        r = analyze_source(src, "t.c")
        findings = find_dead_stores(r)
        assert any(f.proc == "f" for f in findings)

    def test_read_between_keeps_store(self):
        src = """
        int a, b;
        int g;
        void f(int **pp) {
            *pp = &a;
            g = (**pp);     /* read through pp: the store is live */
            *pp = &b;
        }
        int main(void){ int *t = 0; f(&t); return 0; }
        """
        r = analyze_source(src, "t.c")
        findings = [f for f in find_dead_stores(r) if f.proc == "f"]
        assert not findings

    def test_aliased_destination_not_flagged(self):
        """When the destination is not provably unique, the first store
        may be to different storage than the second — never flag it."""
        src = """
        int a, b, c;
        int *t1, *t2;
        void f(int **pp, int **qq) {
            *pp = &a;
            *qq = &b;   /* may or may not be the same cell */
        }
        int main(void){
            f(&t1, c ? &t1 : &t2);
            return 0;
        }
        """
        r = analyze_source(src, "t.c")
        findings = [f for f in find_dead_stores(r) if f.proc == "f"]
        assert not findings

    def test_call_between_blocks_finding(self):
        src = """
        int a, b;
        void observe(void);
        void f(int **pp) {
            *pp = &a;
            observe();   /* may read *pp */
            *pp = &b;
        }
        int main(void){ int *t; f(&t); return 0; }
        """
        r = analyze_source(src, "t.c")
        findings = [f for f in find_dead_stores(r) if f.proc == "f"]
        assert not findings

    def test_local_variable_dead_store(self):
        src = """
        int a, b;
        int main(void){
            int *p = &a;
            p = &b;
            return p != 0;
        }
        """
        r = analyze_source(src, "t.c")
        findings = [f for f in find_dead_stores(r) if f.proc == "main"]
        assert findings


class TestRedundantLoads:
    def test_repeated_load(self):
        src = """
        void f(int **src) {
            int *x = *src;
            int *y = *src;
        }
        int main(void){ int *s = 0; f(&s); return 0; }
        """
        r = analyze_source(src, "t.c")
        findings = [f for f in find_redundant_loads(r) if f.proc == "f"]
        assert findings

    def test_intervening_aliasing_store_blocks(self):
        src = """
        int g;
        void f(int **src) {
            int *x = *src;
            *src = &g;      /* changes the loaded location */
            int *y = *src;
        }
        int main(void){ int *s = 0; f(&s); return 0; }
        """
        r = analyze_source(src, "t.c")
        findings = [
            f for f in find_redundant_loads(r)
            if f.proc == "f" and "src" in f.detail and "::" not in f.detail.split("(")[1]
        ]
        # the reload of *src after the store must not be flagged
        reloads_of_target = [
            f for f in find_redundant_loads(r)
            if f.proc == "f" and "(1_src" in f.detail
        ]
        assert not reloads_of_target

    def test_call_clears_window(self):
        src = """
        void mystery(void);
        void f(int **src) {
            int *x = *src;
            mystery();
            int *y = *src;
        }
        int main(void){ int *s = 0; f(&s); return 0; }
        """
        r = analyze_source(src, "t.c")
        findings = [
            f for f in find_redundant_loads(r)
            if f.proc == "f" and "(1_src" in f.detail
        ]
        assert not findings

    def test_precision_enables_findings(self):
        """With distinct targets the store to *other cannot alias *src, so
        the reload of *src stays redundant — exactly the precision the
        analysis buys."""
        src = """
        int g;
        void f(int **src, int **other) {
            int *x = *src;
            *other = &g;      /* provably does not alias *src */
            int *y = *src;
        }
        int main(void){
            int *s = 0, *o = 0;
            f(&s, &o);
            return 0;
        }
        """
        r = analyze_source(src, "t.c")
        findings = [
            f for f in find_redundant_loads(r)
            if f.proc == "f"
        ]
        assert any("src" in f.detail for f in findings)
