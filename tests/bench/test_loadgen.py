"""Load generator + serve trajectory tests (BENCH_serve.json).

The acceptance pair lives here: a loadtest reports qps and latency
quantiles and appends a trajectory entry, and the CI gate turns an
injected 5x p99 latency regression into a nonzero exit.
"""

import json
import threading

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.bench.loadgen import (
    DEFAULT_MIX,
    build_workload,
    parse_mix,
    run_loadtest,
)
from repro.bench.trajectory import (
    SERVE_TRAJECTORY_FORMAT,
    build_serve_entry,
    compare_serve_entries,
    load_serve_trajectory,
    parse_serve_fail_on,
    record_serve_trajectory,
    serve_gate,
)
from repro.cli import main
from repro.query import QueryEngine, build_store

SOURCE = """
int g;
int *gp;
void set(int **pp, int *v) { *pp = v; }
int use(int *p) { return *p; }
int main(void) {
    int x, y;
    int *p = &x;
    int *q = &y;
    set(&gp, &g);
    return use(p) + use(q);
}
"""


@pytest.fixture(scope="module")
def store():
    result = analyze_source(SOURCE, options=AnalyzerOptions())
    return build_store(result, program_name="loadgen")


@pytest.fixture(scope="module")
def store_file(store, tmp_path_factory):
    path = tmp_path_factory.mktemp("loadgen") / "store.json"
    path.write_text(json.dumps(store))
    return str(path)


# -- mix / workload ---------------------------------------------------------


def test_parse_mix_default_and_custom():
    assert parse_mix(None) == DEFAULT_MIX
    assert parse_mix("points_to=4,alias") == {"points_to": 4, "alias": 1}
    # dashes normalize to the op names the daemon speaks
    assert parse_mix("points-to=2") == {"points_to": 2}


def test_parse_mix_rejects_garbage():
    with pytest.raises(ValueError):
        parse_mix("frobnicate=3")
    with pytest.raises(ValueError):
        parse_mix("points_to=lots")
    with pytest.raises(ValueError):
        parse_mix("points_to=0")  # all-zero weights leave nothing to draw


def test_build_workload_is_deterministic(store):
    a = build_workload(store, 40, seed=7)
    b = build_workload(store, 40, seed=7)
    assert a == b
    assert len(a) == 40
    assert build_workload(store, 40, seed=8) != a


def test_build_workload_repeat_half_repeats_prefix(store):
    wl = build_workload(store, 20, seed=1, repeat_half=True)
    assert wl[10:] == wl[:10]
    fresh = build_workload(store, 20, seed=1, repeat_half=False)
    assert fresh[10:] != fresh[:10]


def test_build_workload_honors_mix(store):
    wl = build_workload(store, 30, mix={"modref": 1}, seed=3)
    assert {req["op"] for req in wl} == {"modref"}


# -- the harness ------------------------------------------------------------


def test_run_loadtest_in_process(store_file):
    report = run_loadtest(store_file, clients=4, requests_per_client=20,
                          seed=0)
    payload = report.as_dict()
    assert payload["program"] == "loadgen"
    assert payload["requests"] == 80
    assert payload["clients"] == 4
    assert payload["errors"] == 0
    assert payload["qps"] > 0
    latency = payload["latency"]
    for key in ("p50_ms", "p90_ms", "p95_ms", "p99_ms", "max_ms"):
        assert latency[key] is not None and latency[key] > 0
    assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"]
    # repeat-half + shared LRU must produce real cache hits
    assert payload["cache_hits"] > 0
    assert payload["cache_hit_rate"] > 0
    assert sum(payload["ops"].values()) == 80


def test_run_loadtest_against_external_daemon(store, store_file):
    from repro.query.server import QueryServer

    server = QueryServer(QueryEngine(store))
    bound = {}
    ready = threading.Event()

    def cb(a):
        bound["a"] = a
        ready.set()

    thread = threading.Thread(
        target=server.serve_tcp,
        kwargs=dict(host="127.0.0.1", port=0, ready_cb=cb,
                    log=_null()),
    )
    thread.start()
    assert ready.wait(10)
    try:
        report = run_loadtest(store_file, clients=2, requests_per_client=10,
                              addr=bound["a"])
        assert report.as_dict()["requests"] == 20
        assert report.as_dict()["errors"] == 0
    finally:
        import socket

        with socket.create_connection(bound["a"], timeout=10) as sock:
            fh = sock.makefile("rw", encoding="utf-8")
            fh.write(json.dumps({"op": "shutdown"}) + "\n")
            fh.flush()
            fh.readline()
        thread.join(10)


def _null():
    import io

    return io.StringIO()


# -- serve trajectory -------------------------------------------------------


def fake_report(p99=10.0, p50=2.0, qps=1000.0, **kwargs):
    report = {
        "program": "loadgen",
        "clients": 8,
        "requests": 400,
        "errors": 0,
        "seconds": 0.4,
        "qps": qps,
        "latency": {"p50_ms": p50, "p90_ms": p99 / 2, "p95_ms": p99 / 1.5,
                    "p99_ms": p99, "max_ms": p99 * 2},
        "cache_hits": 180,
        "cache_misses": 220,
        "cache_hit_rate": 0.45,
        "ops": {"points_to": 300, "alias": 100},
    }
    report.update(kwargs)
    return report


def test_record_and_load_round_trip(tmp_path):
    path = str(tmp_path / "BENCH_serve.json")
    entry, drift, failures = record_serve_trajectory(
        fake_report(), path=path, revision="aaa"
    )
    assert entry["revision"] == "aaa"
    assert drift == [] and failures == []
    data = load_serve_trajectory(path)
    assert data["format"] == SERVE_TRAJECTORY_FORMAT
    assert len(data["entries"]) == 1


def test_drift_lines_on_regression(tmp_path):
    a = build_serve_entry(fake_report(p99=10.0, qps=1000.0), revision="a")
    b = build_serve_entry(fake_report(p99=20.0, qps=600.0), revision="b")
    lines = compare_serve_entries(a, b)
    assert any("p99 slower" in l for l in lines)
    assert any("throughput down" in l for l in lines)


def test_shape_change_suppresses_deltas():
    a = build_serve_entry(fake_report(), revision="a")
    b = build_serve_entry(fake_report(clients=64, qps=1.0, p99=500.0),
                          revision="b")
    lines = compare_serve_entries(a, b)
    assert len(lines) == 1 and "run shape changed" in lines[0]
    # the gate resets on a shape change instead of firing spuriously
    assert serve_gate(a, b, {"p99": 1.0, "qps": 0.3}) == []


def test_parse_serve_fail_on():
    assert parse_serve_fail_on(None) is None
    assert parse_serve_fail_on("p99:100%,qps:30%") == {"p99": 1.0,
                                                       "qps": 0.3}
    with pytest.raises(ValueError):
        parse_serve_fail_on("p42:10%")
    with pytest.raises(ValueError):
        parse_serve_fail_on("p99:soon")
    with pytest.raises(ValueError):
        parse_serve_fail_on("p99:-5%")


def test_gate_fails_on_injected_5x_latency_regression(tmp_path):
    """The PR acceptance check: a 5x p99 regression against the
    previous comparable entry must fail the gate (and still be
    recorded — the history has to show what the gate caught)."""
    path = str(tmp_path / "BENCH_serve.json")
    record_serve_trajectory(fake_report(p99=10.0), path=path, revision="a")
    entry, drift, failures = record_serve_trajectory(
        fake_report(p99=50.0), path=path,
        fail_on=parse_serve_fail_on("p99:100%,qps:30%"), revision="b"
    )
    assert any("p99 latency regressed" in f for f in failures)
    assert len(load_serve_trajectory(path)["entries"]) == 2


def test_gate_fails_on_throughput_collapse(tmp_path):
    path = str(tmp_path / "BENCH_serve.json")
    record_serve_trajectory(fake_report(qps=1000.0), path=path, revision="a")
    _, _, failures = record_serve_trajectory(
        fake_report(qps=200.0), path=path, fail_on={"qps": 0.3},
        revision="b"
    )
    assert any("throughput dropped" in f for f in failures)


def test_gate_passes_within_threshold(tmp_path):
    path = str(tmp_path / "BENCH_serve.json")
    record_serve_trajectory(fake_report(p99=10.0), path=path, revision="a")
    _, _, failures = record_serve_trajectory(
        fake_report(p99=15.0), path=path, fail_on={"p99": 1.0},
        revision="b"
    )
    assert failures == []


# -- CLI --------------------------------------------------------------------


def test_cli_loadtest_text_and_json(store_file, tmp_path, capsys):
    assert main(["loadtest", store_file, "--clients", "2",
                 "--requests", "10"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out and "p99" in out
    json_path = tmp_path / "report.json"
    assert main(["loadtest", store_file, "--clients", "2", "--requests",
                 "10", "--json", "-o", str(json_path)]) == 0
    payload = json.loads(json_path.read_text())
    assert payload["requests"] == 20 and payload["latency"]["p99_ms"] > 0


def test_cli_loadtest_max_p99_gate(store_file, capsys):
    # sub-microsecond budget: impossible over a real socket
    assert main(["loadtest", store_file, "--clients", "2", "--requests",
                 "10", "--max-p99-ms", "0.000001"]) == 1
    assert "loadtest gate failed" in capsys.readouterr().err
    assert main(["loadtest", store_file, "--clients", "2", "--requests",
                 "10", "--max-p99-ms", "60000"]) == 0


def test_cli_loadtest_record_and_injected_regression(store_file, tmp_path,
                                                     capsys):
    """End-to-end gate demonstration through the CLI: record a baseline,
    rewrite it to claim the daemon used to be 5x faster, and watch
    ``--fail-on`` turn the next (real) run into exit 1."""
    path = tmp_path / "BENCH_serve.json"
    args = ["loadtest", store_file, "--clients", "4", "--requests", "30",
            "--record", str(path), "--fail-on", "p99:100%,qps:30%"]
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "recorded serve entry" in err
    # inject the regression: the baseline claims 5x lower latency and
    # 5x higher throughput than this machine actually delivers
    data = json.loads(path.read_text())
    report = data["entries"][-1]["report"]
    for key in ("p50_ms", "p90_ms", "p95_ms", "p99_ms", "max_ms"):
        report["latency"][key] = report["latency"][key] / 5.0
    report["qps"] = report["qps"] * 5.0
    path.write_text(json.dumps(data))
    assert main(args) == 1
    err = capsys.readouterr().err
    assert "serve gate failed" in err
    # the regressed run is still recorded: the history shows the catch
    assert len(json.loads(path.read_text())["entries"]) == 2


def test_cli_loadtest_fail_on_requires_record(store_file, capsys):
    assert main(["loadtest", store_file, "--clients", "1", "--requests",
                 "4", "--fail-on", "p99:100%"]) == 2
    assert "--fail-on requires --record" in capsys.readouterr().err


def test_cli_loadtest_bad_mix(store_file, capsys):
    assert main(["loadtest", store_file, "--mix", "bogus=1"]) == 2
    assert "unknown op" in capsys.readouterr().err
