"""Semantic points-to facts for each benchmark program.

These are the integration tests of the suite: for every Table 2 program,
assert specific pointer facts a correct analysis must report — the kind of
facts a compiler client would consume.
"""

import pytest

from repro.bench import analyze_benchmark


@pytest.fixture(scope="module")
def results():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = analyze_benchmark(name)
        return cache[name]

    return get


class TestAllroots:
    def test_newton_out_params(self, results):
        r = results("allroots")
        # eval_poly writes through val/dval which point at newton's locals
        assert not r.formals_may_alias("eval_poly") or True
        ptf = r.ptfs_of("eval_poly")[0]
        assert len(ptf.params) >= 2

    def test_find_roots_work_buffer(self, results):
        r = results("allroots")
        # deflate is called with work as both p and q: formals alias
        assert r.formals_may_alias("deflate")


class TestAlvinn:
    def test_forward_pass_formals_disjoint(self, results):
        r = results("alvinn")
        assert not r.formals_may_alias("input_to_hidden")
        assert not r.formals_may_alias("hidden_to_output")

    def test_helpers_pure(self, results):
        r = results("alvinn")
        assert r.is_pure("squash")


class TestGrep:
    def test_match_here_walks_pattern(self, results):
        r = results("grep")
        assert len(r.ptfs_of("match_here")) >= 1

    def test_corpus_strings_reach_matcher(self, results):
        r = results("grep")
        ptf = r.ptfs_of("match")[0]
        assert ptf.initial_entries


class TestDiff:
    def test_edit_list_on_heap(self, results):
        r = results("diff")
        names = r.points_to_names("main", "script")
        assert any("heap" in n for n in names)

    def test_line_text_points_to_samples(self, results):
        r = results("diff")
        # file_a[i].text holds the sample string literals
        assert len(r.ptfs_of("add_line")) >= 1


class TestLex315:
    def test_transitions_on_heap(self, results):
        r = results("lex315")
        ptf = r.ptfs_of("add_edge")[0]
        summary = ptf.summary()
        assert any("heap" in str(v) for vals in summary.values() for v in vals)

    def test_scan_token_moves_cursor(self, results):
        r = results("lex315")
        assert len(r.ptfs_of("scan_token")) >= 1


class TestCompress:
    def test_no_pointer_aliasing_surprises(self, results):
        r = results("compress")
        assert r.stats().avg_ptfs == 1.0


class TestLoader:
    def test_symbols_on_heap(self, results):
        r = results("loader")
        names = r.points_to_names("main", "symtab")
        # the hash table buckets hold heap symbols (via sym_lookup)
        ptfs = r.ptfs_of("sym_lookup")
        assert any(
            "heap" in str(v)
            for ptf in ptfs
            for vals in ptf.summary().values()
            for v in vals
        )

    def test_sections_reference_static_data(self, results):
        r = results("loader")
        assert len(r.ptfs_of("add_section")) >= 1


class TestFootball:
    def test_qsort_comparators_analyzed(self, results):
        r = results("football")
        assert len(r.ptfs_of("by_rating")) >= 1
        assert len(r.ptfs_of("by_offense")) >= 1

    def test_ranking_calls_qsort_with_comparator(self, results):
        r = results("football")
        cg = r.call_graph()
        assert "qsort" in cg["rank_teams"]
        # the comparators were analyzed via the qsort summary's callback
        assert r.analyzer.stats["libc_calls"] >= 1
        for cmp_name in ("by_rating", "by_offense"):
            ptf = r.ptfs_of(cmp_name)[0]
            assert ptf.initial_entries  # the callback received arguments


class TestCompiler:
    def test_ast_nodes_heap_allocated(self, results):
        r = results("compiler")
        names = r.points_to_names("main", "ast")
        assert any("heap" in n for n in names)

    def test_parser_procedures_single_ptf(self, results):
        r = results("compiler")
        for proc in ("parse_expr", "parse_term", "parse_stmt", "parse_primary"):
            assert len(r.ptfs_of(proc)) == 1, proc

    def test_codegen_reaches_emit(self, results):
        r = results("compiler")
        cg = r.call_graph()
        assert "emit" in cg["gen_expr"] or "emit" in cg["gen_binop"]


class TestAssembler:
    def test_fixups_reference_symbols(self, results):
        r = results("assembler")
        ptfs = r.ptfs_of("note_fixup")
        assert ptfs and any("heap" in str(v)
                            for ptf in ptfs
                            for vals in ptf.summary().values()
                            for v in vals)


class TestEqntott:
    def test_expression_tree_on_heap(self, results):
        r = results("eqntott")
        names = r.points_to_names("main", "eq")
        assert any("heap" in n for n in names)

    def test_recursive_parser_one_ptf(self, results):
        r = results("eqntott")
        for proc in ("parse_or", "parse_and", "parse_atom"):
            assert len(r.ptfs_of(proc)) <= 2, proc


class TestEar:
    def test_filter_channels_disjoint(self, results):
        r = results("ear")
        assert not r.formals_may_alias("filter_channel")

    def test_agc_state_flows(self, results):
        r = results("ear")
        assert len(r.ptfs_of("agc_step")) >= 1


class TestSimulator:
    def test_dispatch_table_resolves_handlers(self, results):
        r = results("simulator")
        cg = r.call_graph()
        handlers = {"op_halt", "op_loadi", "op_add", "op_load", "op_store"}
        assert handlers <= cg["step"]

    def test_device_handlers_resolve(self, results):
        r = results("simulator")
        cg = r.call_graph()
        assert "console_read" in cg["dev_read"]
        assert "console_write" in cg["dev_write"]

    def test_page_frames_point_into_phys_mem(self, results):
        r = results("simulator")
        ptfs = r.ptfs_of("resolve")
        assert ptfs
        assert any(
            "phys_mem" in str(v)
            for ptf in ptfs
            for vals in ptf.summary().values()
            for v in vals
        )
