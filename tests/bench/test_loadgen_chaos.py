"""Chaos mode of the load generator (docs/ROBUSTNESS.md §8).

The chaos gate's two properties, pinned in-process: under misbehaving
clients and injected serve faults the daemon (1) never crashes and its
counters exactly account for every line it read, and (2) every non-shed
``ok`` answer is byte-identical to a fault-free baseline — across a
mid-run hot swap, the baseline is the *union* of the old and new
stores' answers (old-or-new, never a torn mix).
"""

import json
import threading
import time

import pytest

from repro import AnalyzerOptions, analyze_source
from repro.bench.loadgen import (
    baseline_answers,
    build_workload,
    run_clients,
    run_loadtest,
)
from repro.diagnostics.faults import FaultPlan
from repro.diagnostics.telemetry import TelemetryRegistry
from repro.memory.pointsto import reset_interning
from repro.query import QueryEngine, build_store, write_store
from repro.query.server import QueryServer

SOURCE_V1 = """
int g;
int *gp;
void set(int **pp, int *v) { *pp = v; }
int use(int *p) { return *p; }
int main(void) {
    int x, y;
    int *p = &x;
    int *q = &y;
    set(&gp, &g);
    return use(p) + use(q);
}
"""

#: ``main`` edited so a points-to answer changes: p -> y, not x
SOURCE_V3 = SOURCE_V1.replace("int *p = &x;", "int *p = &y;")


def build(source: str) -> dict:
    reset_interning()
    result = analyze_source(source, options=AnalyzerOptions())
    return build_store(result, program_name="chaos")


@pytest.fixture(scope="module")
def store_v1():
    return build(SOURCE_V1)


@pytest.fixture(scope="module")
def store_v3():
    return build(SOURCE_V3)


@pytest.fixture()
def store_file(tmp_path, store_v1):
    path = tmp_path / "chaos.store.json"
    write_store(store_v1, str(path))
    return str(path)


def start_tcp(server):
    bound = {}
    ready = threading.Event()

    def cb(a):
        bound["addr"] = a
        ready.set()

    class _Null:
        def write(self, text):
            return len(text)

        def flush(self):
            pass

    thread = threading.Thread(
        target=server.serve_tcp,
        kwargs=dict(host="127.0.0.1", port=0, ready_cb=cb, log=_Null()),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10)
    return thread, bound["addr"]


def query_once(addr, request):
    import socket

    with socket.create_connection(addr, timeout=10) as sock:
        fh = sock.makefile("rw", encoding="utf-8")
        fh.write(json.dumps(request) + "\n")
        fh.flush()
        return json.loads(fh.readline())


def _wait_for(predicate, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def test_accounting_invariant_under_chaos_and_disconnect_faults(store_v1):
    """Every line the daemon read is finalized exactly once, whether the
    answer was read, deliberately abandoned by the client, or dropped by
    the daemon's own injected disconnect fault."""
    server = QueryServer(
        QueryEngine(store_v1),
        telemetry=TelemetryRegistry(),
        faults=FaultPlan(seed=3, disconnect_rate=0.05),
    )
    thread, addr = start_tcp(server)
    try:
        workloads = [
            build_workload(store_v1, 40, seed=i) for i in range(6)
        ]
        report = run_clients(addr, workloads, chaos_seed=11)
        chaos = report.chaos
        sent = (
            chaos["answers_read"]
            + chaos["client_disconnects"]
            + chaos["server_drops"]
        )
        assert sent > 0
        # chaos actually happened: both misbehavior kinds fired
        assert chaos["garbage"] > 0
        assert chaos["client_disconnects"] > 0
        assert chaos["server_drops"] > 0  # the injected fault fired
        assert _wait_for(lambda: server.requests_finalized == sent)
        assert server.requests_finalized == sent
        assert server.fault_disconnects == chaos["server_drops"]
        # the daemon survived it all
        assert query_once(addr, {"op": "ping"})["ok"]
    finally:
        query_once(addr, {"op": "shutdown"})
        thread.join(10)
    assert not thread.is_alive()


def test_chaos_runs_are_deterministic(store_file):
    """Same seed, same store, no timing-dependent shedding: the chaos
    accounting block is identical across runs."""

    def run():
        return run_loadtest(
            store_file, clients=4, requests_per_client=30, seed=5,
            chaos=True,
        )

    a, b = run(), run()
    assert a.chaos == b.chaos
    assert a.chaos["garbage"] > 0 or a.chaos["client_disconnects"] > 0


def test_chaos_on_a_clean_store_matches_baseline(store_file):
    report = run_loadtest(
        store_file, clients=4, requests_per_client=40, seed=1, chaos=True,
    )
    assert report.chaos["mismatches"] == 0
    assert report.chaos["mismatch_samples"] == []
    assert report.chaos["answers_read"] > 0
    assert report.errors == 0
    out = report.as_dict()
    assert out["chaos"]["seed"] == 1


def test_chaos_with_rate_limit_counts_sheds_not_errors(store_file):
    report = run_loadtest(
        store_file, clients=4, requests_per_client=30, seed=2, chaos=True,
        rate_limit=50.0, burst=10.0,
    )
    assert report.chaos["sheds"] > 0
    # sheds are not engine errors, and shed answers skip verification
    assert report.errors == 0
    assert report.chaos["mismatches"] == 0
    # sheds and garbage answers never enter the latency histogram
    # (garbage bypasses admission — it fails JSON parse before the
    # gates — so every garbage line here got its bad-json answer)
    assert report.requests == (
        report.chaos["answers_read"]
        - report.chaos["sheds"]
        - report.chaos["garbage"]
    )


def test_midrun_hot_swap_answers_old_or_new_never_torn(
    tmp_path, store_v1, store_v3
):
    path = str(tmp_path / "hot.store.json")
    write_store(store_v1, path)
    server = QueryServer(
        QueryEngine(store_v1),
        telemetry=TelemetryRegistry(),
        store_path=path,
    )
    thread, addr = start_tcp(server)
    try:
        workloads = [
            build_workload(store_v1, 60, seed=i) for i in range(4)
        ]
        expected = baseline_answers([store_v1, store_v3], workloads)

        swap_result = {}

        def swap():
            time.sleep(0.02)
            write_store(store_v3, path)
            swap_result["env"] = query_once(addr, {"op": "reload"})

        swapper = threading.Thread(target=swap)
        swapper.start()
        report = run_clients(
            addr, workloads, chaos_seed=7, expected=expected
        )
        swapper.join(10)
        assert swap_result["env"]["ok"]
        assert server.generation == 2
        # every non-shed ok answer matched the old store or the new
        # store — the never-torn contract, end to end
        assert report.chaos["mismatches"] == 0
        assert report.chaos["mismatch_samples"] == []
        assert report.errors == 0
    finally:
        query_once(addr, {"op": "shutdown"})
        thread.join(10)
    assert not thread.is_alive()
