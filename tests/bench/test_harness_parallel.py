"""Harness concurrency features: --jobs rows and process-group kill.

Two ISSUE 6 satellites live here: the parallel Table-2 batch must
produce the same stable measurement columns as the sequential harness,
and ``--per-program-timeout`` must kill the *whole process group* on
expiry — ``subprocess.run(timeout=...)`` only kills the direct child,
leaving any grandchild running after the ERROR row is already printed.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.bench.harness import _run_isolated, table2_rows


def test_jobs_rows_match_sequential_columns():
    names = ["allroots", "diff"]
    seq = table2_rows(names=names)
    par = table2_rows(names=names, jobs=2)
    assert [r.name for r in par] == [r.name for r in seq]
    for s, p in zip(seq, par):
        assert p.error == "" and s.error == ""
        # result columns agree exactly; perf counters (dom_walk_steps,
        # cache_hit_rate, seconds) are process-state sensitive — the
        # sequential loop reuses one process's intern tables across
        # programs — and are deliberately excluded, like the snapshot
        # digest excludes the volatile section
        assert (p.lines, p.procedures, p.avg_ptfs) == (
            s.lines, s.procedures, s.avg_ptfs
        )
        assert p.status == s.status


def test_profiled_batch_fills_batch_info():
    """--profile-parallel plumbing: profiling rides the parallel batch
    path even at jobs=1 and lands the observatory columns plus a
    parallel-profile document in batch_info."""
    info = {}
    rows = table2_rows(names=["allroots", "diff"], jobs=2, profile=True,
                       batch_info=info)
    assert [r.name for r in rows] == ["allroots", "diff"]
    assert all(r.error == "" for r in rows)
    assert 0 < info["utilization"] <= 1.0
    assert info["critical_path_seconds"] > 0
    doc = info["parallel_profile"]
    assert doc["jobs"] == 2
    assert {p["name"] for p in doc["programs"]} == {"allroots", "diff"}
    assert doc["theoretical_speedup"] >= doc["measured_speedup"]
    assert info["telemetry"]["counters"]["parallel.tasks"] == 2


def test_jobs_error_isolation():
    """A bad name filter still yields deterministic suite ordering; and
    a worker crash shows up as an ERROR row, not a dead batch (exercised
    through the driver's fault bundles)."""
    rows = table2_rows(names=["allroots"], jobs=2)
    assert len(rows) == 1 and rows[0].status == "ok"


def test_run_isolated_passes_through_success(tmp_path):
    code, out, err = _run_isolated(
        [sys.executable, "-c", "print('ok'); import sys; sys.exit(3)"],
        timeout=30,
        env=dict(os.environ),
    )
    assert code == 3
    assert out.strip() == "ok"


def test_timeout_kills_whole_process_group(tmp_path):
    """The child spawns a grandchild and both sleep; on timeout the kill
    must reap the grandchild too (the old ``subprocess.run`` pattern
    left it running as an orphan)."""
    pid_file = tmp_path / "grandchild.pid"
    child_code = (
        "import subprocess, sys, time\n"
        "p = subprocess.Popen([sys.executable, '-c', "
        "'import time; time.sleep(120)'])\n"
        f"open({str(pid_file)!r}, 'w').write(str(p.pid))\n"
        "time.sleep(120)\n"
    )
    start = time.monotonic()
    with pytest.raises(subprocess.TimeoutExpired):
        _run_isolated(
            [sys.executable, "-c", child_code],
            timeout=2.0,
            env=dict(os.environ),
        )
    assert time.monotonic() - start < 60
    gc_pid = int(pid_file.read_text())
    # the grandchild must be gone (allow a moment for the SIGKILL to land)
    for _ in range(50):
        try:
            os.kill(gc_pid, 0)
        except ProcessLookupError:
            break
        time.sleep(0.1)
    else:
        os.kill(gc_pid, 9)  # clean up before failing
        pytest.fail(f"grandchild {gc_pid} survived the group kill")
