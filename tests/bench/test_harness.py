"""Benchmark registry and harness sanity (fast subset only)."""

import os

import pytest

from repro.bench import PROGRAMS, analyze_benchmark, table2_rows, table2_text
from repro.bench.harness import invocation_rows, table3_rows
from repro.bench.programs import by_name, load_source, source_path


class TestRegistry:
    def test_thirteen_programs(self):
        assert len(PROGRAMS) == 13

    def test_matches_paper_row_order(self):
        # Table 2 is sorted by (paper) size
        sizes = [p.paper_lines for p in PROGRAMS]
        assert sizes == sorted(sizes)

    def test_all_sources_exist(self):
        for p in PROGRAMS:
            assert os.path.isfile(source_path(p.name)), p.name

    def test_sources_have_main(self):
        for p in PROGRAMS:
            assert "int main(" in load_source(p.name), p.name

    def test_by_name(self):
        assert by_name("grep").paper_procedures == 9
        with pytest.raises(KeyError):
            by_name("nope")

    def test_paper_values_recorded(self):
        compiler = by_name("compiler")
        assert compiler.paper_avg_ptfs == 1.14
        assert compiler.paper_procedures == 37

    def test_table3_programs_flagged(self):
        assert by_name("alvinn").table3_invocations
        assert by_name("ear").table3_invocations
        assert by_name("grep").table3_invocations is None


class TestHarness:
    def test_analyze_benchmark_small(self):
        result = analyze_benchmark("allroots")
        stats = result.stats()
        assert stats.procedures >= 4
        assert stats.avg_ptfs >= 1.0

    def test_table2_rows_subset(self):
        rows = table2_rows(names=["allroots", "grep"])
        assert [r.name for r in rows] == ["allroots", "grep"]
        for r in rows:
            assert r.seconds > 0
            assert r.avg_ptfs >= 1.0

    def test_table2_text_format(self):
        rows = table2_rows(names=["allroots"])
        text = table2_text(rows)
        assert "allroots" in text and "paper" in text

    def test_invocation_rows_subset(self):
        rows = invocation_rows(names=["grep"])
        assert rows[0]["name"] == "grep"
        assert rows[0]["invocation_nodes"] >= rows[0]["procedures"] - 1


class TestFaultIsolation:
    """One bad program must not take down a batch run."""

    def test_crash_becomes_error_row(self, monkeypatch):
        import repro.bench.harness as harness

        orig = harness.analyze_benchmark

        def boom(name, options=None):
            if name == "grep":
                raise RuntimeError("synthetic crash")
            return orig(name, options)

        monkeypatch.setattr(harness, "analyze_benchmark", boom)
        rows = harness.table2_rows(names=["allroots", "grep"])
        by = {r.name: r for r in rows}
        assert not by["allroots"].error
        assert "synthetic crash" in by["grep"].error
        text = harness.table2_text(rows)
        assert "ERROR" in text and "1 of 2 programs failed" in text

    def test_fault_tolerant_false_raises(self, monkeypatch):
        import repro.bench.harness as harness

        def boom(name, options=None):
            raise RuntimeError("synthetic crash")

        monkeypatch.setattr(harness, "analyze_benchmark", boom)
        with pytest.raises(RuntimeError):
            harness.table2_rows(names=["allroots"], fault_tolerant=False)

    def test_error_row_serializes_additively(self):
        from repro.bench.harness import Table2Row, _error_row

        prog = by_name("allroots")
        row = _error_row(prog, "timeout after 1s")
        d = row.as_dict()
        assert d["error"] == "timeout after 1s"
        clean = table2_rows(names=["allroots"])[0].as_dict()
        assert "error" not in clean and "degraded" not in clean

    def test_subprocess_row_round_trip(self):
        from repro.bench.harness import _subprocess_row

        row = _subprocess_row(by_name("allroots"), timeout=120.0, options=None)
        assert not row.error
        assert row.procedures >= 4
        assert row.avg_ptfs >= 1.0

    def test_subprocess_timeout_becomes_error_row(self):
        from repro.bench.harness import _subprocess_row

        row = _subprocess_row(by_name("compiler"), timeout=0.05, options=None)
        assert "timeout" in row.error

    def test_degraded_options_forward_into_subprocess(self):
        from repro import AnalyzerOptions
        from repro.bench.harness import _subprocess_row

        row = _subprocess_row(
            by_name("allroots"),
            timeout=120.0,
            options=AnalyzerOptions(max_passes=1),
        )
        assert not row.error
        assert row.degraded >= 1


class TestSuiteAnalyzability:
    """Every program in the suite must analyze cleanly under both state
    representations — the suite is itself a large integration test."""

    @pytest.mark.parametrize("name", [p.name for p in PROGRAMS])
    def test_analyzes_sparse(self, name):
        result = analyze_benchmark(name)
        assert result.stats().avg_ptfs < 2.0

    @pytest.mark.parametrize("name", ["allroots", "grep", "compress", "simulator"])
    def test_analyzes_dense(self, name):
        from repro import AnalyzerOptions

        result = analyze_benchmark(name, AnalyzerOptions(state_kind="dense"))
        assert result.stats().procedures > 0
