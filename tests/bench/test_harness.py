"""Benchmark registry and harness sanity (fast subset only)."""

import os

import pytest

from repro.bench import PROGRAMS, analyze_benchmark, table2_rows, table2_text
from repro.bench.harness import invocation_rows, table3_rows
from repro.bench.programs import by_name, load_source, source_path


class TestRegistry:
    def test_thirteen_programs(self):
        assert len(PROGRAMS) == 13

    def test_matches_paper_row_order(self):
        # Table 2 is sorted by (paper) size
        sizes = [p.paper_lines for p in PROGRAMS]
        assert sizes == sorted(sizes)

    def test_all_sources_exist(self):
        for p in PROGRAMS:
            assert os.path.isfile(source_path(p.name)), p.name

    def test_sources_have_main(self):
        for p in PROGRAMS:
            assert "int main(" in load_source(p.name), p.name

    def test_by_name(self):
        assert by_name("grep").paper_procedures == 9
        with pytest.raises(KeyError):
            by_name("nope")

    def test_paper_values_recorded(self):
        compiler = by_name("compiler")
        assert compiler.paper_avg_ptfs == 1.14
        assert compiler.paper_procedures == 37

    def test_table3_programs_flagged(self):
        assert by_name("alvinn").table3_invocations
        assert by_name("ear").table3_invocations
        assert by_name("grep").table3_invocations is None


class TestHarness:
    def test_analyze_benchmark_small(self):
        result = analyze_benchmark("allroots")
        stats = result.stats()
        assert stats.procedures >= 4
        assert stats.avg_ptfs >= 1.0

    def test_table2_rows_subset(self):
        rows = table2_rows(names=["allroots", "grep"])
        assert [r.name for r in rows] == ["allroots", "grep"]
        for r in rows:
            assert r.seconds > 0
            assert r.avg_ptfs >= 1.0

    def test_table2_text_format(self):
        rows = table2_rows(names=["allroots"])
        text = table2_text(rows)
        assert "allroots" in text and "paper" in text

    def test_invocation_rows_subset(self):
        rows = invocation_rows(names=["grep"])
        assert rows[0]["name"] == "grep"
        assert rows[0]["invocation_nodes"] >= rows[0]["procedures"] - 1


class TestSuiteAnalyzability:
    """Every program in the suite must analyze cleanly under both state
    representations — the suite is itself a large integration test."""

    @pytest.mark.parametrize("name", [p.name for p in PROGRAMS])
    def test_analyzes_sparse(self, name):
        result = analyze_benchmark(name)
        assert result.stats().avg_ptfs < 2.0

    @pytest.mark.parametrize("name", ["allroots", "grep", "compress", "simulator"])
    def test_analyzes_dense(self, name):
        from repro import AnalyzerOptions

        result = analyze_benchmark(name, AnalyzerOptions(state_kind="dense"))
        assert result.stats().procedures > 0
