"""Benchmark-trajectory recorder tests (BENCH_table2.json)."""

import json

from repro.bench.harness import Table2Row, table2_rows
from repro.bench.programs import by_name
from repro.bench.trajectory import (
    TRAJECTORY_FORMAT,
    build_entry,
    compare_entries,
    load_trajectory,
    record_trajectory,
)


def fake_row(name="allroots", **kwargs):
    defaults = dict(
        name=name, lines=100, procedures=5, seconds=0.5,
        avg_ptfs=1.0, paper=by_name(name),
        cache_hit_rate=0.5, dom_walk_steps=1000,
    )
    defaults.update(kwargs)
    return Table2Row(**defaults)


class TestBuildEntry:
    def test_totals(self):
        rows = [fake_row(seconds=0.5), fake_row("grep", seconds=1.5, avg_ptfs=2.0)]
        entry = build_entry(rows, peak_kb=512.0, revision="abc1234")
        assert entry["revision"] == "abc1234"
        assert entry["totals"]["seconds"] == 2.0
        assert entry["totals"]["avg_ptfs"] == 1.5
        assert entry["totals"]["errors"] == 0
        assert entry["totals"]["peak_kb"] == 512.0
        assert len(entry["rows"]) == 2

    def test_error_rows_excluded_from_perf_totals(self):
        rows = [fake_row(), fake_row("grep", seconds=0.0, error="boom")]
        entry = build_entry(rows, revision="x")
        assert entry["totals"]["errors"] == 1
        assert entry["totals"]["seconds"] == 0.5

    def test_real_rows_serialize(self):
        rows = table2_rows(names=["allroots"])
        entry = build_entry(rows, revision="x")
        json.dumps(entry)  # must be serializable
        assert entry["rows"][0]["status"] == "ok"

    def test_observatory_columns_are_optional(self):
        rows = [fake_row()]
        plain = build_entry(rows, revision="a")
        assert "utilization" not in plain["totals"]
        assert "critical_path_seconds" not in plain["totals"]
        profiled = build_entry(rows, revision="a", utilization=0.88971,
                               critical_path_seconds=1.2345678)
        assert profiled["totals"]["utilization"] == 0.8897
        assert profiled["totals"]["critical_path_seconds"] == 1.234568


class TestCompare:
    def test_steady_state_is_empty(self):
        rows = [fake_row()]
        a = build_entry(rows, revision="a")
        b = build_entry(rows, revision="b")
        assert compare_entries(a, b) == []

    def test_suite_slowdown_reported(self):
        a = build_entry([fake_row(seconds=1.0)], revision="a")
        b = build_entry([fake_row(seconds=2.0)], revision="b")
        lines = compare_entries(a, b)
        assert any("slower" in l for l in lines)

    def test_precision_drift_reported(self):
        a = build_entry([fake_row(avg_ptfs=1.0)], revision="a")
        b = build_entry([fake_row(avg_ptfs=2.0)], revision="b")
        lines = compare_entries(a, b)
        assert any("avg PTFs" in l for l in lines)

    def test_status_flip_reported(self):
        a = build_entry([fake_row()], revision="a")
        b = build_entry([fake_row(seconds=0.0, error="boom")], revision="b")
        lines = compare_entries(a, b)
        assert any("status ok -> error" in l for l in lines)

    def test_heap_peak_growth_reported(self):
        a = build_entry([fake_row()], peak_kb=1000.0, revision="a")
        b = build_entry([fake_row()], peak_kb=2000.0, revision="b")
        lines = compare_entries(a, b)
        assert any("heap peak" in l for l in lines)

    def test_suite_membership_changes_reported(self):
        a = build_entry([fake_row("allroots")], revision="a")
        b = build_entry([fake_row("grep")], revision="b")
        lines = compare_entries(a, b)
        assert any("dropped" in l for l in lines)
        assert any("added" in l for l in lines)


class TestRecord:
    def test_appends_and_reports_drift(self, tmp_path):
        path = str(tmp_path / "BENCH_table2.json")
        _, drift = record_trajectory([fake_row(seconds=1.0)], path=path,
                                     revision="a")
        assert drift == []  # first entry: no history to drift from
        _, drift = record_trajectory([fake_row(seconds=3.0)], path=path,
                                     revision="b")
        assert any("slower" in l for l in drift)
        data = json.loads((tmp_path / "BENCH_table2.json").read_text())
        assert data["format"] == TRAJECTORY_FORMAT
        assert len(data["entries"]) == 2
        assert [e["revision"] for e in data["entries"]] == ["a", "b"]

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "BENCH_table2.json")
        record_trajectory([fake_row()], path=path, revision="a")
        assert not (tmp_path / "BENCH_table2.json.tmp").exists()

    def test_corrupt_history_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "BENCH_table2.json"
        path.write_text("{ not json")
        entry, drift = record_trajectory([fake_row()], path=str(path),
                                         revision="a")
        assert drift == []
        data = json.loads(path.read_text())
        assert len(data["entries"]) == 1

    def test_load_missing_file(self, tmp_path):
        data = load_trajectory(str(tmp_path / "nope.json"))
        assert data == {"format": TRAJECTORY_FORMAT, "entries": []}


class TestRowStatus:
    def test_status_property(self):
        assert fake_row().status == "ok"
        assert fake_row(error="boom").status == "error"
        assert fake_row(degraded=2).status == "degraded"

    def test_as_dict_includes_status_and_degradation(self):
        row = fake_row(degraded=1,
                       degradation={"quarantined": ["f"], "reasons": {"x": 1}})
        d = row.as_dict()
        assert d["status"] == "degraded"
        assert d["degraded"] == 1
        assert d["degradation"]["quarantined"] == ["f"]
        clean = fake_row().as_dict()
        assert clean["status"] == "ok"
        assert "error" not in clean and "degradation" not in clean
