"""Concurrency-safe atomic writes (ISSUE 6 satellite bugfix).

The old fixed ``<path>.tmp`` sibling meant two concurrent writers shared
one temporary and renamed each other's half-written bytes into place.
The fix — unique per-process/per-call temporaries created with
``O_EXCL`` — must guarantee that whatever interleaving happens, the
destination only ever holds one writer's *complete* document.
"""

import json
import multiprocessing
import os
import threading

import pytest

from repro.ioutil import atomic_write_text


def test_basic_write_and_replace(tmp_path):
    dest = str(tmp_path / "out.json")
    atomic_write_text(dest, "one\n")
    atomic_write_text(dest, "two\n")
    with open(dest) as fh:
        assert fh.read() == "two\n"


def test_no_temporaries_left_behind(tmp_path):
    dest = str(tmp_path / "out.json")
    atomic_write_text(dest, "payload\n")
    assert os.listdir(tmp_path) == ["out.json"]


def test_failure_cleans_up_temporary(tmp_path):
    dest = str(tmp_path / "sub" / "out.json")  # parent dir missing
    with pytest.raises(OSError):
        atomic_write_text(dest, "payload\n")
    assert not (tmp_path / "sub").exists()


def test_foreign_tmp_file_is_not_clobbered(tmp_path):
    """A leftover temporary from another writer (crash, pid reuse) must
    never be silently overwritten or deleted: O_EXCL fails the open, and
    the foreign file survives."""
    dest = str(tmp_path / "out.json")
    pid = os.getpid()
    # occupy every candidate name this process could pick next
    import repro.ioutil as ioutil

    current = next(ioutil._seq)
    foreign = f"{dest}.tmp.{pid}.{current + 1}"
    with open(foreign, "w") as fh:
        fh.write("foreign writer's bytes")
    with pytest.raises(FileExistsError):
        atomic_write_text(dest, "mine\n")
    with open(foreign) as fh:
        assert fh.read() == "foreign writer's bytes"


def test_concurrent_threads_one_process(tmp_path):
    """Threads share a pid; the per-call sequence number keeps their
    temporaries distinct, so every write succeeds and the final content
    is one complete payload."""
    dest = str(tmp_path / "out.json")
    errors = []

    def write(i):
        try:
            for k in range(20):
                atomic_write_text(dest, json.dumps({"writer": i, "k": k}))
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    with open(dest) as fh:
        data = json.load(fh)  # complete, valid JSON
    assert data["k"] == 19
    leftovers = [n for n in os.listdir(tmp_path) if ".tmp." in n]
    assert leftovers == []


def _process_writer(dest, i):
    payload = json.dumps({"writer": i, "blob": "x" * 4096})
    for _ in range(25):
        atomic_write_text(dest, payload)


def test_concurrent_processes_last_replace_wins(tmp_path):
    """The regression scenario from the ISSUE: concurrent ``repro
    index``/``--record`` runs against one path.  With unique
    temporaries, readers only ever observe one writer's complete
    document."""
    dest = str(tmp_path / "store.json")
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_process_writer, args=(dest, i)) for i in range(4)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    with open(dest) as fh:
        data = json.load(fh)
    assert data["writer"] in range(4)
    assert len(data["blob"]) == 4096
    leftovers = [n for n in os.listdir(tmp_path) if ".tmp." in n]
    assert leftovers == []


# -- size-based rotation (repro serve --access-log-max-bytes) ---------------


def test_rotating_writer_rotates_at_size(tmp_path):
    from repro.ioutil import RotatingLineWriter

    dest = str(tmp_path / "access.log")
    with RotatingLineWriter(dest, max_bytes=100) as log:
        for i in range(20):
            log.write(json.dumps({"rid": i}) + "\n")
    assert log.rotations >= 1
    assert os.path.exists(dest) and os.path.exists(dest + ".1")
    # records never split across the boundary: every line parses, and
    # both files respect the size budget (one record of slack)
    for path in (dest, dest + ".1"):
        body = open(path).read()
        assert len(body.encode()) <= 100 + 12
        for line in body.splitlines():
            json.loads(line)


def test_rotating_writer_survives_rotation_mid_stream(tmp_path):
    """The buffered-writer contract: rotation is invisible to the
    caller, and writes after a rotation land in the fresh file."""
    from repro.ioutil import RotatingLineWriter

    dest = str(tmp_path / "access.log")
    log = RotatingLineWriter(dest, max_bytes=40)
    log.write("a" * 39 + "\n")
    log.write("b" * 10 + "\n")  # would exceed: rotates first
    log.flush()
    assert open(dest + ".1").read() == "a" * 39 + "\n"
    assert open(dest).read() == "b" * 10 + "\n"
    log.write("c\n")
    log.close()
    assert open(dest).read() == "b" * 10 + "\n" + "c\n"


def test_rotating_writer_oversized_record_still_lands(tmp_path):
    """A single record larger than max_bytes is written whole (into a
    fresh file when the current one is non-empty), never dropped."""
    from repro.ioutil import RotatingLineWriter

    dest = str(tmp_path / "access.log")
    with RotatingLineWriter(dest, max_bytes=10) as log:
        log.write("x" * 50 + "\n")  # empty file: lands, no rotation
        log.write("y\n")  # rotates, then lands
    assert open(dest + ".1").read() == "x" * 50 + "\n"
    assert open(dest).read() == "y\n"


def test_rotating_writer_appends_on_restart(tmp_path):
    from repro.ioutil import RotatingLineWriter

    dest = str(tmp_path / "access.log")
    with RotatingLineWriter(dest, max_bytes=1000) as log:
        log.write("first\n")
    with RotatingLineWriter(dest, max_bytes=1000) as log:
        log.write("second\n")
    assert open(dest).read() == "first\nsecond\n"


def test_rotating_writer_rejects_nonpositive_budget(tmp_path):
    from repro.ioutil import RotatingLineWriter

    with pytest.raises(ValueError):
        RotatingLineWriter(str(tmp_path / "a.log"), max_bytes=0)
