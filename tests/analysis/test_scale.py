"""Scaling behaviour: the analysis must stay near-linear when alias
patterns repeat (§8: "As long as most procedures are always called with
the same alias patterns, our algorithm will continue to avoid exponential
behavior")."""

import time

import pytest

from repro import analyze_source


def generated_program(n_funcs: int, calls_per_func: int = 2) -> str:
    """A deep call tree of setter procedures, every call with the same
    alias pattern."""
    parts = ["int cell0;", "int *slot0;"]
    parts.append("void f0(int **s, int *v) { *s = v; }")
    for i in range(1, n_funcs):
        callees = "; ".join(
            f"f{max(0, i - 1 - k)}(s, v)" for k in range(calls_per_func)
        )
        parts.append(
            f"void f{i}(int **s, int *v) {{ {callees}; }}"
        )
    parts.append(
        f"int main(void) {{ f{n_funcs - 1}(&slot0, &cell0); return 0; }}"
    )
    return "\n".join(parts)


class TestDeepCallTrees:
    def test_100_procedure_chain_single_ptf_each(self):
        # one call per function: the alias pattern is identical everywhere
        src = generated_program(100, calls_per_func=1)
        r = analyze_source(src)
        stats = r.stats()
        assert stats.procedures == 101
        assert stats.avg_ptfs == 1.0
        assert r.points_to_names("main", "slot0") == {"cell0"}

    def test_100_procedure_dag_bounded_ptfs(self):
        """With two sibling calls, the second call site legitimately sees
        *s aliasing v (the first sibling already stored): exactly two
        alias patterns exist, so at most two PTFs per procedure — bounded
        by the patterns, not by the (exponential) context count."""
        src = generated_program(100, calls_per_func=2)
        r = analyze_source(src)
        stats = r.stats()
        assert stats.procedures == 101
        assert stats.max_ptfs <= 2
        assert stats.avg_ptfs <= 2.0
        assert r.points_to_names("main", "slot0") == {"cell0"}

    def test_ptf_analyses_linear_not_exponential(self):
        """With calls_per_func=2 a context-sensitive reanalysis would do
        ~2^n procedure analyses; PTF reuse keeps it ~n."""
        src = generated_program(60)
        r = analyze_source(src)
        analyses = r.analyzer.stats["ptf_analyses"]
        assert analyses < 8 * 61, analyses

    def test_time_scales_gently(self):
        times = {}
        for n in (20, 80):
            src = generated_program(n)
            t0 = time.perf_counter()
            analyze_source(src)
            times[n] = time.perf_counter() - t0
        # 4x the procedures should cost far less than 16x the time
        assert times[80] < max(times[20], 0.01) * 40


class TestWidePrograms:
    def test_many_independent_procedures(self):
        parts = ["int g;"]
        calls = []
        for i in range(80):
            parts.append(f"int *get{i}(void) {{ return &g; }}")
            calls.append(f"int *p{i} = get{i}();")
        parts.append("int main(void) { " + " ".join(calls) + " return 0; }")
        r = analyze_source("\n".join(parts))
        assert r.stats().procedures == 81
        assert r.stats().avg_ptfs == 1.0

    def test_one_procedure_many_compatible_sites(self):
        parts = ["int g;", "int *id(int *p) { return p; }"]
        calls = [f"int *p{i} = id(&g);" for i in range(60)]
        parts.append("int main(void) { " + " ".join(calls) + " return 0; }")
        r = analyze_source("\n".join(parts))
        assert len(r.ptfs_of("id")) == 1
        assert r.analyzer.stats["ptf_reuses"] >= 59


class TestDeepData:
    def test_long_pointer_chain(self):
        depth = 12
        parts = ["int base;"]
        decls = ["int *p1 = &base;"]
        for i in range(2, depth + 1):
            decls.append(f"int {'*' * i}p{i} = &p{i - 1};")
        deref = "*" * (depth - 1) + f"p{depth}"
        parts.append(
            "int main(void) { "
            + " ".join(decls)
            + f" int *bottom = {deref}; return 0; }}"
        )
        r = analyze_source("\n".join(parts))
        assert r.points_to_names("main", "bottom") == {"base"}
