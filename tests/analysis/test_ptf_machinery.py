"""Unit tests for PTF / ParamMap mechanics (§2.2, §5.2)."""

import pytest

from repro import analyze_source, AnalyzerOptions
from repro.analysis.ptf import PTF, ParamMap
from repro.ir.program import Procedure
from repro.memory.blocks import ExtendedParameter, LocalBlock
from repro.memory.locset import LocationSet


def make_ptf():
    proc = Procedure("f")
    proc.finalize()
    return PTF(proc, state_kind="sparse")


class TestParamMap:
    def test_bind_and_lookup(self):
        m = ParamMap()
        p = ExtendedParameter("1_p", "f")
        vals = frozenset({LocationSet(LocalBlock("x", "main"), 0, 0)})
        m.bind_param(p, vals)
        assert m.lookup_param(p) == vals

    def test_extend_unions(self):
        m = ParamMap()
        p = ExtendedParameter("1_p", "f")
        a = frozenset({LocationSet(LocalBlock("x", "main"), 0, 0)})
        b = frozenset({LocationSet(LocalBlock("y", "main"), 0, 0)})
        m.bind_param(p, a)
        m.extend_param(p, b)
        assert m.lookup_param(p) == a | b

    def test_lookup_follows_subsumption(self):
        m = ParamMap()
        p1 = ExtendedParameter("1_p", "f")
        p2 = ExtendedParameter("2_p", "f")
        vals = frozenset({LocationSet(LocalBlock("x", "main"), 0, 0)})
        m.bind_param(p2, vals)
        p1.subsumed_by = p2
        assert m.lookup_param(p1) == vals

    def test_caller_locations_offsets(self):
        m = ParamMap()
        p = ExtendedParameter("1_p", "f")
        block = LocalBlock("s", "main")
        m.bind_param(p, frozenset({LocationSet(block, 4, 0)}))
        out = m.caller_locations(LocationSet(p, 8, 0))
        assert out == frozenset({LocationSet(block, 12, 0)})

    def test_caller_locations_negative_offset(self):
        m = ParamMap()
        p = ExtendedParameter("1_p", "f")
        block = LocalBlock("s", "main")
        m.bind_param(p, frozenset({LocationSet(block, 8, 0)}))
        out = m.caller_locations(LocationSet(p, -8, 0))
        assert out == frozenset({LocationSet(block, 0, 0)})

    def test_caller_locations_unbound_none(self):
        m = ParamMap()
        p = ExtendedParameter("1_p", "f")
        assert m.caller_locations(LocationSet(p, 0, 0)) is None

    def test_copy_is_independent(self):
        m = ParamMap()
        p = ExtendedParameter("1_p", "f")
        m.bind_param(p, frozenset())
        c = m.copy()
        c.bind_param(ExtendedParameter("2_q", "f"), frozenset())
        assert len(m.param_values) == 1
        assert len(c.param_values) == 2

    def test_non_param_location_none(self):
        m = ParamMap()
        block = LocalBlock("x", "main")
        assert m.caller_locations(LocationSet(block, 0, 0)) is None


class TestPTFObject:
    def test_param_naming_order(self):
        ptf = make_ptf()
        a = ptf.new_param("p")
        b = ptf.new_param("q")
        assert a.name == "1_p" and b.name == "2_q"
        assert a.order == 0 and b.order == 1

    def test_reset_wipes_params_and_entries(self):
        ptf = make_ptf()
        p = ptf.new_param("p")
        ptf.add_initial_entry(
            LocationSet(p, 0, 0), frozenset()
        )
        ptf.reset()
        assert ptf.params == []
        assert ptf.initial_entries == []

    def test_summary_generation_tracks_change(self):
        ptf = make_ptf()
        ptf.summary()  # prime the cache
        g0 = ptf.summary_generation
        ptf.summary()
        assert ptf.summary_generation == g0  # unchanged summary: no bump
        block = LocalBlock("x", "f")
        ptf.state.assign(
            LocationSet(block, 0, 0),
            frozenset({LocationSet(LocalBlock("y", "f"), 0, 0)}),
            ptf.proc.entry.succs[0] if ptf.proc.entry.succs else ptf.proc.exit,
            strong=True,
        )
        ptf.summary()
        assert ptf.summary_generation > g0

    def test_describe_is_stable_text(self):
        ptf = make_ptf()
        text = ptf.describe()
        assert text.startswith("PTF#")


class TestInputsGainedPointers:
    def test_snapshot_then_no_change(self):
        ptf = make_ptf()
        m = ParamMap()
        p = ptf.new_param("p")
        block = LocalBlock("x", "main")
        m.bind_param(p, frozenset({LocationSet(block, 0, 0)}))
        ptf.snapshot_pointer_versions(m)
        assert not ptf.inputs_gained_pointers(m)

    def test_new_pointer_location_detected(self):
        ptf = make_ptf()
        m = ParamMap()
        p = ptf.new_param("p")
        block = LocalBlock("x", "main")
        m.bind_param(p, frozenset({LocationSet(block, 0, 0)}))
        ptf.snapshot_pointer_versions(m)
        block.register_pointer_location(8, 0)
        assert ptf.inputs_gained_pointers(m)


class TestMatchingBehaviour:
    """End-to-end matching properties observed through analysis runs."""

    def test_null_vs_nonnull_inputs_still_match(self):
        """Same alias pattern with different concrete values: one PTF."""
        src = """
        int g;
        int *read_it(int **pp) { return *pp; }
        int main(void){
            int *a = 0;
            int *b = &g;
            int *r1 = read_it(&a);
            int *r2 = read_it(&b);
            return 0;
        }
        """
        r = analyze_source(src)
        assert len(r.ptfs_of("read_it")) == 1
        assert r.points_to_names("main", "r2") == {"g"}

    def test_match_is_order_insensitive_to_actual_identity(self):
        src = """
        int g1, g2;
        void swap_targets(int **a, int **b) {
            int *t = *a;
            *a = *b;
            *b = t;
        }
        int main(void){
            int *p = &g1, *q = &g2;
            swap_targets(&p, &q);
            swap_targets(&q, &p);
            return 0;
        }
        """
        r = analyze_source(src)
        # same pattern both times: one PTF, both orders
        assert len(r.ptfs_of("swap_targets")) == 1

    def test_fnptr_domain_mismatch_splits(self):
        src = """
        int a, b;
        void ca(int **s) { *s = &a; }
        void cb(int **s) { *s = &b; }
        void run(void (*f)(int **), int **s) { f(s); }
        int main(void){
            int *x, *y;
            run(ca, &x);
            run(cb, &y);
            return 0;
        }
        """
        r = analyze_source(src)
        # the callback value is part of the input domain: one PTF per callee
        # (here via the structural procedure-block target of the formal)
        assert len(r.ptfs_of("run")) == 2
        assert r.points_to_names("main", "x") == {"a"}
        assert r.points_to_names("main", "y") == {"b"}

    def test_fnptr_value_in_initial_entries(self):
        """A function pointer stored behind a pointer shows up as a
        structural (procedure-block) target in the initial points-to
        entries — the §5.2 input-domain record for call targets."""
        src = """
        int a;
        void ca(int **s) { *s = &a; }
        void run(void (**fpp)(int **), int **s) { (*fpp)(s); }
        int main(void){
            void (*fp)(int **) = ca;
            int *x;
            run(&fp, &x);
            return 0;
        }
        """
        r = analyze_source(src)
        ptf = r.ptfs_of("run")[0]
        structural = {
            t.base.name
            for e in ptf.initial_entries
            for t in e.targets
            if t.base.kind == "proc"
        }
        assert "ca" in structural
        assert r.points_to_names("main", "x") == {"a"}

    def test_two_stored_callbacks_split_ptfs(self):
        src = """
        int a, b;
        void ca(int **s) { *s = &a; }
        void cb(int **s) { *s = &b; }
        void run(void (**fpp)(int **), int **s) { (*fpp)(s); }
        int main(void){
            void (*f1)(int **) = ca;
            void (*f2)(int **) = cb;
            int *x, *y;
            run(&f1, &x);
            run(&f2, &y);
            return 0;
        }
        """
        r = analyze_source(src)
        assert r.points_to_names("main", "x") == {"a"}
        assert r.points_to_names("main", "y") == {"b"}
        assert len(r.ptfs_of("run")) == 2

    def test_home_context_does_not_leak_ptfs(self):
        """Iterative re-evaluation of one call site must not accumulate
        one PTF per fixpoint iteration (§5.2 home mechanism)."""
        src = """
        int a, b, c;
        int *pick(int **pp) { return *pp; }
        int main(void){
            int *p = &a;
            int *got = 0;
            while (c) {
                got = pick(&p);
                p = c ? &a : &b;
            }
            return 0;
        }
        """
        r = analyze_source(src)
        assert len(r.ptfs_of("pick")) <= 2
