"""Unit tests for Frame / RootFrame internals (§3.2 mechanics)."""

import pytest

from repro import analyze_source, load_program
from repro.analysis.context import Frame, RootFrame
from repro.analysis.engine import Analyzer, AnalyzerOptions
from repro.analysis.ptf import ParamMap
from repro.memory.blocks import (
    ExtendedParameter,
    GlobalBlock,
    HeapBlock,
    LocalBlock,
    ProcedureBlock,
)
from repro.memory.locset import LocationSet


def make_frame(src="int main(void){ return 0; }"):
    program = load_program(src, "t.c")
    analyzer = Analyzer(program)
    proc = program.main
    ptf = analyzer.new_ptf(proc)
    frame = Frame(analyzer, proc, ptf, ParamMap(), None, analyzer.root)
    ptf.current_map = frame.param_map
    return analyzer, frame


class TestRootFrame:
    def test_static_initializer_values(self):
        program = load_program(
            "int g; int *gp = &g; int main(void){ return 0; }", "t.c"
        )
        analyzer = Analyzer(program)
        root = analyzer.root
        gp_block = program.global_block("gp")
        vals = root.lookup_value(LocationSet(gp_block, 0, 0), None, 4)
        assert any(v.base.name == "g" for v in vals)

    def test_uninitialized_global_empty(self):
        program = load_program("int *gp; int main(void){ return 0; }", "t.c")
        analyzer = Analyzer(program)
        gp_block = program.global_block("gp")
        assert analyzer.root.lookup_value(LocationSet(gp_block, 0, 0), None, 4) == frozenset()

    def test_argv_vector(self):
        program = load_program("int main(void){ return 0; }", "t.c")
        analyzer = Analyzer(program)
        root = analyzer.root
        vals = root.lookup_value(LocationSet(root.argv_array, 0, 4), None, 4)
        assert vals and all(v.base is root.argv_strings for v in vals)

    def test_fnptr_resolution(self):
        program = load_program("void f(void){} int main(void){ return 0; }", "t.c")
        analyzer = Analyzer(program)
        block = program.proc_block("f")
        got = analyzer.root.resolve_fnptr_targets(
            frozenset({LocationSet(block, 0, 0)})
        )
        assert got == {"f"}


class TestToCalleeTargets:
    def test_fresh_parameter_for_new_values(self):
        analyzer, frame = make_frame()
        src_block = LocalBlock("caller_x", "caller")
        vals = frozenset({LocationSet(src_block, 0, 0)})
        source = LocationSet(LocalBlock("main::p", "main"), 0, 0)
        targets = frame.to_callee_targets(vals, source)
        assert len(targets) == 1
        param = next(iter(targets)).base
        assert isinstance(param, ExtendedParameter)
        assert frame.param_map.lookup_param(param) == vals

    def test_procedure_blocks_pass_through(self):
        analyzer, frame = make_frame()
        proc_block = ProcedureBlock("callee")
        vals = frozenset({LocationSet(proc_block, 0, 0)})
        source = LocationSet(LocalBlock("main::fp", "main"), 0, 0)
        targets = frame.to_callee_targets(vals, source)
        assert targets == vals  # code addresses are not storage

    def test_same_values_reuse_parameter(self):
        analyzer, frame = make_frame()
        block = LocalBlock("caller_x", "caller")
        vals = frozenset({LocationSet(block, 0, 0)})
        s1 = LocationSet(LocalBlock("main::p", "main"), 0, 0)
        s2 = LocationSet(LocalBlock("main::q", "main"), 0, 0)
        t1 = frame.to_callee_targets(vals, s1)
        t2 = frame.to_callee_targets(vals, s2)
        assert t1 == t2
        # two sources pointing at one single unique location: still unique
        param = next(iter(t1)).base
        assert param.is_unique

    def test_shifted_values_reuse_with_offset(self):
        analyzer, frame = make_frame()
        block = LocalBlock("caller_s", "caller")
        base_vals = frozenset({LocationSet(block, 8, 0)})
        s1 = LocationSet(LocalBlock("main::field", "main"), 0, 0)
        t1 = frame.to_callee_targets(base_vals, s1)
        param = next(iter(t1)).base
        shifted = frozenset({LocationSet(block, 0, 0)})
        s2 = LocationSet(LocalBlock("main::whole", "main"), 0, 0)
        t2 = frame.to_callee_targets(shifted, s2)
        target = next(iter(t2))
        assert target.base is param
        assert target.offset == -8  # Figure 7

    def test_multi_alias_subsumes(self):
        analyzer, frame = make_frame()
        b1 = LocalBlock("caller_a", "caller")
        b2 = LocalBlock("caller_b", "caller")
        s1 = LocationSet(LocalBlock("main::p", "main"), 0, 0)
        s2 = LocationSet(LocalBlock("main::q", "main"), 0, 0)
        s3 = LocationSet(LocalBlock("main::r", "main"), 0, 0)
        p1 = next(iter(frame.to_callee_targets(
            frozenset({LocationSet(b1, 0, 0)}), s1))).base
        p2 = next(iter(frame.to_callee_targets(
            frozenset({LocationSet(b2, 0, 0)}), s2))).base
        both = frozenset({LocationSet(b1, 0, 0), LocationSet(b2, 0, 0)})
        t3 = frame.to_callee_targets(both, s3)
        p3 = next(iter(t3)).base
        assert p1.representative() is p3
        assert p2.representative() is p3
        bound = frame.param_map.lookup_param(p3)
        assert bound == both

    def test_uniqueness_cleared_on_multi_source_multi_value(self):
        analyzer, frame = make_frame()
        b1 = LocalBlock("caller_a", "caller")
        b2 = LocalBlock("caller_b", "caller")
        both = frozenset({LocationSet(b1, 0, 0), LocationSet(b2, 0, 0)})
        s1 = LocationSet(LocalBlock("main::p", "main"), 0, 0)
        s2 = LocationSet(LocalBlock("main::q", "main"), 0, 0)
        param = next(iter(frame.to_callee_targets(both, s1))).base
        frame.to_callee_targets(both, s2)
        assert not param.representative().is_unique

    def test_heap_values_become_parameters(self):
        analyzer, frame = make_frame()
        heap = HeapBlock("site1")
        vals = frozenset({LocationSet(heap, 0, 0)})
        source = LocationSet(LocalBlock("main::p", "main"), 0, 0)
        targets = frame.to_callee_targets(vals, source)
        # heap blocks passed in from a caller are extended parameters (§3)
        assert all(isinstance(t.base, ExtendedParameter) for t in targets)


class TestGlobalParams:
    def test_global_param_cached(self):
        analyzer, frame = make_frame("int g; int main(void){ return 0; }")
        sym = frame.program.globals["g"]
        p1 = frame.global_param(sym)
        p2 = frame.global_param(sym)
        assert p1 is p2
        assert p1.global_block is frame.program.global_block("g")

    def test_caller_block_for_global(self):
        analyzer, frame = make_frame("int g; int main(void){ return 0; }")
        block = frame.caller_block_for_global("g")
        # main's caller is the root: the concrete global block
        assert isinstance(block, GlobalBlock) or isinstance(block, ExtendedParameter)
