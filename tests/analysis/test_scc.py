"""SCC condensation and the bottom-up shard schedule.

The two properties the parallel driver leans on (docs/PARALLEL.md):

* **correctness** — the SCC partition matches a brute-force mutual-
  reachability computation, shards with recursion are flagged, and every
  shard's dependencies precede it (bottom-up order);
* **determinism** — the shard list, dependency edges, and wave schedule
  are identical under any dict insertion order (the perturbation test
  the ISSUE asks for).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scc import (
    address_taken_procs,
    build_plan,
    indirect_call_procs,
    static_call_graph,
    tarjan_sccs,
)
from repro.frontend.parser import load_program

# -- Tarjan correctness -----------------------------------------------------


def test_simple_chain():
    g = {"a": {"b"}, "b": {"c"}, "c": set()}
    assert tarjan_sccs(g) == [("c",), ("b",), ("a",)]


def test_cycle_is_one_component():
    g = {"a": {"b"}, "b": {"c"}, "c": {"a"}}
    assert tarjan_sccs(g) == [("a", "b", "c")]


def test_self_loop_marks_recursive():
    plan = build_plan({"f": {"f"}, "g": set()})
    rec = {s.procs: s.recursive for s in plan.shards}
    assert rec[("f",)] is True
    assert rec[("g",)] is False


def test_multi_member_scc_stays_whole():
    g = {"a": {"b"}, "b": {"a"}, "main": {"a"}}
    plan = build_plan(g)
    assert ("a", "b") in [s.procs for s in plan.shards]
    shard = next(s for s in plan.shards if s.procs == ("a", "b"))
    assert shard.recursive


def test_edges_to_unknown_nodes_are_dropped():
    # external callees (printf, ...) never appear as graph nodes
    assert tarjan_sccs({"a": {"printf", "b"}, "b": set()}) == [
        ("b",),
        ("a",),
    ]


def test_deep_chain_does_not_recurse(monkeypatch):
    """Iterative Tarjan survives graphs far deeper than any sane
    interpreter recursion limit would allow a recursive spelling."""
    n = 5_000
    g = {f"p{i}": {f"p{i + 1}"} for i in range(n)}
    g[f"p{n}"] = set()
    comps = tarjan_sccs(g)
    assert len(comps) == n + 1
    assert comps[0] == (f"p{n}",)


# -- bottom-up schedule -----------------------------------------------------


def _check_plan_invariants(plan):
    # deps point strictly backwards (bottom-up emission order)
    for i, dep_ids in plan.deps.items():
        for j in dep_ids:
            assert j < i, "dependency emitted after its dependent"
    # waves: every shard exactly once, deps always in earlier waves
    seen = set()
    for wave in plan.waves:
        for i in wave:
            assert all(d in seen for d in plan.deps[i])
        seen.update(wave)
    assert seen == set(range(len(plan.shards)))


def test_wave_schedule_invariants():
    g = {
        "main": {"a", "b"},
        "a": {"c"},
        "b": {"c"},
        "c": set(),
        "r1": {"r2"},
        "r2": {"r1"},
    }
    plan = build_plan(g)
    _check_plan_invariants(plan)
    # c, r-cycle (no deps) release together; main must be last
    assert plan.waves[-1] == (plan.shards.index(
        next(s for s in plan.shards if s.procs == ("main",))
    ),)
    stats = plan.stats()
    assert stats["shards"] == 5
    assert stats["recursive_shards"] == 1
    assert stats["procedures"] == 6
    assert stats["critical_path"] == len(plan.waves)


# -- determinism under dict-ordering perturbation (ISSUE satellite) ---------


def _perturbed(graph, seed):
    """The same graph with node and edge insertion order shuffled."""
    rng = random.Random(seed)
    names = list(graph)
    rng.shuffle(names)
    out = {}
    for name in names:
        edges = list(graph[name])
        rng.shuffle(edges)
        out[name] = set(edges)  # set iteration order varies with history
    return out


def test_shard_order_deterministic_under_dict_perturbation():
    g = {
        "main": {"parse", "emit", "main"},
        "parse": {"lex", "error"},
        "emit": {"error", "walk"},
        "walk": {"emit"},
        "lex": set(),
        "error": set(),
        "zeta": {"main"},
    }
    baseline = build_plan(g)
    for seed in range(20):
        plan = build_plan(_perturbed(g, seed))
        assert [s.procs for s in plan.shards] == [
            s.procs for s in baseline.shards
        ]
        assert plan.deps == baseline.deps
        assert plan.waves == baseline.waves


@st.composite
def _graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    names = [f"n{i}" for i in range(n)]
    edges = {
        name: set(
            draw(st.lists(st.sampled_from(names), max_size=4, unique=True))
        )
        for name in names
    }
    return edges


def _brute_force_sccs(graph):
    """Mutual reachability by transitive closure — O(n^3), ground truth."""
    reach = {a: {a} for a in graph}
    changed = True
    while changed:
        changed = False
        for a in graph:
            for b in set(reach[a]):
                new = graph[b] - reach[a]
                if new:
                    reach[a] |= new
                    changed = True
    comps = set()
    for a in graph:
        comp = frozenset(
            b for b in graph if b in reach[a] and a in reach[b]
        )
        comps.add(comp)
    return {frozenset(c) for c in comps}


@settings(max_examples=60, deadline=None)
@given(_graphs())
def test_scc_partition_matches_brute_force(graph):
    comps = tarjan_sccs(graph)
    assert {frozenset(c) for c in comps} == _brute_force_sccs(graph)
    # reverse topological: no component has an edge into a later one
    pos = {}
    for i, comp in enumerate(comps):
        for name in comp:
            pos[name] = i
    for a in graph:
        for b in graph[a]:
            if b in pos and pos[b] != pos[a]:
                assert pos[b] < pos[a], f"edge {a}->{b} points forward"


@settings(max_examples=40, deadline=None)
@given(_graphs(), st.integers(min_value=0, max_value=10_000))
def test_plan_deterministic_on_random_graphs(graph, seed):
    baseline = build_plan(graph)
    _check_plan_invariants(baseline)
    plan = build_plan(_perturbed(graph, seed))
    assert [s.procs for s in plan.shards] == [s.procs for s in baseline.shards]
    assert plan.waves == baseline.waves


# -- static call-graph extraction -------------------------------------------

FNPTR_SOURCE = """
int g;
void f(int *p) { g = *p; }
void h(int *p) { g = *p + 1; }
void dispatch(void (*fp)(int *), int *p) { fp(p); }
int main(void) {
  int x;
  dispatch(f, &x);
  h(&x);
  return 0;
}
"""


def _program():
    return load_program(FNPTR_SOURCE, "fnptr.c", "fnptr")


def test_address_taken_excludes_direct_call_targets():
    taken = address_taken_procs(_program())
    # f escapes as a call argument; h and dispatch only ever appear as
    # direct call targets
    assert taken == {"f"}


def test_indirect_call_procs():
    assert indirect_call_procs(_program()) == {"dispatch"}


def test_static_call_graph_widens_indirect_sites():
    graph = static_call_graph(_program())
    assert graph["main"] == {"dispatch", "h"}
    # dispatch's indirect site widens to every address-taken procedure
    assert graph["dispatch"] == {"f"}
    assert graph["f"] == set()


def test_global_initializer_takes_address():
    src = """
    void cb(void) { }
    void (*table[1])(void) = { cb };
    int main(void) { table[0](); return 0; }
    """
    program = load_program(src, "tbl.c", "tbl")
    assert "cb" in address_taken_procs(program)
