"""Recursive calls (§5.4): fixpoints, deferred evaluation, dual domains."""

import pytest

from repro import analyze_source, AnalyzerOptions


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestDirectRecursion:
    def test_list_walk(self):
        src = """
        struct n { struct n *next; int v; };
        int count(struct n *p) {
            if (!p) return 0;
            return 1 + count(p->next);
        }
        int main(void) {
            struct n a, b, c;
            a.next = &b; b.next = &c; c.next = 0;
            int total = count(&a);
            return total;
        }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("count")) >= 1
            assert r.analyzer.stats["recursive_calls"] >= 1

    def test_recursive_pointer_result(self):
        src = """
        struct n { struct n *next; int v; };
        struct n *last(struct n *p) {
            if (!p->next) return p;
            return last(p->next);
        }
        int main(void) {
            struct n a, b;
            a.next = &b; b.next = 0;
            struct n *t = last(&a);
            return 0;
        }
        """
        for r in both_kinds(src):
            names = r.points_to_names("main", "t")
            assert "a" in names and "b" in names

    def test_recursive_write_through_pointer(self):
        src = """
        int g;
        void fill(int **p, int depth) {
            if (depth == 0) { *p = &g; return; }
            fill(p, depth - 1);
        }
        int main(void) { int *q; fill(&q, 3); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_factorial_style_no_pointers(self):
        src = """
        int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int main(void) { return fact(5); }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("fact")) == 1

    def test_recursion_with_local_address_passed_down(self):
        src = """
        int g;
        int *deepest;
        void dig(int *level, int depth) {
            deepest = level;
            if (depth > 0) { int mine; dig(&mine, depth - 1); }
        }
        int main(void) { int top; dig(&top, 2); return 0; }
        """
        for r in both_kinds(src):
            names = r.points_to_names("main", "deepest")
            assert "top" in names or "mine" in names


class TestMutualRecursion:
    def test_even_odd(self):
        src = """
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main(void) { return is_even(4); }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("is_even")) >= 1
            assert len(r.ptfs_of("is_odd")) >= 1

    def test_mutual_pointer_flow(self):
        src = """
        int g;
        void b_fn(int **p, int d);
        void a_fn(int **p, int d) {
            if (d == 0) { *p = &g; return; }
            b_fn(p, d - 1);
        }
        void b_fn(int **p, int d) { a_fn(p, d); }
        int main(void) { int *q; a_fn(&q, 2); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_recursive_descent_shape(self):
        """The shape that blew up Emami's invocation graph (§7): a small
        recursive-descent parser with many mutually recursive procedures."""
        src = """
        int pos;
        int expr(void);
        int primary(void) { pos++; return pos; }
        int unary(void) { if (pos) return primary(); return expr(); }
        int term(void) { int v = unary(); while (pos) v = v + unary(); return v; }
        int expr(void) { int v = term(); while (pos) v = v + term(); return v; }
        int main(void) { return expr(); }
        """
        for r in both_kinds(src):
            for proc in ("expr", "term", "unary", "primary"):
                assert len(r.ptfs_of(proc)) == 1, proc


class TestRecursiveData:
    def test_building_recursive_list_in_loop(self):
        src = """
        #include <stdlib.h>
        struct n { struct n *next; };
        int main(void) {
            struct n *head = 0;
            int i;
            for (i = 0; i < 5; i++) {
                struct n *e = malloc(sizeof(struct n));
                e->next = head;
                head = e;
            }
            struct n *p = head;
            while (p) p = p->next;
            return 0;
        }
        """
        for r in both_kinds(src):
            heads = r.points_to_names("main", "head")
            assert len(heads) == 1 and any("heap" in n for n in heads)

    def test_tree_insert(self):
        src = """
        #include <stdlib.h>
        struct t { struct t *left; struct t *right; int key; };
        struct t *insert(struct t *root, int key) {
            if (!root) {
                struct t *n = malloc(sizeof(struct t));
                n->left = 0; n->right = 0; n->key = key;
                return n;
            }
            if (key < root->key) root->left = insert(root->left, key);
            else root->right = insert(root->right, key);
            return root;
        }
        int main(void) {
            struct t *root = 0;
            root = insert(root, 5);
            root = insert(root, 3);
            return 0;
        }
        """
        for r in both_kinds(src):
            roots = r.points_to_names("main", "root")
            assert any("heap" in n for n in roots)
