"""The paper's running example (Figure 1) and its PTFs (Figures 3–4, §2)."""

import pytest

from repro import analyze_source, AnalyzerOptions

FIG1 = """
int x, y, z;
int *x0, *y0, *z0;

void f(int **p, int **q, int **r) {
    *p = *q;
    *q = *r;
}

int main(void) {
    int test1 = 1, test2 = 0;
    x0 = &x; y0 = &y; z0 = &z;
    if (test1)
        f(&x0, &y0, &z0);      /* S1 */
    else if (test2)
        f(&z0, &x0, &y0);      /* S2 */
    else
        f(&x0, &y0, &x0);      /* S3 */
    return 0;
}
"""


@pytest.fixture(params=["sparse", "dense"])
def result(request):
    return analyze_source(FIG1, options=AnalyzerOptions(state_kind=request.param))


class TestPTFReuse:
    def test_f_has_exactly_two_ptfs(self, result):
        """S1 and S2 share a PTF (same alias pattern, different actuals);
        S3 needs its own because p and r alias (§2.1)."""
        assert len(result.ptfs_of("f")) == 2

    def test_main_has_one_ptf(self, result):
        assert len(result.ptfs_of("main")) == 1

    def test_reuse_happened(self, result):
        assert result.analyzer.stats["ptf_reuses"] >= 1


class TestCaseI:
    """Unaliased PTF (Figure 3): q's target gets r's initial target."""

    def ptf_for_s1(self, result):
        for ptf in result.ptfs_of("f"):
            # the unaliased PTF binds p, q, r to three distinct parameters
            formal_entries = [
                e for e in ptf.initial_entries if "::" in e.source.base.name
            ]
            params = set()
            for e in formal_entries:
                for t in e.targets:
                    params.add(t.base.representative())
            if len(params) == 3:
                return ptf
        raise AssertionError("no unaliased PTF found")

    def test_target_of_p_gets_initial_target_of_q(self, result):
        ptf = self.ptf_for_s1(result)
        summary = ptf.summary()
        # find l_p (the parameter representing *p)
        names = {loc.base.name: vals for loc, vals in summary.items()}
        p_param = next(n for n in names if n.endswith("_p"))
        q_initial = {
            v.base.name
            for e in ptf.initial_entries
            if e.source.base.name.endswith("_q")
            for v in e.targets
        }
        got = {v.base.name for v in names[p_param]}
        assert got == q_initial

    def test_case_i_target_of_q_gets_initial_target_of_r(self, result):
        ptf = self.ptf_for_s1(result)
        summary = ptf.summary()
        names = {loc.base.name: vals for loc, vals in summary.items()}
        q_param = next(n for n in names if n.endswith("_q"))
        r_initial = {
            v.base.name
            for e in ptf.initial_entries
            if e.source.base.name.endswith("_r")
            for v in e.targets
        }
        got = {v.base.name for v in names[q_param]}
        assert got == r_initial


class TestCaseII:
    """Aliased PTF (Figure 4): p and r share one extended parameter, and the
    strong update makes q's target retain its original value."""

    def ptf_for_s3(self, result):
        for ptf in result.ptfs_of("f"):
            targets_by_formal = {}
            for e in ptf.initial_entries:
                name = e.source.base.name
                if "::" in name:
                    targets_by_formal[name.split("::")[-1]] = {
                        t.base.representative() for t in e.targets
                    }
            if targets_by_formal.get("p") == targets_by_formal.get("r"):
                return ptf
        raise AssertionError("no aliased PTF found")

    def test_p_and_r_share_parameter(self, result):
        ptf = self.ptf_for_s3(result)
        entries = {
            e.source.base.name.split("::")[-1]: e for e in ptf.initial_entries if "::" in e.source.base.name
        }
        p_params = {t.base.representative() for t in entries["p"].targets}
        r_params = {t.base.representative() for t in entries["r"].targets}
        assert p_params == r_params

    def test_q_target_retains_original_value(self, result):
        """Case II of §2.1: *q ends up with q's target's *initial* value."""
        from repro.memory.blocks import ExtendedParameter

        ptf = self.ptf_for_s3(result)
        summary = ptf.summary()
        q_param_entry = next(
            e
            for e in ptf.initial_entries
            if e.source.base.name.split("::")[-1] == "q"
        )
        q_param = next(iter(q_param_entry.targets)).base.representative()
        # the initial value of *q (the second-level entry, source based on
        # the parameter itself)
        second_level = [
            e
            for e in ptf.initial_entries
            if isinstance(e.source.base, ExtendedParameter)
            and e.source.base.representative() is q_param
        ]
        assert second_level, "expected an initial entry for *q"
        q_initial_value = second_level[0].targets
        final_q = summary.get(second_level[0].source)
        got = {v.base.representative() for v in (final_q or set())}
        want = {v.base.representative() for v in q_initial_value}
        assert got == want


class TestWholeProgramValues:
    def test_x0_points_only_to_y(self, result):
        # S1: x0 = *(&y0) = &y ; S3: same ; S2 does not write x0's cell via p
        # but writes x0 via *q = *r -> x0 = &y. Everywhere &y.
        assert result.points_to_names("main", "x0") == {"y"}

    def test_y0_values(self, result):
        # S1: y0 = &z; S3: y0 retains/becomes &y (Case II kept q's original)
        assert result.points_to_names("main", "y0") == {"y", "z"}

    def test_z0_values(self, result):
        # S2: z0 = &x; otherwise z0 = &z from main's own assignment
        assert result.points_to_names("main", "z0") == {"x", "z"}

    def test_no_unrealizable_values(self, result):
        """A context-insensitive analysis would smear &x into x0 (from S2's
        q) — full context sensitivity keeps it out."""
        assert "x" not in result.points_to_names("main", "x0")
