"""Interprocedural behaviour: PTFs, reuse, context sensitivity, summaries."""

import pytest

from repro import analyze_source, AnalyzerOptions


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestBasicCalls:
    def test_out_parameter(self):
        src = """
        int g;
        void set(int **p, int *v) { *p = v; }
        int *q;
        int main(void) { set(&q, &g); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_return_value(self):
        src = """
        int g;
        int *get(void) { return &g; }
        int main(void) { int *p = get(); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}

    def test_pass_through(self):
        src = """
        int g;
        int *identity(int *p) { return p; }
        int main(void) { int *q = identity(&g); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_two_level_call_chain(self):
        src = """
        int g;
        void inner(int **p) { *p = &g; }
        void outer(int **p) { inner(p); }
        int main(void) { int *q; outer(&q); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_callee_writes_global(self):
        src = """
        int g;
        int *gp;
        void poke(void) { gp = &g; }
        int main(void) { poke(); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "gp") == {"g"}

    def test_callee_reads_global(self):
        src = """
        int g;
        int *gp;
        int *fetch(void) { return gp; }
        int main(void) { gp = &g; int *q = fetch(); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_void_call_no_return_crash(self):
        src = """
        void nothing(void) { }
        int main(void) { nothing(); return 0; }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("nothing")) == 1


class TestContextSensitivity:
    def test_identity_not_smeared_across_contexts(self):
        """The classic unrealizable-path test: calling id() with &a and &b
        must not make both results point to both targets."""
        src = """
        int a, b;
        int *id(int *p) { return p; }
        int main(void) {
            int *pa = id(&a);
            int *pb = id(&b);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "pa") == {"a"}
            assert r.points_to_names("main", "pb") == {"b"}

    def test_one_ptf_for_same_alias_pattern(self):
        src = """
        int a, b;
        int *id(int *p) { return p; }
        int main(void) {
            int *pa = id(&a);
            int *pb = id(&b);
            return 0;
        }
        """
        for r in both_kinds(src):
            # both calls have the same (trivial) alias pattern: one PTF
            assert len(r.ptfs_of("id")) == 1
            assert r.analyzer.stats["ptf_reuses"] >= 1

    def test_swap_respects_contexts(self):
        src = """
        int a, b;
        int *u, *v;
        void swap(int **x, int **y) {
            int *t = *x;
            *x = *y;
            *y = t;
        }
        int main(void) {
            u = &a; v = &b;
            swap(&u, &v);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "u") == {"b"}
            assert r.points_to_names("main", "v") == {"a"}

    def test_different_aliases_make_second_ptf(self):
        src = """
        int a, b;
        int *u, *v;
        void two(int **x, int **y) { *x = *y; }
        int main(void) {
            u = &a; v = &b;
            two(&u, &v);    /* x, y distinct */
            two(&u, &u);    /* x, y aliased */
            return 0;
        }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("two")) == 2

    def test_globals_parameterized_for_reuse(self):
        """§2.2: parametrizing globals lets one PTF serve contexts where a
        global holds different values."""
        src = """
        int a, b;
        int *g;
        int *read_g(void) { return g; }
        int main(void) {
            g = &a;
            int *p = read_g();
            g = &b;
            int *q = read_g();
            return 0;
        }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("read_g")) == 1
            assert r.points_to_names("main", "p") == {"a"}
            assert r.points_to_names("main", "q") == {"b"}

    def test_irrelevant_alias_does_not_block_reuse(self):
        """Parameters are created lazily (§2.2): aliases among inputs the
        callee never touches must not prevent PTF reuse."""
        src = """
        int a, b;
        int *u, *v;
        void touch_first(int **x, int **y) { *x = (int *)0; }
        int main(void) {
            u = &a; v = &b;
            touch_first(&u, &v);   /* unaliased */
            touch_first(&u, &u);   /* aliased, but y never referenced */
            return 0;
        }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("touch_first")) == 1


class TestStrongUpdateThroughCalls:
    def test_callee_strong_update_kills_in_caller(self):
        src = """
        int a, b;
        void clobber(int **p) { *p = &b; }
        int main(void) {
            int *q = &a;
            clobber(&q);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"b"}

    def test_extended_param_strong_update(self):
        """§4.1's key insight: an extended parameter for a unique pointer
        supports strong updates even when the caller-side pointer has many
        values — here it does not, but the update must still kill."""
        src = """
        int a, b, c;
        void set_target(int **p) { *p = &c; }
        int main(void) {
            int *q = &a;
            int *s = &b;
            set_target(&q);
            set_target(&s);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"c"}
            assert r.points_to_names("main", "s") == {"c"}

    def test_conditional_callee_update_is_merge(self):
        src = """
        int a, b;
        void maybe(int **p, int c) { if (c) *p = &b; }
        int main(void) {
            int *q = &a;
            maybe(&q, 1);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"a", "b"}


class TestHeapThroughCalls:
    def test_allocator_wrapper(self):
        src = """
        #include <stdlib.h>
        void *xmalloc(unsigned int n) { return malloc(n); }
        int main(void) {
            int *p = xmalloc(4);
            int *q = xmalloc(8);
            return 0;
        }
        """
        for r in both_kinds(src):
            p = r.points_to_names("main", "p")
            q = r.points_to_names("main", "q")
            # one static allocation site inside xmalloc: p and q share it
            assert p == q and len(p) == 1
            assert any("heap" in n for n in p)

    def test_heap_escapes_through_global(self):
        src = """
        #include <stdlib.h>
        int *stash;
        void alloc_into_global(void) { stash = malloc(4); }
        int main(void) { alloc_into_global(); int *p = stash; return 0; }
        """
        for r in both_kinds(src):
            assert any("heap" in n for n in r.points_to_names("main", "p"))

    def test_caller_heap_passed_down(self):
        src = """
        #include <stdlib.h>
        int g;
        void fill(int **cell) { *cell = &g; }
        int main(void) {
            int **box = malloc(sizeof(int *));
            fill(box);
            int *p = *box;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}


class TestMultiLevel:
    def test_deep_chain(self):
        src = """
        int g;
        void l4(int **p) { *p = &g; }
        void l3(int **p) { l4(p); }
        void l2(int **p) { l3(p); }
        void l1(int **p) { l2(p); }
        int main(void) { int *q; l1(&q); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}
            for proc in ("l1", "l2", "l3", "l4"):
                assert len(r.ptfs_of(proc)) == 1

    def test_diamond_call_graph(self):
        src = """
        int a, b;
        void set(int **p, int *v) { *p = v; }
        void left(int **p) { set(p, &a); }
        void right(int **p) { set(p, &b); }
        int main(void) {
            int *x, *y;
            left(&x);
            right(&y);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "x") == {"a"}
            assert r.points_to_names("main", "y") == {"b"}
            # set() is called with the same alias pattern from both sides
            assert len(r.ptfs_of("set")) == 1

    def test_locals_do_not_escape(self):
        src = """
        int *leak(void) { int local; return &local; }
        int main(void) { int *p = leak(); return 0; }
        """
        for r in both_kinds(src):
            # callee locals are removed when translating summaries (§5.3)
            assert r.points_to_names("main", "p") == set()


class TestArgumentForms:
    def test_struct_by_value_carries_pointers(self):
        src = """
        struct box { int *ptr; int pad; };
        int g;
        int *unwrap(struct box b) { return b.ptr; }
        int main(void) {
            struct box b;
            b.ptr = &g;
            int *p = unwrap(b);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}

    def test_array_argument_decays(self):
        src = """
        int *slot(int **arr) { return arr[1]; }
        int g;
        int main(void) {
            int *table[4];
            table[1] = &g;
            int *p = slot(table);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}

    def test_extra_args_ignored_safely(self):
        src = """
        int g;
        int *f();
        int *f(p) int *p; { return p; }
        int main(void) { int *q = f(&g); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_missing_args_safe(self):
        src = """
        int *f(int *p) { return p; }
        int main(void) { int *q = f(); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == set()
