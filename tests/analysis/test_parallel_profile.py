"""The parallel observatory (ISSUE 9): cross-process trace merge,
worker telemetry transport, and digest invariance under profiling.

The acceptance properties:

* profiling is pure instrumentation — digests stay bit-identical with
  ``profile=True`` at jobs ∈ {1, 4};
* the merged trace is deterministic (lane assignment is a function of
  payload content, not arrival order), globally monotone after clock
  calibration, and span-balanced per worker lane;
* worker telemetry is folded into the parent registry with the exact
  bucket merge (task counts, phase histograms, pool gauges).
"""

import json
import random

import pytest

from repro.analysis.parallel import AnalysisTask, run_batch
from repro.bench.programs import load_source
from repro.diagnostics.trace import (
    EVENT_VOCABULARY,
    Tracer,
    merge_worker_events,
)

NAMES = ["assembler", "loader", "simulator"]


def _tasks():
    return [
        AnalysisTask(
            name=n, source=load_source(n), filename=f"{n}.c"
        )
        for n in NAMES
    ]


@pytest.fixture(scope="module")
def profiled_batch():
    """One profiled jobs=2 batch with a parent tracer, computed once."""
    tracer = Tracer()
    batch = run_batch(_tasks(), jobs=2, tracer=tracer, profile=True)
    return tracer, batch


@pytest.mark.parametrize("jobs", [1, 4])
def test_digests_bit_identical_with_profiling(jobs):
    """ISSUE 9 acceptance: the observatory never perturbs the analysis —
    per-program digests with profiling on equal the unprofiled ones."""
    plain = run_batch(_tasks(), jobs=jobs)
    profiled = run_batch(_tasks(), jobs=jobs, profile=True)
    assert [b["digest"] for b in plain.results] == [
        b["digest"] for b in profiled.results
    ]


def test_profile_block_shape(profiled_batch):
    _tracer, batch = profiled_batch
    assert not batch.errors
    for i, bundle in enumerate(batch.results):
        prof = bundle["profile"]
        assert prof["index"] == i
        assert prof["calibration"]["pid"] == bundle["pid"]
        assert prof["calibration"]["wall_anchor_ns"] > 0
        assert prof["plan"]["shards"]
        assert prof["proc_self_seconds"]
        assert prof["queue_wait_ms"] is not None
        assert prof["payload_bytes"] > 0
        # the worker's own event stream is complete and self-contained
        names = [e["name"] for e in prof["events"]]
        assert "clock.calibrate" in names
        assert "worker.start" in names
        assert names.count("worker.task") == 2  # one B + one E


def test_lane_assignment_is_deterministic(profiled_batch):
    """Merging the same payloads in any order yields the same lanes and
    the same event stream — the merge is a pure function of content."""
    _tracer, batch = profiled_batch
    payloads = [b["profile"] for b in batch.results]
    reference = Tracer()
    lanes_ref = merge_worker_events(reference, payloads)
    assert lanes_ref == batch.lanes
    assert sorted(lanes_ref.values()) == list(
        range(2, 2 + len(lanes_ref))
    )
    rng = random.Random(9)
    for _ in range(3):
        shuffled = list(payloads)
        rng.shuffle(shuffled)
        other = Tracer()
        other.pid = reference.pid
        other.tid = reference.tid
        other.wall_anchor_ns = reference.wall_anchor_ns
        assert merge_worker_events(other, shuffled) == lanes_ref
        assert other.events == reference.events


def test_merged_timestamps_globally_monotone(profiled_batch):
    """After offset calibration the merged Chrome export sorts into one
    globally monotone timeline (the Perfetto-loadability invariant)."""
    tracer, batch = profiled_batch
    doc = tracer.chrome_dict()
    ts = [e["ts"] for e in doc["traceEvents"]]
    assert ts == sorted(ts)
    # worker events really were rebased: every lane's first timed event
    # sits inside the parent's batch span, not at its own t=0
    lanes = set(batch.lanes.values())
    assert lanes and 1 not in lanes
    for lane in lanes:
        lane_ts = [
            e["ts"] for e in doc["traceEvents"]
            if e["tid"] == lane and e["ph"] != "M"
        ]
        assert lane_ts and min(lane_ts) > 0


def test_one_labeled_lane_per_worker(profiled_batch):
    tracer, batch = profiled_batch
    doc = tracer.chrome_dict()
    thread_meta = {
        e["tid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert thread_meta[tracer.tid] == "driver"
    for pid, tid in batch.lanes.items():
        assert thread_meta[tid] == f"worker pid={pid}"


def test_spans_balance_per_lane(profiled_batch):
    tracer, _batch = profiled_batch
    depth: dict[int, int] = {}
    low: dict[int, int] = {}
    for e in sorted(
        tracer.events, key=lambda e: (e["ts"], e["args"]["eid"])
    ):
        if e["ph"] == "B":
            depth[e["tid"]] = depth.get(e["tid"], 0) + 1
        elif e["ph"] == "E":
            depth[e["tid"]] = depth.get(e["tid"], 0) - 1
        low[e["tid"]] = min(
            low.get(e["tid"], 0), depth.get(e["tid"], 0)
        )
    assert all(v == 0 for v in depth.values()), depth
    assert all(v >= 0 for v in low.values()), low


def test_merged_events_stay_in_vocabulary(profiled_batch):
    tracer, _batch = profiled_batch
    for e in tracer.events:
        name = e["name"]
        if name.startswith("eval "):
            name = "eval"
        assert name in EVENT_VOCABULARY, name


def test_worker_telemetry_folds_into_parent(profiled_batch):
    _tracer, batch = profiled_batch
    snap = batch.telemetry.as_dict()
    assert snap["counters"]["parallel.tasks"] == len(NAMES)
    assert "parallel.errors" not in snap["counters"]
    for hist in ("parallel.queue_wait_ms", "parallel.load_ms",
                 "parallel.analyze_ms", "parallel.snapshot_ms",
                 "parallel.run_ms", "parallel.pickle_ms",
                 "parallel.merge_ms"):
        assert snap["histograms"][hist]["count"] == len(NAMES), hist
    assert snap["gauges"]["parallel.jobs"] == 2
    assert snap["gauges"]["parallel.programs"] == len(NAMES)
    util = snap["gauges"]["parallel.utilization"]
    assert 0 < util <= 1.0
    lane_gauges = [
        k for k in snap["gauges"]
        if k.startswith("parallel.worker_utilization.lane")
    ]
    assert len(lane_gauges) == len(batch.lanes)


def test_batch_stats_carry_observatory_columns(profiled_batch):
    _tracer, batch = profiled_batch
    stats = batch.stats()
    assert 0 < stats["utilization"] <= 1.0
    slowest = max(b["seconds"] for b in batch.results)
    assert stats["critical_path_seconds"] == round(slowest, 6)


def test_worker_trace_dir_writes_jsonl(tmp_path):
    out = tmp_path / "traces"
    batch = run_batch(
        [AnalysisTask(name="m", source="int main(void){return 0;}",
                      filename="m.c")],
        jobs=1,
        profile=True,
        worker_trace_dir=str(out),
    )
    assert not batch.errors
    path = out / "m.worker.jsonl"
    events = [json.loads(ln) for ln in path.read_text().splitlines()]
    assert events
    names = [e["name"] for e in events]
    assert "clock.calibrate" in names
    cal = next(e for e in events if e["name"] == "clock.calibrate")
    assert cal["args"]["wall_anchor_ns"] > 0


def test_error_bundles_still_profile():
    """A broken program's worker still ships calibration + telemetry —
    fault isolation includes the observatory."""
    tracer = Tracer()
    batch = run_batch(
        [AnalysisTask(name="broken", source="int main(void { nope",
                      filename="b.c")],
        jobs=1,
        tracer=tracer,
        profile=True,
    )
    bundle = batch.results[0]
    assert bundle["error"]
    prof = bundle["profile"]
    assert prof["calibration"]["pid"] == bundle["pid"]
    assert prof["telemetry"]["counters"]["parallel.errors"] == 1
    assert batch.telemetry.as_dict()["counters"]["parallel.errors"] == 1
