"""Engine options, failure modes, and statistics."""

import pytest

from repro import AnalyzerOptions, analyze_source, load_program
from repro.analysis.engine import Analyzer
from repro.analysis.intra import AnalysisBudgetExceeded


class TestHeapNaming:
    SRC = """
    #include <stdlib.h>
    void *xmalloc(unsigned n) { return malloc(n); }
    int main(void) {
        int *p = xmalloc(4);
        int *q = xmalloc(8);
        return 0;
    }
    """

    def test_static_site_merges_wrapper_allocations(self):
        r = analyze_source(self.SRC, options=AnalyzerOptions(heap_context_depth=0))
        assert r.points_to_names("main", "p") == r.points_to_names("main", "q")

    def test_context_depth_separates_wrapper_allocations(self):
        r = analyze_source(self.SRC, options=AnalyzerOptions(heap_context_depth=1))
        assert r.points_to_names("main", "p") != r.points_to_names("main", "q")

    def test_deeper_chains(self):
        src = """
        #include <stdlib.h>
        void *l1(void) { return malloc(4); }
        void *l2(void) { return l1(); }
        int main(void) {
            int *p = l2();
            int *q = l2();
            int *r = l1();
            return 0;
        }
        """
        shallow = analyze_source(src, options=AnalyzerOptions(heap_context_depth=1))
        # depth 1 distinguishes direct l1 calls from l2-wrapped ones
        assert shallow.points_to_names("main", "r") != shallow.points_to_names(
            "main", "p"
        )
        deep = analyze_source(src, options=AnalyzerOptions(heap_context_depth=2))
        assert deep.points_to_names("main", "p") != deep.points_to_names("main", "q")

    def test_depth_does_not_change_soundness(self):
        src = """
        #include <stdlib.h>
        int g;
        int **box(void) {
            int **b = malloc(sizeof(int *));
            *b = &g;
            return b;
        }
        int main(void) {
            int **b = box();
            int *q = *b;
            return 0;
        }
        """
        for depth in (0, 1, 2):
            r = analyze_source(src, options=AnalyzerOptions(heap_context_depth=depth))
            assert "g" in r.points_to_names("main", "q"), depth


class TestPTFLimit:
    def test_limit_forces_generalization(self):
        # ten distinct alias patterns against a limit of 2
        lines = ["int g0, g1;", "int *s0, *s1;"]
        body = []
        src_fns = ["void f(int **a, int **b) { *a = *b; }"]
        calls = []
        decls = []
        for i in range(6):
            decls.append(f"int v{i}; int *p{i};")
        for i in range(5):
            calls.append(f"p{i} = &v{i}; f(&p{i}, &p{(i + 1) % 6});")
        src = "\n".join(
            decls + src_fns + ["int main(void) {"] + calls + ["return 0; }"]
        )
        r = analyze_source(src, options=AnalyzerOptions(ptf_limit=2))
        assert len(r.ptfs_of("f")) <= 2
        assert r.analyzer.stats.get("ptf_generalized", 0) >= 0

    def test_default_limit_not_hit_normally(self):
        r = analyze_source(
            "int g; int *id(int *p){return p;} int main(void){ int *q = id(&g); return 0;}"
        )
        assert r.analyzer.stats.get("ptf_generalized", 0) == 0
        assert r.analyzer.metrics.ptf_generalizations == 0

    #: calls with genuinely distinct alias patterns (aliased arguments,
    #: distinct arguments, a null argument, indirection through pp) so
    #: the paper's PTF reuse cannot collapse them to one PTF
    BLOWUP_SRC = """
    int v0, v1, v2, v3, v4, v5;
    int *p0, *p1, *p2, *p3, *p4, *p5;
    int **pp;
    void f(int **a, int **b) { *a = *b; }
    int main(void) {
        p0 = &v0; p1 = &v1; p2 = &v2; p3 = &v3; p4 = &v4; p5 = &v5;
        f(&p0, &p0);        /* a == b        */
        f(&p1, &p2);        /* a != b        */
        f(&p3, 0);          /* b null        */
        pp = &p4;
        f(pp, &p5);         /* a through pp  */
        f(&p5, pp);         /* b through pp  */
        return 0;
    }
    """
    BLOWUP_VARS = [f"p{i}" for i in range(6)]

    def test_force_merge_counts_and_stays_sound(self):
        """§8 generalization: past ptf_limit, new contexts merge into the
        first PTF.  The merged summary must over-approximate — every
        precise binding survives — and the metrics layer must count each
        forced merge."""
        precise = analyze_source(self.BLOWUP_SRC)
        # the distinct patterns really do need >2 PTFs when unconstrained
        assert len(precise.ptfs_of("f")) >= 3
        assert precise.analyzer.stats["ptf_generalized"] == 0
        merged = analyze_source(
            self.BLOWUP_SRC, options=AnalyzerOptions(ptf_limit=2)
        )
        assert len(merged.ptfs_of("f")) <= 2
        # both the stats dict and the metrics counter record the merges
        assert merged.analyzer.stats["ptf_generalized"] >= 1
        assert merged.analyzer.metrics.ptf_generalizations >= 1
        assert (
            merged.analyzer.metrics.ptf_generalizations
            == merged.analyzer.stats["ptf_generalized"]
        )
        for var in self.BLOWUP_VARS:
            p = precise.points_to_names("main", var)
            m = merged.points_to_names("main", var)
            assert p <= m, f"{var}: precise {p} not within merged {m}"

    def test_global_ptf_cap_also_generalizes(self):
        """--max-ptfs caps the whole-program PTF pool: once reached,
        procedures that already own a PTF generalize instead of growing."""
        precise = analyze_source(self.BLOWUP_SRC)
        r = analyze_source(
            self.BLOWUP_SRC, options=AnalyzerOptions(max_ptfs_total=2)
        )
        assert r.analyzer.metrics.ptf_generalizations >= 1
        for var in self.BLOWUP_VARS:
            p = precise.points_to_names("main", var)
            m = r.points_to_names("main", var)
            assert p <= m, f"{var}: precise {p} not within capped {m}"


class TestBudget:
    SRC = """
    int a, b, c;
    int main(void) {
        int *p = &a;
        while (c) { p = c ? &a : &b; }
        return 0;
    }
    """

    def test_budget_exceeded_raises_in_strict_mode(self):
        prog = load_program(self.SRC, "t.c")
        with pytest.raises(AnalysisBudgetExceeded):
            Analyzer(prog, AnalyzerOptions(max_passes=1, strict=True)).run()

    def test_budget_exceeded_degrades_by_default(self):
        # without --strict the trip is recorded, not raised: the run
        # completes and the degradation report names the guard
        prog = load_program(self.SRC, "t.c")
        analyzer = Analyzer(prog, AnalyzerOptions(max_passes=1))
        analyzer.run()
        report = analyzer.degradation
        assert not report.ok
        assert "max_passes" in report.reasons()
        assert analyzer.metrics.guard_trips >= 1

    def test_generous_budget_converges(self):
        src = """
        int a, b, c;
        int main(void) {
            int *p = &a;
            while (c) { p = c ? &a : &b; }
            return 0;
        }
        """
        r = analyze_source(src, options=AnalyzerOptions(max_passes=100))
        assert r.points_to_names("main", "p") == {"a", "b"}


class TestStatistics:
    def test_stats_keys_present(self):
        r = analyze_source("int main(void){ return 0; }")
        for key in ("ptf_created", "ptf_reuses", "ptf_analyses",
                    "recursive_calls", "external_calls", "libc_calls"):
            assert key in r.analyzer.stats

    def test_libc_calls_counted(self):
        r = analyze_source(
            '#include <stdlib.h>\nint main(void){ int *p = malloc(4); free(p); return 0; }'
        )
        assert r.analyzer.stats["libc_calls"] >= 2

    def test_external_calls_counted(self):
        r = analyze_source(
            "void mystery(void); int main(void){ mystery(); return 0; }"
        )
        assert r.analyzer.stats["external_calls"] >= 1

    def test_elapsed_recorded(self):
        r = analyze_source("int main(void){ return 0; }")
        assert r.analyzer.elapsed_seconds > 0

    def test_ptf_counts_shape(self):
        r = analyze_source(
            "void f(void){} int main(void){ f(); return 0; }"
        )
        counts = r.analyzer.ptf_counts()
        assert counts == {"f": 1, "main": 1}


class TestNoMain:
    def test_missing_main_raises(self):
        prog = load_program("void helper(void) { }", "t.c")
        with pytest.raises(KeyError):
            Analyzer(prog).run()


class TestArgv:
    def test_argv_strings_reachable(self):
        src = """
        int main(int argc, char **argv) {
            char *first = argv[0];
            return first != 0;
        }
        """
        r = analyze_source(src)
        names = r.points_to_names("main", "first")
        assert any("argv" in n for n in names)

    def test_argc_holds_no_pointers(self):
        src = "int main(int argc, char **argv) { int x = argc; return x; }"
        r = analyze_source(src)
        assert r.points_to_names("main", "x") == set()
