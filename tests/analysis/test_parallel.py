"""The parallel driver: deterministic merge, bit-identical digests.

The acceptance property (ISSUE 6): ``--jobs N`` produces, for every
benchmark, a canonical snapshot digest bit-identical to the sequential
run — parallelism must be a pure scheduling change, invisible in the
results.  The digest covers the full normalized per-procedure PTF
solution plus the resolved call graph, so equality here is equality of
the analysis outcome, not of a summary statistic.
"""

import pytest

from repro.analysis.parallel import (
    AnalysisTask,
    BatchResult,
    options_payload,
    run_batch,
)
from repro.bench.programs import PROGRAMS, load_source


def _suite_tasks():
    return [
        AnalysisTask(
            name=prog.name,
            source=load_source(prog.name),
            filename=f"{prog.name}.c",
        )
        for prog in PROGRAMS
    ]


@pytest.fixture(scope="module")
def sequential_batch():
    """The jobs=1 baseline over all 13 benchmarks, computed once."""
    return run_batch(_suite_tasks(), jobs=1)


def test_sequential_batch_is_clean(sequential_batch):
    assert len(sequential_batch.results) == len(PROGRAMS)
    assert not sequential_batch.errors
    for bundle in sequential_batch.results:
        assert bundle["digest"]
        assert bundle["shard_plan"]["shards"] >= 1


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_digests_bit_identical_to_sequential(
    sequential_batch, jobs
):
    """ISSUE 6 acceptance: every benchmark's whole-program snapshot
    digest under --jobs N equals the sequential one, and results come
    back in task (suite) order regardless of completion order."""
    batch = run_batch(_suite_tasks(), jobs=jobs)
    assert [b["name"] for b in batch.results] == [p.name for p in PROGRAMS]
    assert not batch.errors
    for seq, par in zip(sequential_batch.results, batch.results):
        assert par["digest"] == seq["digest"], par["name"]
        # the whole canonical snapshot agrees, not just its hash
        from repro.diagnostics.snapshot import canonical_bytes

        assert canonical_bytes(par["snapshot"]) == canonical_bytes(
            seq["snapshot"]
        ), par["name"]
    assert batch.stats()["jobs"] == jobs


def test_worker_error_is_isolated():
    """One broken program yields an error bundle; its neighbors in the
    same batch are unaffected (fault-isolation discipline)."""
    tasks = [
        AnalysisTask(name="ok", source="int main(void){return 0;}",
                     filename="ok.c"),
        AnalysisTask(name="broken", source="int main(void { syntax",
                     filename="broken.c"),
        AnalysisTask(name="nomain", source="int helper(void){return 1;}",
                     filename="nomain.c"),
    ]
    batch = run_batch(tasks, jobs=2)
    by_name = {b["name"]: b for b in batch.results}
    assert not by_name["ok"].get("error")
    assert by_name["broken"]["error"]
    assert by_name["nomain"]["error"] == "no analyzable main procedure"
    assert len(batch.errors) == 2


def test_options_cross_the_process_boundary():
    """Non-default scalar options reach the worker (the ignore policy
    changes externals handling, observable in the digest)."""
    from repro.analysis.engine import AnalyzerOptions

    src = """
    extern void mystery(int *p);
    int g;
    int main(void) { int *p = &g; mystery(p); return 0; }
    """
    payload = options_payload(AnalyzerOptions(external_policy="ignore"))
    assert payload == {"external_policy": "ignore"}
    task_h = AnalysisTask(name="t", source=src, filename="t.c")
    task_i = AnalysisTask(name="t", source=src, filename="t.c",
                          options=payload)
    havoc = run_batch([task_h], jobs=2).results[0]
    ignore = run_batch([task_i], jobs=2).results[0]
    assert not havoc.get("error") and not ignore.get("error")
    assert havoc["digest"] != ignore["digest"]


def test_batch_stats_shape():
    batch = run_batch(
        [AnalysisTask(name="m", source="int main(void){return 0;}",
                      filename="m.c")],
        jobs=1,
    )
    stats = batch.stats()
    for key in ("jobs", "workers", "programs", "errors",
                "elapsed_seconds", "worker_seconds", "shards",
                "recursive_shards"):
        assert key in stats, key
    assert stats["programs"] == 1
    assert stats["errors"] == 0
    assert isinstance(batch, BatchResult)


def test_tracer_records_batch_span_and_shard_events():
    from repro.diagnostics import Tracer
    from repro.diagnostics.trace import EVENT_VOCABULARY

    tracer = Tracer()
    run_batch(
        [AnalysisTask(name="m", source="int main(void){return 0;}",
                      filename="m.c")],
        jobs=1,
        tracer=tracer,
    )
    names = [e["name"] for e in tracer.events]
    assert "parallel" in names
    assert "shard.dispatch" in names
    assert "shard.done" in names
    for name in ("parallel", "shard.dispatch", "shard.done"):
        assert name in EVENT_VOCABULARY
