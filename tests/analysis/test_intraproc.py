"""Intraprocedural behaviour: assignments, control flow, strong updates."""

import pytest

from repro import analyze_source, AnalyzerOptions


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestBasicAssignments:
    def test_address_of(self):
        for r in both_kinds("int a; int main(void){ int *p = &a; return 0; }"):
            assert r.points_to_names("main", "p") == {"a"}

    def test_copy_propagation(self):
        src = "int a; int main(void){ int *p = &a; int *q = p; return 0; }"
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"a"}

    def test_pointer_to_pointer(self):
        src = """
        int a;
        int main(void){ int *p = &a; int **pp = &p; int *q = *pp; return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "pp") == {"p"}
            assert r.points_to_names("main", "q") == {"a"}

    def test_store_through_pointer(self):
        src = """
        int a; int *t;
        int main(void){ int **pp = &t; *pp = &a; return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "t") == {"a"}

    def test_null_assignment_clears(self):
        src = "int a; int main(void){ int *p = &a; p = 0; return 0; }"
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == set()

    def test_chained_derefs(self):
        src = """
        int a;
        int main(void){
            int *p = &a; int **pp = &p; int ***ppp = &pp;
            int *q = **ppp;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"a"}

    def test_self_assignment(self):
        src = "int a; int main(void){ int *p = &a; p = p; return 0; }"
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a"}


class TestStrongUpdates:
    def test_reassignment_kills_old_value(self):
        src = "int a, b; int main(void){ int *p = &a; p = &b; return 0; }"
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"b"}

    def test_conditional_assignment_merges(self):
        src = """
        int a, b, c;
        int main(void){
            int *p = &a;
            if (c) p = &b;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_both_branches_assign_kills_original(self):
        src = """
        int a, b, c, d;
        int main(void){
            int *p = &a;
            if (d) p = &b; else p = &c;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"b", "c"}

    def test_store_through_unique_pointer_is_strong(self):
        src = """
        int a, b;
        int main(void){
            int *t = &a;
            int **pp = &t;
            *pp = &b;       /* pp has exactly one target: strong update */
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "t") == {"b"}

    def test_store_through_ambiguous_pointer_is_weak(self):
        src = """
        int a, b, c;
        int *t1, *t2;
        int main(void){
            t1 = &a; t2 = &a;
            int **pp = c ? &t1 : &t2;
            *pp = &b;       /* two possible targets: weak update */
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "t1") == {"a", "b"}
            assert r.points_to_names("main", "t2") == {"a", "b"}

    def test_heap_stores_are_weak(self):
        src = """
        #include <stdlib.h>
        int a, b;
        int main(void){
            int **p = malloc(sizeof(int *));
            *p = &a;
            *p = &b;        /* heap blocks are never unique (§4.1) */
            int *q = *p;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"a", "b"}

    def test_strong_updates_option_off(self):
        src = "int a, b; int main(void){ int *p = &a; p = &b; return 0; }"
        r = analyze_source(
            src, options=AnalyzerOptions(strong_updates=False, state_kind="dense")
        )
        # ablation: without strong updates the old value survives
        assert r.points_to_names("main", "p") == {"a", "b"}


class TestControlFlow:
    def test_while_loop(self):
        src = """
        int a, b, c;
        int main(void){
            int *p = &a;
            while (c) { p = &b; }
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_for_loop_pointer_walk(self):
        src = """
        int arr[10];
        int main(void){
            int *p = arr;
            int i;
            for (i = 0; i < 10; i++) p = p + 1;
            return 0;
        }
        """
        for r in both_kinds(src):
            targets = r.points_to("main", "p")
            assert any("arr" in r.display_name(t.base) for t in targets)

    def test_do_while(self):
        src = """
        int a, b, c;
        int main(void){
            int *p = &a;
            do { p = &b; } while (c);
            return 0;
        }
        """
        for r in both_kinds(src):
            # the body always executes at least once
            assert "b" in r.points_to_names("main", "p")

    def test_switch_cases_merge(self):
        src = """
        int a, b, c, sel;
        int main(void){
            int *p;
            switch (sel) {
            case 0: p = &a; break;
            case 1: p = &b; break;
            default: p = &c; break;
            }
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b", "c"}

    def test_switch_fallthrough(self):
        src = """
        int a, b, sel;
        int main(void){
            int *p = 0;
            switch (sel) {
            case 0: p = &a;   /* falls through */
            case 1: break;
            default: p = &b;
            }
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_goto_forward(self):
        src = """
        int a, b, c;
        int main(void){
            int *p = &a;
            if (c) goto skip;
            p = &b;
        skip:
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_goto_backward_loop(self):
        src = """
        int a, b, c;
        int main(void){
            int *p = &a;
        again:
            if (c) { p = &b; goto again; }
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_ternary_merges(self):
        src = """
        int a, b, c;
        int main(void){ int *p = c ? &a : &b; return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_short_circuit_side_effect_is_conditional(self):
        src = """
        int a, b, c;
        int main(void){
            int *p = &a;
            int ok = c && ((p = &b) != 0);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_break_and_continue(self):
        src = """
        int a, b, c, d;
        int main(void){
            int *p = &a;
            while (1) {
                if (c) { p = &b; continue; }
                if (d) break;
                p = &a;
            }
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_infinite_loop_program_still_analyzes(self):
        src = """
        int a;
        int main(void){
            int *p = &a;
            for (;;) { p = p; }
            return 0;
        }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("main")) == 1


class TestExpressionForms:
    def test_comma_expression(self):
        src = "int a, b; int main(void){ int *p; p = (0, &b); return 0; }"
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"b"}

    def test_compound_assignment_pointer(self):
        src = """
        int arr[8];
        int main(void){ int *p = arr; p += 2; return 0; }
        """
        for r in both_kinds(src):
            targets = r.points_to("main", "p")
            assert any(t.stride == 8 for t in targets)

    def test_post_increment_value(self):
        src = """
        int arr[8];
        int main(void){ int *p = arr; int *q = p++; return 0; }
        """
        for r in both_kinds(src):
            names = r.points_to_names("main", "q")
            assert any("arr" in n for n in names)

    def test_cast_preserves_values(self):
        src = """
        int a;
        int main(void){
            int *p = &a;
            char *c = (char *)p;
            int *q = (int *)c;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"a"}

    def test_pointer_through_int_cast(self):
        """Pointers laundered through integers must survive (§3)."""
        src = """
        int a;
        int main(void){
            int *p = &a;
            unsigned long bits = (unsigned long)p;
            int *q = (int *)bits;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"a"}

    def test_arithmetic_on_cast_pointer_blurs(self):
        src = """
        struct S { int *a; int *b; } s;
        int x;
        int main(void){
            s.a = &x;
            char *raw = (char *)&s;
            int **field = (int **)(raw + 1 * 4);
            int *q = *field;
            return 0;
        }
        """
        for r in both_kinds(src):
            # conservative: q may be &x (the blurred set covers all fields)
            assert "x" in r.points_to_names("main", "q")
