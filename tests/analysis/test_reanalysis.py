"""Re-running analyses over shared Program objects stays consistent."""

import pytest

from repro import AnalyzerOptions, analyze, load_program
from repro.analysis.results import AnalysisResult

SRC = """
int a, b;
int *g;
void set(int **pp, int *v) { *pp = v; }
int main(void) {
    set(&g, &a);
    int *local = g;
    return 0;
}
"""


def test_two_analyzers_same_program_agree():
    program = load_program(SRC, "t.c")
    r1 = AnalysisResult(analyze(program))
    r2 = AnalysisResult(analyze(program))
    assert r1.points_to_names("main", "g") == r2.points_to_names("main", "g")
    assert r1.points_to_names("main", "local") == {"a"}
    assert r2.points_to_names("main", "local") == {"a"}


def test_sparse_then_dense_same_program():
    program = load_program(SRC, "t.c")
    r1 = AnalysisResult(analyze(program, AnalyzerOptions(state_kind="sparse")))
    r2 = AnalysisResult(analyze(program, AnalyzerOptions(state_kind="dense")))
    assert r1.points_to_names("main", "g") == r2.points_to_names("main", "g")


def test_pointer_registry_monotone_across_runs():
    program = load_program(SRC, "t.c")
    analyze(program)
    g_block = program.global_block("g")
    first = set(g_block.pointer_locations)
    analyze(program)
    assert first <= g_block.pointer_locations


def test_analysis_does_not_mutate_cfg():
    program = load_program(SRC, "t.c")
    before = {p.name: len(p.rpo) for p in program.procedures.values()}
    analyze(program)
    after = {p.name: len(p.rpo) for p in program.procedures.values()}
    assert before == after
