"""The process-wide recursion-limit policy (ISSUE 6 satellite bugfix).

The historical pattern — save the limit, raise it, restore it in
``finally`` — is a race: the limit is process-global, so the first of
two overlapping analyses to finish restores the *old* (low) limit while
the other is still recursing above it, and the survivor dies with a
spurious ``RecursionError``.  The fix is raise-only under a lock
(:mod:`repro.analysis.recursion`); these tests pin both the policy unit
behavior and the end-to-end concurrent-analyses regression.
"""

import sys
import threading

from repro import AnalyzerOptions, analyze_source
from repro.analysis.recursion import ensure_recursion_limit


def test_raises_when_needed():
    before = sys.getrecursionlimit()
    got = ensure_recursion_limit(before + 123)
    assert got == before + 123
    assert sys.getrecursionlimit() == before + 123


def test_never_lowers():
    before = sys.getrecursionlimit()
    got = ensure_recursion_limit(before - 500)
    assert got == before
    assert sys.getrecursionlimit() == before


def test_concurrent_raisers_converge_to_max():
    base = sys.getrecursionlimit()
    targets = [base + d for d in (10, 500, 250, 40)]
    threads = [
        threading.Thread(target=ensure_recursion_limit, args=(t,))
        for t in targets
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sys.getrecursionlimit() == max(targets)


def _deep_chain_source(depth: int) -> str:
    """main -> f{depth-1} -> ... -> f0: analysis call depth ~= depth."""
    parts = ["int g;", "void f0(int *p) { g = *p; }"]
    for i in range(1, depth):
        parts.append(f"void f{i}(int *p) {{ f{i - 1}(p); }}")
    parts.append(
        f"int main(void) {{ int x; f{depth - 1}(&x); return 0; }}"
    )
    return "\n".join(parts)


def test_two_deep_analyses_concurrently():
    """The ISSUE regression: two deep analyses overlapping in one
    process.  Under the old save/restore pattern the first finisher
    yanked the limit down beneath the second; with the monotone policy
    both must complete without RecursionError."""
    src = _deep_chain_source(150)
    opts = AnalyzerOptions(max_call_depth=400)
    errors: list[BaseException] = []
    barrier = threading.Barrier(2)

    def work():
        try:
            barrier.wait(timeout=30)
            result = analyze_source(src, options=opts)
            assert result.stats().procedures == 151
        except BaseException as exc:  # noqa: BLE001 - recorded for assert
            errors.append(exc)

    threads = [threading.Thread(target=work) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    # and the limit stayed at least as high as the deepest run needed
    assert sys.getrecursionlimit() >= 20 * 400 + 1000


def test_invocation_graph_uses_monotone_policy():
    """baselines/invocation.py had the same save/restore pattern; after
    building a graph the limit must not have been lowered."""
    from repro.baselines.invocation import build_invocation_graph
    from repro.frontend.parser import load_program

    ensure_recursion_limit(50_000)
    before = sys.getrecursionlimit()
    program = load_program(
        "void f(void) { } int main(void) { f(); return 0; }", "t.c", "t"
    )
    build_invocation_graph(program)
    assert sys.getrecursionlimit() >= before
