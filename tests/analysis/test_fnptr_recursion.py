"""Recursion discovered through function pointers (§5.4)."""

import pytest

from repro import analyze_source, AnalyzerOptions


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestIndirectRecursion:
    def test_self_recursion_via_pointer(self):
        src = """
        int g;
        void step(int **slot, int depth, void (*self)(int **, int, void *)) ;
        void worker(int **slot, int depth, void *self_raw) {
            void (*self)(int **, int, void *) =
                (void (*)(int **, int, void *))self_raw;
            if (depth == 0) { *slot = &g; return; }
            self(slot, depth - 1, self_raw);
        }
        int main(void) {
            int *q;
            worker(&q, 3, (void *)worker);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}
            assert r.analyzer.stats["recursive_calls"] >= 1

    def test_mutual_recursion_via_table(self):
        src = """
        int g;
        void even_step(int **slot, int depth);
        void odd_step(int **slot, int depth);
        void (*steps[2])(int **, int) = { even_step, odd_step };
        void even_step(int **slot, int depth) {
            if (depth == 0) { *slot = &g; return; }
            steps[1](slot, depth - 1);
        }
        void odd_step(int **slot, int depth) {
            steps[0](slot, depth - 1);
        }
        int main(void) {
            int *q;
            even_step(&q, 4);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_callback_driving_recursion(self):
        """A visit() combinator calling back a closure that re-enters it."""
        src = """
        #include <stdlib.h>
        struct node { struct node *left; struct node *right; int key; };
        int *found;
        int target_key;

        void visit(struct node *n, void (*cb)(struct node *)) {
            if (n == 0) return;
            cb(n);
            visit(n->left, cb);
            visit(n->right, cb);
        }

        void check(struct node *n) {
            if (n->key == target_key)
                found = &n->key;
        }

        int main(void) {
            struct node *root = malloc(sizeof(struct node));
            root->left = malloc(sizeof(struct node));
            root->right = 0;
            root->left->left = root->left->right = 0;
            visit(root, check);
            return found != 0;
        }
        """
        for r in both_kinds(src):
            names = r.points_to_names("main", "found")
            assert any("heap" in n for n in names)


class TestStateMachines:
    def test_continuation_passing_chain(self):
        src = """
        int a, b;
        typedef void (*state_fn)(int **);
        void state_final(int **out) { *out = &b; }
        void state_start(int **out) {
            *out = &a;
            state_fn next = state_final;
            next(out);
        }
        int main(void) {
            int *cursor;
            state_start(&cursor);
            return 0;
        }
        """
        for r in both_kinds(src):
            # the final state strongly updates through the same slot
            assert r.points_to_names("main", "cursor") == {"b"}

    def test_dispatch_loop(self):
        src = """
        int a, b;
        typedef int (*handler)(int **);
        int h_set_a(int **s) { *s = &a; return 1; }
        int h_set_b(int **s) { *s = &b; return 0; }
        static handler handlers[2] = { h_set_a, h_set_b };
        int main(void) {
            int *p = 0;
            int state = 0;
            while (state >= 0 && state < 2) {
                state = handlers[state](&p);
                if (state == 1) break;
            }
            return p != 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}
