"""Function pointers (§5.1): resolution, input domains, indirect calls."""

import pytest

from repro import analyze_source, AnalyzerOptions


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestDirectResolution:
    def test_simple_indirect_call(self):
        src = """
        int g;
        int *get(void) { return &g; }
        int main(void) {
            int *(*fp)(void) = get;
            int *p = fp();
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}

    def test_explicit_deref_call(self):
        src = """
        int g;
        int *get(void) { return &g; }
        int main(void) {
            int *(*fp)(void) = &get;
            int *p = (*fp)();
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}

    def test_two_target_indirect_call_merges(self):
        src = """
        int a, b;
        int *pa(void) { return &a; }
        int *pb(void) { return &b; }
        int main(void) {
            int c = 0;
            int *(*fp)(void) = c ? pa : pb;
            int *p = fp();
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_call_graph_includes_indirect_edges(self):
        src = """
        void handler_a(void) { }
        void handler_b(void) { }
        int main(void) {
            void (*h)(void);
            int c = 1;
            if (c) h = handler_a; else h = handler_b;
            h();
            return 0;
        }
        """
        for r in both_kinds(src):
            cg = r.call_graph()
            assert cg["main"] >= {"handler_a", "handler_b"}


class TestFunctionPointerArguments:
    def test_callback_passed_down(self):
        src = """
        int g;
        void apply(void (*cb)(int **), int **slot) { cb(slot); }
        void setter(int **slot) { *slot = &g; }
        int main(void) {
            int *q;
            apply(setter, &q);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_fnptr_value_is_part_of_ptf_domain(self):
        """Different function-pointer inputs must produce different PTFs —
        the code executed differs (§2.2, §5.2)."""
        src = """
        int a, b;
        void set_a(int **p) { *p = &a; }
        void set_b(int **p) { *p = &b; }
        void apply(void (*cb)(int **), int **slot) { cb(slot); }
        int main(void) {
            int *x, *y;
            apply(set_a, &x);
            apply(set_b, &y);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "x") == {"a"}
            assert r.points_to_names("main", "y") == {"b"}
            # apply() needs one PTF per distinct callback value
            assert len(r.ptfs_of("apply")) == 2

    def test_same_fnptr_value_reuses_ptf(self):
        src = """
        int a;
        void set_a(int **p) { *p = &a; }
        void apply(void (*cb)(int **), int **slot) { cb(slot); }
        int main(void) {
            int *x, *y;
            apply(set_a, &x);
            apply(set_a, &y);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("apply")) == 1

    def test_fnptr_stored_in_struct(self):
        src = """
        int g;
        int *get(void) { return &g; }
        struct ops { int *(*fetch)(void); int tag; };
        int main(void) {
            struct ops o;
            o.fetch = get;
            int *p = o.fetch();
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}

    def test_fnptr_in_global_table(self):
        src = """
        int a, b;
        int *pa(void) { return &a; }
        int *pb(void) { return &b; }
        int *(*table[2])(void) = { pa, pb };
        int main(void) {
            int i = 0;
            int *p = table[i]();
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"a", "b"}

    def test_fnptr_through_two_levels(self):
        src = """
        int g;
        void leaf(int **s) { *s = &g; }
        void mid(void (*f)(int **), int **s) { f(s); }
        void top(void (*f)(int **), int **s) { mid(f, s); }
        int main(void) { int *q; top(leaf, &q); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_returned_function_pointer(self):
        src = """
        int g;
        int *get(void) { return &g; }
        int *(*choose(void))(void) { return get; }
        int main(void) {
            int *(*fp)(void) = choose();
            int *p = fp();
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}


class TestUnknownTargets:
    def test_null_fnptr_never_resolves(self):
        src = """
        int main(void) {
            void (*fp)(void) = 0;
            int c = 0;
            if (c) fp();
            return 0;
        }
        """
        for r in both_kinds(src):
            # the call is deferred forever but the analysis terminates
            assert len(r.ptfs_of("main")) == 1
