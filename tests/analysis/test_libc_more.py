"""Additional library-summary coverage."""

import pytest

from repro import analyze_source, AnalyzerOptions


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestStdio:
    def test_stdio_streams_declared(self):
        src = """
        #include <stdio.h>
        int main(void){
            FILE *out = stdout;
            fprintf(out, "x");
            return 0;
        }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("main")) == 1

    def test_freopen_returns_file(self):
        src = """
        #include <stdio.h>
        int main(void){
            FILE *f = freopen("a", "r", stdin);
            return f != 0;
        }
        """
        for r in both_kinds(src):
            assert any("heap" in n for n in r.points_to_names("main", "f"))

    def test_tmpnam_static_buffer(self):
        src = """
        #include <stdio.h>
        int main(void){ char *n = tmpnam(0); return n != 0; }
        """
        for r in both_kinds(src):
            assert any("tmpnam" in n for n in r.points_to_names("main", "n"))


class TestStringExtra:
    def test_strncpy_returns_dest(self):
        src = """
        #include <string.h>
        int main(void){
            char dst[8];
            char *r = strncpy(dst, "abc", 3);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("dst" in n for n in r.points_to_names("main", "r"))

    def test_strtok_points_into_argument(self):
        src = """
        #include <string.h>
        int main(void){
            char buf[32];
            char *tok = strtok(buf, " ");
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("buf" in n for n in r.points_to_names("main", "tok"))

    def test_memmove_moves_pointers(self):
        src = """
        #include <string.h>
        int g;
        int main(void){
            int *a[2]; int *b[2];
            a[0] = &g;
            memmove(b, a, sizeof(a));
            int *q = b[1];
            return 0;
        }
        """
        for r in both_kinds(src):
            assert "g" in r.points_to_names("main", "q")

    def test_memchr_blurred_result(self):
        src = """
        #include <string.h>
        int main(void){
            char buf[16];
            char *hit = memchr(buf, 'x', 16);
            return 0;
        }
        """
        for r in both_kinds(src):
            locs = r.points_to("main", "hit")
            assert any(l.stride == 1 for l in locs)


class TestTime:
    def test_localtime_static_buffer(self):
        src = """
        #include <time.h>
        int main(void){
            time_t t = time(0);
            struct tm *parts = localtime(&t);
            return parts != 0;
        }
        """
        for r in both_kinds(src):
            assert any("localtime" in n for n in r.points_to_names("main", "parts"))

    def test_ctime_static_string(self):
        src = """
        #include <time.h>
        int main(void){
            time_t t = 0;
            char *s = ctime(&t);
            return s != 0;
        }
        """
        for r in both_kinds(src):
            assert any("ctime" in n for n in r.points_to_names("main", "s"))


class TestAllocatorsExtra:
    def test_malloc_in_loop_single_block(self):
        src = """
        #include <stdlib.h>
        int main(void){
            int i;
            int *last = 0;
            for (i = 0; i < 10; i++)
                last = malloc(4);
            return last != 0;
        }
        """
        for r in both_kinds(src):
            names = r.points_to_names("main", "last")
            assert len(names) == 1  # one static site (§3)

    def test_conditional_malloc_null_merge(self):
        src = """
        #include <stdlib.h>
        int c;
        int main(void){
            int *p = 0;
            if (c) p = malloc(4);
            return p != 0;
        }
        """
        for r in both_kinds(src):
            names = r.points_to_names("main", "p")
            assert len(names) == 1 and any("heap" in n for n in names)

    def test_nested_allocation_sites_distinct(self):
        src = """
        #include <stdlib.h>
        struct pair { int *first; int *second; };
        int main(void){
            struct pair *p = malloc(sizeof(struct pair));
            p->first = malloc(4);
            p->second = malloc(4);
            int *a = p->first;
            int *b = p->second;
            return 0;
        }
        """
        for r in both_kinds(src):
            a = r.points_to_names("main", "a")
            b = r.points_to_names("main", "b")
            assert a != b


class TestSignalExtra:
    def test_sig_constant_handlers_no_crash(self):
        src = """
        #include <signal.h>
        int main(void){
            signal(SIGINT, SIG_IGN);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert len(r.ptfs_of("main")) == 1

    def test_handler_side_effects_analyzed(self):
        src = """
        #include <signal.h>
        int g;
        int *latched;
        void on_int(int sig) { latched = &g; }
        int main(void){
            signal(SIGINT, on_int);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "latched") == {"g"}
