"""Heap-block naming and re-keying units (§3)."""

import pytest

from repro import AnalyzerOptions, load_program
from repro.analysis.engine import Analyzer
from repro.memory.blocks import HeapBlock


def analyzer(depth=0):
    prog = load_program("int main(void){ return 0; }", "t.c")
    return Analyzer(prog, AnalyzerOptions(heap_context_depth=depth))


class TestHeapBlockIdentity:
    def test_same_site_same_block(self):
        a = analyzer()
        assert a.heap_block("site1") is a.heap_block("site1")

    def test_distinct_sites_distinct_blocks(self):
        a = analyzer()
        assert a.heap_block("s1") is not a.heap_block("s2")

    def test_chain_part_of_identity(self):
        a = analyzer(depth=2)
        plain = a.heap_block("s")
        chained = a.heap_block("s", ("edge1",))
        assert plain is not chained
        assert chained.chain == ("edge1",)

    def test_display_name_includes_chain(self):
        a = analyzer(depth=2)
        b = a.heap_block("alloc", ("callerA", "callerB"))
        assert "alloc" in b.name and "callerA" in b.name


class TestRekey:
    def test_depth_zero_identity(self):
        a = analyzer(depth=0)
        b = a.heap_block("s")
        assert a.rekey_heap(b, "edge") is b

    def test_depth_one_prepends_and_truncates(self):
        a = analyzer(depth=1)
        b = a.heap_block("s")
        r1 = a.rekey_heap(b, "e1")
        assert r1.chain == ("e1",)
        r2 = a.rekey_heap(r1, "e2")
        assert r2.chain == ("e2",)  # truncated to depth 1

    def test_depth_two_keeps_two_edges(self):
        a = analyzer(depth=2)
        b = a.heap_block("s")
        r = a.rekey_heap(a.rekey_heap(b, "inner"), "outer")
        assert r.chain == ("outer", "inner")

    def test_rekey_carries_pointer_registry(self):
        a = analyzer(depth=1)
        b = a.heap_block("s")
        b.register_pointer_location(4, 0)
        r = a.rekey_heap(b, "edge")
        assert (4, 0) in r.pointer_locations

    def test_rekey_idempotent_for_same_edge(self):
        a = analyzer(depth=1)
        b = a.heap_block("s", ("edge",))
        assert a.rekey_heap(b, "edge") is b


class TestHeapNeverUnique:
    def test_chained_blocks_not_unique(self):
        assert not HeapBlock("s", ("e",)).is_unique
