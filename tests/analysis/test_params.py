"""Extended parameters (§3.2): lazy creation, subsumption, negative offsets,
uniqueness."""

import pytest

from repro import analyze_source, AnalyzerOptions
from repro.memory.blocks import ExtendedParameter


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestLazyCreation:
    def test_unreferenced_formal_creates_no_parameter(self):
        src = """
        int a;
        void ignore(int *p, int *q) { }
        int main(void) { ignore(&a, &a); return 0; }
        """
        for r in both_kinds(src):
            ptf = r.ptfs_of("ignore")[0]
            assert len(ptf.params) == 0

    def test_only_referenced_inputs_get_parameters(self):
        src = """
        int a, b;
        int *first(int *p, int *q) { return p; }
        int main(void) { int *r = first(&a, &b); return 0; }
        """
        for r in both_kinds(src):
            ptf = r.ptfs_of("first")[0]
            # only p was referenced: one parameter
            assert len(ptf.params) == 1

    def test_parameters_created_in_reference_order(self):
        src = """
        int a, b;
        void both(int **p, int **q) {
            int *t = *q;   /* q referenced first */
            int *u = *p;
        }
        int main(void) {
            int *x = &a, *y = &b;
            both(&x, &y);
            return 0;
        }
        """
        for r in both_kinds(src):
            ptf = r.ptfs_of("both")[0]
            orders = [p.order for p in ptf.params]
            assert orders == sorted(orders)


class TestSubsumption:
    def test_partial_alias_subsumes(self):
        """Figure 6: b's initial values include a's target plus another
        value; a new parameter subsumes the old one."""
        src = """
        int v1, v2;
        int *pa;
        int *pb;
        void f(int **a, int **b) {
            int *x = *a;
            int *y = *b;
        }
        int main(void) {
            int c = 0;
            pa = &v1;
            pb = c ? &v1 : &v2;   /* pb aliases pa's target plus v2 */
            f(&pa, &pb);
            return 0;
        }
        """
        for r in both_kinds(src):
            ptf = r.ptfs_of("f")[0]
            subsumed = [p for p in ptf.params if p.subsumed_by is not None]
            # the representative of any subsumed parameter is live
            for p in subsumed:
                assert p.representative().subsumed_by is None

    def test_subsumption_preserves_soundness(self):
        src = """
        int v1, v2;
        int *pa;
        int *pb;
        int *ga, *gb;
        void f(int **a, int **b) {
            ga = *a;
            gb = *b;
        }
        int main(void) {
            int c = 0;
            pa = &v1;
            pb = c ? &v1 : &v2;
            f(&pa, &pb);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert "v1" in r.points_to_names("main", "ga")
            assert r.points_to_names("main", "gb") >= {"v1", "v2"}

    def test_subsumption_disabled_option(self):
        src = """
        int v1, v2;
        int *pa, *pb;
        void f(int **a, int **b) { int *x = *a; int *y = *b; }
        int main(void) {
            int c = 0;
            pa = &v1; pb = c ? &v1 : &v2;
            f(&pa, &pb);
            return 0;
        }
        """
        # analysis stays sound with subsumption off (§3.2 says it's optional)
        r = analyze_source(src, options=AnalyzerOptions(subsumption=False))
        assert len(r.ptfs_of("f")) >= 1


class TestNegativeOffsets:
    def test_field_seen_before_struct(self):
        """Figure 7: a pointer to a field is dereferenced before a pointer
        to the enclosing struct; the struct pointer maps to a negative
        offset from the field's parameter."""
        src = """
        struct S { int a; int b; } s;
        int g1;
        int *r1; int *r2;
        void f(int **field_ptr, struct S **struct_ptr) {
            r1 = *field_ptr;             /* field reached first */
            r2 = &(*struct_ptr)->a;      /* enclosing struct later */
        }
        int main(void) {
            int *fp = &s.b;
            struct S *sp = &s;
            f(&fp, &sp);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("s" == n for n in r.points_to_names("main", "r2"))
            # r1 is the field (offset 4 of s)
            locs = r.points_to("main", "r1")
            assert any(l.offset == 4 for l in locs)

    def test_negative_offset_entry_exists(self):
        src = """
        struct S { int a; int b; } s;
        int *out;
        void f(int **field_ptr, struct S **struct_ptr) {
            int *x = *field_ptr;
            struct S *y = *struct_ptr;
            out = (int *)y;
        }
        int main(void) {
            int *fp = &s.b;
            struct S *sp = &s;
            f(&fp, &sp);
            return 0;
        }
        """
        for r in both_kinds(src):
            ptf = r.ptfs_of("f")[0]
            offsets = [
                t.offset
                for e in ptf.initial_entries
                for t in e.targets
                if isinstance(t.base, ExtendedParameter)
            ]
            assert any(o < 0 for o in offsets), offsets


class TestGlobalsAsParameters:
    def test_direct_and_indirect_global_share_parameter(self):
        """§2.2: a global referenced directly and through a pointer input
        uses the same extended parameter, capturing the alias."""
        src = """
        int g;
        int *gp;
        int out;
        void f(int **p) {
            gp = (int *)1;      /* direct reference to global gp */
            **p = 5;            /* may write through the same storage */
        }
        int main(void) {
            gp = &g;
            f(&gp);
            return 0;
        }
        """
        for r in both_kinds(src):
            ptf = r.ptfs_of("f")[0]
            gp_param = ptf.global_params.get("gp")
            assert gp_param is not None
            # the parameter for *p must be the same object
            formal_entry = next(
                e for e in ptf.initial_entries if "::p" in e.source.base.name
            )
            target = next(iter(formal_entry.targets)).base.representative()
            assert target is gp_param.representative()

    def test_global_param_uniqueness_allows_strong_update(self):
        src = """
        int a, b;
        int *g;
        void setit(void) { g = &b; }
        int main(void) {
            g = &a;
            setit();
            return 0;
        }
        """
        for r in both_kinds(src):
            # the strong update through the global's parameter kills &a
            assert r.points_to_names("main", "g") == {"b"}


class TestUniqueness:
    def test_param_with_two_sources_and_multiple_values_not_unique(self):
        src = """
        int a, b;
        int *u, *v;
        int *r1, *r2;
        void f(int **x, int **y) {
            *x = *y;    /* would be a strong update if *x unique */
            r1 = *x;
        }
        int main(void) {
            int c = 0;
            u = &a;
            v = &b;
            /* x and y both point to u or v: the shared parameter is not
               unique, so the callee's update must be weak */
            f(c ? &u : &v, c ? &u : &v);
            return 0;
        }
        """
        for r in both_kinds(src):
            # weak update: u retains &a as a possibility
            assert "a" in r.points_to_names("main", "u")
