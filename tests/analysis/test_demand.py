"""Unit tests for the demand-driven analysis layer (repro.analysis.demand).

Covers the slice construction over the SCC condensation, the
unreachable fast path (no fixpoint ever runs), the one-fixpoint-per-
generation memoization, trace instants, and the budget/deadline guard
on the demand engine.
"""

import pytest

from repro import AnalyzerOptions, load_program
from repro.analysis.demand import (
    DemandAnalysis,
    DemandEngine,
    compute_demand_slice,
    fresh_analysis_state,
    options_from_store,
)
from repro.analysis.guards import AnalysisBudget, GuardTripped
from repro.diagnostics.trace import Tracer

CHAIN = """
int g1, g2;
int *identity(int *p) { return p; }
int *wrap(int *p) { return identity(p); }
void sink(int *p) { *p = 1; }
int main(void) {
    int *a = wrap(&g1);
    sink(a);
    return 0;
}
int *orphan(int *q) { return q; }
"""


def chain_program():
    fresh_analysis_state()
    return load_program(CHAIN, "chain.c", "chain")


# -- slices -----------------------------------------------------------------


class TestSlices:
    def test_slice_is_entry_forward_closure(self):
        program = chain_program()
        sl = compute_demand_slice(program, "identity")
        assert sl.reachable
        assert "identity" in sl.procs and "main" in sl.procs
        assert "orphan" not in sl.procs

    def test_context_procs_are_transitive_callers(self):
        program = chain_program()
        sl = compute_demand_slice(program, "identity")
        assert set(sl.context_procs) == {"identity", "wrap", "main"}
        # sink never calls identity: it supplies no invocation context
        assert "sink" not in sl.context_procs

    def test_unreachable_target_yields_empty_slice(self):
        program = chain_program()
        sl = compute_demand_slice(program, "orphan")
        assert not sl.reachable
        assert sl.procs == () and sl.context_procs == ()

    def test_unknown_target_yields_empty_slice(self):
        program = chain_program()
        sl = compute_demand_slice(program, "no_such_proc")
        assert not sl.reachable

    def test_slice_memoized_per_target(self):
        analysis = DemandAnalysis(chain_program(), options=AnalyzerOptions())
        assert analysis.slice_for("wrap") is analysis.slice_for("wrap")
        assert analysis.slice_sizes() == {"wrap": 4}


# -- laziness and memoization ----------------------------------------------


class TestLaziness:
    def test_unreachable_query_never_runs_fixpoint(self):
        analysis = DemandAnalysis(chain_program(), options=AnalyzerOptions())
        engine = DemandEngine(analysis)
        ans = engine.query({"op": "points_to", "var": "q", "proc": "orphan"})
        assert ans["targets"] == []
        assert analysis.analyses == 0

    def test_one_fixpoint_across_many_queries(self):
        analysis = DemandAnalysis(chain_program(), options=AnalyzerOptions())
        engine = DemandEngine(analysis)
        engine.query({"op": "points_to", "var": "a", "proc": "main"})
        engine.query({"op": "points_to", "var": "p", "proc": "identity"})
        engine.query({"op": "modref", "proc": "sink"})
        engine.query({"op": "pointed_by", "name": "g1"})
        assert analysis.analyses == 1

    def test_reachable_answer_has_real_facts(self):
        analysis = DemandAnalysis(chain_program(), options=AnalyzerOptions())
        engine = DemandEngine(analysis)
        ans = engine.query({"op": "points_to", "var": "a", "proc": "main"})
        assert ans["targets"] == ["g1"]

    def test_unrun_analysis_is_not_degraded(self):
        analysis = DemandAnalysis(chain_program(), options=AnalyzerOptions())
        engine = DemandEngine(analysis)
        assert engine.degraded is False


# -- tracing ----------------------------------------------------------------


class TestTracing:
    def test_slice_and_analyze_instants(self):
        tracer = Tracer()
        analysis = DemandAnalysis(
            chain_program(), options=AnalyzerOptions(), tracer=tracer
        )
        engine = DemandEngine(analysis, tracer=tracer)
        engine.query({"op": "points_to", "var": "a", "proc": "main"})
        names = [e["name"] for e in tracer.events]
        assert "demand.slice" in names
        assert "demand.analyze" in names
        slice_event = next(
            e for e in tracer.events if e["name"] == "demand.slice"
        )
        assert slice_event["args"]["target"] == "main"
        assert slice_event["args"]["reachable"] is True

    def test_unreachable_slice_instant(self):
        tracer = Tracer()
        analysis = DemandAnalysis(
            chain_program(), options=AnalyzerOptions(), tracer=tracer
        )
        analysis.slice_for("orphan")
        event = next(e for e in tracer.events if e["name"] == "demand.slice")
        assert event["args"]["reachable"] is False
        assert event["args"]["procs"] == 0


# -- budget -----------------------------------------------------------------


class TestBudget:
    def test_expired_deadline_trips_guard(self):
        analysis = DemandAnalysis(chain_program(), options=AnalyzerOptions())
        engine = DemandEngine(analysis)
        budget = AnalysisBudget(deadline_seconds=0.0)
        budget.start()
        with pytest.raises(GuardTripped) as exc:
            engine.query(
                {"op": "points_to", "var": "a", "proc": "main"}, budget=budget
            )
        assert exc.value.reason == "deadline"
        assert analysis.analyses == 0  # refused before any fixpoint


# -- options reconstruction -------------------------------------------------


class TestOptionsFromStore:
    def test_recorded_fields_round_trip(self):
        store = {"options": {"strong_updates": False, "heap_context_depth": 2}}
        opts = options_from_store(store)
        assert opts.strong_updates is False
        assert opts.heap_context_depth == 2

    def test_unknown_fields_ignored(self):
        opts = options_from_store({"options": {"not_a_field": 1}})
        assert opts == AnalyzerOptions()

    def test_missing_options_block(self):
        assert options_from_store({}) == AnalyzerOptions()
