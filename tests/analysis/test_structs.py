"""Structs, unions, arrays of pointers, aggregate copies through the
analysis (§3.1, §4.4)."""

import pytest

from repro import analyze_source, AnalyzerOptions


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestFieldSensitivity:
    def test_two_fields_kept_separate(self):
        src = """
        struct S { int *a; int *b; } s;
        int x, y;
        int main(void){
            s.a = &x;
            s.b = &y;
            int *pa = s.a;
            int *pb = s.b;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "pa") == {"x"}
            assert r.points_to_names("main", "pb") == {"y"}

    def test_field_through_pointer(self):
        src = """
        struct S { int *a; int *b; };
        int x, y;
        int main(void){
            struct S s;
            struct S *p = &s;
            p->a = &x;
            p->b = &y;
            int *pa = p->a;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "pa") == {"x"}

    def test_nested_struct_fields(self):
        src = """
        struct In { int *p; };
        struct Out { int pad; struct In inner; } o;
        int g;
        int main(void){
            o.inner.p = &g;
            int *q = o.inner.p;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_field_address_passed_to_callee(self):
        src = """
        struct S { int *a; int *b; } s;
        int g;
        void set(int **slot) { *slot = &g; }
        int main(void){
            set(&s.b);
            int *q = s.b;
            int *unrelated = s.a;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}
            assert r.points_to_names("main", "unrelated") == set()


class TestUnions:
    def test_union_members_overlap(self):
        """Writing one union member is visible through the other (§3)."""
        src = """
        union U { int *p; long bits; } u;
        int g;
        int main(void){
            u.p = &g;
            int *q = (int *)u.bits;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_union_of_structs(self):
        src = """
        struct A { int *first; };
        struct B { int *alias; };
        union U { struct A a; struct B b; } u;
        int g;
        int main(void){
            u.a.first = &g;
            int *q = u.b.alias;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}


class TestArraysOfPointers:
    def test_elements_conflated(self):
        """Array elements are deliberately merged (§3.1)."""
        src = """
        int a, b;
        int *table[4];
        int main(void){
            table[0] = &a;
            table[3] = &b;
            int *q = table[1];
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"a", "b"}

    def test_array_of_structs_field_partition(self):
        """Fields partition, elements merge: all .x together, all .y
        together (the paper's stated goal, §3.1)."""
        src = """
        struct P { int *x; int *y; };
        struct P ps[8];
        int a, b;
        int main(void){
            int i = 1, j = 5;
            ps[i].x = &a;
            ps[j].y = &b;
            int *qx = ps[j].x;
            int *qy = ps[i].y;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "qx") == {"a"}
            assert r.points_to_names("main", "qy") == {"b"}

    def test_writes_through_array_are_weak(self):
        src = """
        int a, b;
        int *table[4];
        int main(void){
            table[0] = &a;
            table[0] = &b;   /* strided destination: weak update */
            int *q = table[0];
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"a", "b"}


class TestAggregateCopies:
    def test_struct_assignment_copies_pointers(self):
        src = """
        struct S { int *p; int n; };
        int g;
        int main(void){
            struct S a, b;
            a.p = &g;
            b = a;
            int *q = b.p;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_struct_copy_preserves_field_offsets(self):
        src = """
        struct S { int *first; int *second; };
        int x, y;
        int main(void){
            struct S a, b;
            a.first = &x;
            a.second = &y;
            b = a;
            int *q1 = b.first;
            int *q2 = b.second;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q1") == {"x"}
            assert r.points_to_names("main", "q2") == {"y"}

    def test_struct_copy_strong_update(self):
        src = """
        struct S { int *p; };
        int x, y;
        int main(void){
            struct S a, b;
            a.p = &x;
            b.p = &y;
            b = a;              /* strong: b.p's old value dies */
            int *q = b.p;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"x"}

    def test_struct_return_value(self):
        src = """
        struct S { int *p; int pad; };
        int g;
        struct S make(void) {
            struct S s;
            s.p = &g;
            return s;
        }
        int main(void){
            struct S got = make();
            int *q = got.p;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}

    def test_struct_passed_by_value_isolated(self):
        """Callee mutation of a by-value struct never affects the caller."""
        src = """
        struct S { int *p; };
        int x, y;
        void mutate(struct S s) { s.p = &y; }
        int main(void){
            struct S a;
            a.p = &x;
            mutate(a);
            int *q = a.p;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"x"}


class TestHeapStructs:
    def test_malloc_struct_fields(self):
        src = """
        #include <stdlib.h>
        struct S { int *a; int *b; };
        int x, y;
        int main(void){
            struct S *s = malloc(sizeof(struct S));
            s->a = &x;
            s->b = &y;
            int *qa = s->a;
            int *qb = s->b;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "qa") == {"x"}
            assert r.points_to_names("main", "qb") == {"y"}

    def test_linked_structs_on_heap(self):
        src = """
        #include <stdlib.h>
        struct N { struct N *next; int *data; };
        int g;
        int main(void){
            struct N *a = malloc(sizeof(struct N));
            struct N *b = malloc(sizeof(struct N));
            a->next = b;
            b->data = &g;
            int *q = a->next->data;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "q") == {"g"}
