"""Query API (AnalysisResult): points-to, aliasing, purity, call graphs."""

import pytest

from repro import analyze_source, load_project, run_analysis


class TestPointsTo:
    def test_unknown_variable_empty(self):
        r = analyze_source("int main(void){ return 0; }")
        assert r.points_to_names("main", "nonexistent") == set()

    def test_local_and_global_of_same_name(self):
        src = """
        int a, target;
        int *v;
        int main(void){
            int *local_v = &a;
            v = &target;
            return 0;
        }
        """
        r = analyze_source(src)
        assert r.points_to_names("main", "v") == {"target"}
        assert r.points_to_names("main", "local_v") == {"a"}

    def test_points_to_gives_location_shapes(self):
        src = "int arr[10]; int main(void){ int *p = &arr[3]; return 0; }"
        r = analyze_source(src)
        locs = r.points_to("main", "p")
        assert any(l.stride == 4 for l in locs)

    def test_display_name_strips_scope(self):
        src = "int main(void){ int x; int *p = &x; return 0; }"
        r = analyze_source(src)
        assert r.points_to_names("main", "p") == {"x"}


class TestMayAlias:
    def test_same_target_aliases(self):
        src = "int a; int main(void){ int *p = &a; int *q = &a; return 0; }"
        r = analyze_source(src)
        assert r.may_alias("main", "p", "q")

    def test_disjoint_targets_do_not(self):
        src = "int a, b; int main(void){ int *p = &a; int *q = &b; return 0; }"
        r = analyze_source(src)
        assert not r.may_alias("main", "p", "q")

    def test_field_granular_aliasing(self):
        src = """
        struct S { int a; int b; } s;
        int main(void){ int *p = &s.a; int *q = &s.b; return 0; }
        """
        r = analyze_source(src)
        assert not r.may_alias("main", "p", "q")

    def test_array_elements_alias(self):
        src = """
        int arr[10];
        int main(void){
            int i = 1, j = 2;
            int *p = &arr[i]; int *q = &arr[j];
            return 0;
        }
        """
        r = analyze_source(src)
        assert r.may_alias("main", "p", "q")  # element-insensitive

    def test_formals_may_alias(self):
        src = """
        int a;
        void f(int *p, int *q) { int t = *p + *q; }
        int main(void){ f(&a, &a); return 0; }
        """
        r = analyze_source(src)
        assert r.formals_may_alias("f")

    def test_formals_do_not_alias(self):
        src = """
        int a, b;
        void f(int *p, int *q) { int t = *p + *q; }
        int main(void){ f(&a, &b); return 0; }
        """
        r = analyze_source(src)
        assert not r.formals_may_alias("f")


class TestPurity:
    def test_pure_helper(self):
        src = """
        double square(double x) { return x * x; }
        int main(void){ double d = square(3.0); return (int)d; }
        """
        r = analyze_source(src)
        assert r.is_pure("square")

    def test_global_writer_impure(self):
        src = """
        int g;
        void poke(void) { g = 1; }
        int main(void){ poke(); return 0; }
        """
        r = analyze_source(src)
        # poke assigns a global... but g holds no pointers; our purity is
        # about pointer effects: writing a scalar global is invisible to
        # the points-to summary, so this may be "pure" — use a pointer
        src2 = """
        int g;
        int *gp;
        void poke(void) { gp = &g; }
        int main(void){ poke(); return 0; }
        """
        r2 = analyze_source(src2)
        assert not r2.is_pure("poke")

    def test_out_param_writer_impure(self):
        src = """
        int g;
        void set(int **p) { *p = &g; }
        int main(void){ int *q; set(&q); return 0; }
        """
        r = analyze_source(src)
        assert not r.is_pure("set")

    def test_transitively_impure(self):
        src = """
        int g; int *gp;
        void leaf(void) { gp = &g; }
        int wrapper(void) { leaf(); return 0; }
        int main(void){ return wrapper(); }
        """
        r = analyze_source(src)
        assert not r.is_pure("wrapper")

    def test_unknown_callee_impure(self):
        src = """
        void mystery(void);
        int f(void) { mystery(); return 0; }
        int main(void){ return f(); }
        """
        r = analyze_source(src)
        assert not r.is_pure("f")

    def test_pure_libc_allowed(self):
        src = """
        #include <math.h>
        double f(double x) { return sqrt(x) + sin(x); }
        int main(void){ return (int)f(2.0); }
        """
        r = analyze_source(src)
        assert r.is_pure("f")


class TestCallGraph:
    def test_direct_edges(self):
        src = """
        void b(void) { }
        void a(void) { b(); }
        int main(void){ a(); return 0; }
        """
        r = analyze_source(src)
        g = r.call_graph()
        assert g["main"] == {"a"} and g["a"] == {"b"}

    def test_graph_covers_all_procs(self):
        src = "void lonely(void) { } int main(void){ return 0; }"
        r = analyze_source(src)
        g = r.call_graph()
        assert set(g) == {"lonely", "main"}


class TestMultiFile:
    def test_cross_unit_pointer_flow(self):
        units = [
            ("lib.c", """
                int storage;
                int *exported;
                void install(int *p) { exported = p; }
            """),
            ("app.c", """
                extern int storage;
                extern int *exported;
                void install(int *p);
                int main(void) {
                    install(&storage);
                    int *q = exported;
                    return q != 0;
                }
            """),
        ]
        prog = load_project(units)
        r = run_analysis(prog)
        assert r.points_to_names("main", "q") == {"storage"}

    def test_shared_struct_definition(self):
        header = """
        struct shared { int *field; int tag; };
        """
        units = [
            ("a.c", header + """
                int g;
                void fill(struct shared *s) { s->field = &g; }
            """),
            ("b.c", header + """
                void fill(struct shared *s);
                int main(void) {
                    struct shared s;
                    fill(&s);
                    int *q = s.field;
                    return 0;
                }
            """),
        ]
        prog = load_project(units)
        r = run_analysis(prog)
        assert r.points_to_names("main", "q") == {"g"}

    def test_source_lines_accumulate(self):
        units = [("a.c", "int x;\nint y;\n"), ("b.c", "int main(void){return 0;}\n")]
        prog = load_project(units)
        assert prog.source_lines >= 4


class TestStatsObject:
    def test_row_shape(self):
        r = analyze_source("int main(void){ return 0; }")
        row = r.stats().row()
        assert len(row) == 4

    def test_max_ptfs(self):
        src = """
        int a;
        int *u, *v;
        void two(int **x, int **y) { *x = *y; }
        int main(void){
            u = &a;
            two(&u, &v);
            two(&u, &u);
            return 0;
        }
        """
        r = analyze_source(src)
        assert r.stats().max_ptfs == 2
