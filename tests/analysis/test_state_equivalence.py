"""Property test: dense and sparse states agree on randomized sequences.

Hypothesis drives random assignment/φ sequences over linear and diamond
flow graphs and checks that

* ``DenseState`` and ``SparseState`` return identical ``lookup``,
  ``lookup_overlapping`` and ``summary`` results at every node,
* the sparse state answers identically with the lookup memoization
  enabled and disabled — including when lookups are interleaved with the
  writes, which exercises invalidation rather than just cold-cache
  warmup,
* an optional parameter subsumption mid-sequence does not break either
  equivalence.

This is the state-level counterpart of ``test_property.py`` (which
compares whole analyses over generated C sources): it reaches operation
interleavings the evaluator never produces, which is exactly where a
stale-cache bug would hide.

The generated operations stay inside the domain over which the two
representations promise equivalence, mirroring what the evaluator emits:
strong updates are word-sized (``size=4``) at word-aligned stride-0
locations, and writes never go through the strided whole-block set (the
dense representation models a covering strong update by *deleting* the
overlapping entries — precise for reads the update covers, exactly like
the sparse fence — at the cost of the uncovered-read history the sparse
walk retains; mixed-width kills and strided entries answer differently
there by design).  Strided and unaligned location sets still appear as
*probes*, and reads of width 1/4/8 run against word-sized updates, so the
fence-coverage logic is exercised from both sides.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dominators import finalize_graph
from repro.ir.nodes import BranchNode, EntryNode, ExitNode, MeetNode
from repro.memory.blocks import ExtendedParameter, HeapBlock, LocalBlock
from repro.memory.locset import LocationSet
from repro.memory.pointsto import DenseState, SparseState


class FakeProc:
    name = "fake"


def linear_graph(n):
    proc = FakeProc()
    entry = EntryNode(proc)
    nodes = [BranchNode(proc) for _ in range(n)]
    exit_ = ExitNode(proc)
    prev = entry
    for nd in nodes:
        prev.add_succ(nd)
        prev = nd
    prev.add_succ(exit_)
    finalize_graph(entry)
    # (ordered nodes, assignable nodes, meet nodes)
    return entry, [entry, *nodes, exit_], nodes, [], exit_


def diamond_graph():
    proc = FakeProc()
    entry = EntryNode(proc)
    branch = BranchNode(proc)
    left = BranchNode(proc)
    right = BranchNode(proc)
    meet = MeetNode(proc)
    tail = BranchNode(proc)
    exit_ = ExitNode(proc)
    entry.add_succ(branch)
    branch.add_succ(left)
    branch.add_succ(right)
    left.add_succ(meet)
    right.add_succ(meet)
    meet.add_succ(tail)
    tail.add_succ(exit_)
    finalize_graph(entry)
    ordered = [entry, branch, left, right, meet, tail, exit_]
    return entry, ordered, [branch, left, right, tail], [meet], exit_


def make_pool():
    """Fresh blocks/locations per example (uids must not leak across)."""
    s = LocalBlock("s", "fake", size=8)
    h = HeapBlock("site")
    p1 = ExtendedParameter("1_p", "fake")
    p2 = ExtendedParameter("2_p", "fake")
    targets = [
        LocationSet(LocalBlock("t1", "fake"), 0, 0),
        LocationSet(LocalBlock("t2", "fake"), 0, 0),
        LocationSet(p1, 0, 0),
    ]
    # writes: word-aligned stride-0 sets only (see module docstring)
    write_locs = [
        LocationSet(s, 0, 0),
        LocationSet(s, 4, 0),
        LocationSet(h, 0, 0),
        LocationSet(p1, 0, 0),
    ]
    # probes additionally cover the strided whole-block set
    probe_locs = [*write_locs, LocationSet(s, 0, 1)]
    return write_locs, probe_locs, targets, p1, p2


ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 99),  # node pick (mod #assignable)
        st.integers(0, 3),  # write loc pick
        st.sets(st.integers(0, 2), max_size=3),  # value pick
        st.booleans(),  # want strong
        st.booleans(),  # interleave a lookup after this op
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(
    graph_kind=st.sampled_from(["linear3", "linear5", "diamond"]),
    ops=ops_strategy,
    subsume=st.booleans(),
    probe_width=st.sampled_from([1, 4, 8]),
)
def test_dense_sparse_and_cache_equivalence(graph_kind, ops, subsume, probe_width):
    if graph_kind == "diamond":
        entry, ordered, assignable, meets, exit_ = diamond_graph()
    else:
        n = 3 if graph_kind == "linear3" else 5
        entry, ordered, assignable, meets, exit_ = linear_graph(n)
    write_locs, probe_locs, targets, p1, p2 = make_pool()

    dense = DenseState(entry)
    cached = SparseState(entry, lookup_cache=True)
    plain = SparseState(entry, lookup_cache=False)
    states = (dense, cached, plain)

    # Route each op to a *distinct* node (picked pseudo-randomly from the
    # unused ones), then replay in topological order so the dense state's
    # merge_at discipline is respected.  One assignment per node mirrors
    # the evaluator: the representations make no intra-node ordering
    # promise (dense applies a node's ops sequentially, sparse's per-node
    # def map is unordered), so two ops on one node would compare
    # semantics neither ever exhibits.
    unused = list(assignable)
    by_node: dict[int, list] = {}
    for node_pick, loc_pick, val_pick, want_strong, probe in ops:
        if not unused:
            break
        node = unused.pop(node_pick % len(unused))
        by_node[node.uid] = [(loc_pick, val_pick, want_strong, probe)]

    evaluated: set[int] = set()
    for node in ordered:
        if node is not entry:
            dense.merge_at(node, evaluated)
        if node in meets:
            # evaluate pending φs the way the evaluator would
            for phi_loc in sorted(
                cached.phi_locations(node),
                key=lambda l: (l.base.uid, l.offset, l.stride),
            ):
                for sp in (cached, plain):
                    merged = frozenset()
                    for pred in node.preds:
                        merged |= sp.lookup(phi_loc, pred, before=False)
                    sp.assign_phi(phi_loc, merged, node)
        for loc_pick, val_pick, want_strong, probe in by_node.get(node.uid, ()):
            loc = write_locs[loc_pick]
            values = frozenset(targets[i] for i in sorted(val_pick))
            strong = want_strong and loc.is_unique
            for stt in states:
                stt.assign(loc, values, node, strong=strong, size=4)
            if probe:  # interleaved lookups: hit the caches mid-sequence
                got = [
                    stt.lookup_overlapping(loc, node, width=probe_width, before=False)
                    for stt in states
                ]
                assert got[0] == got[1] == got[2]
        evaluated.add(node.uid)

    if subsume:
        p1.subsumed_by = p2
        # dense observes subsumption lazily; sparse via the global epoch

    for node in ordered[1:]:
        for loc in probe_locs:
            d = dense.lookup_overlapping(loc, node, width=probe_width, before=False)
            c = cached.lookup_overlapping(loc, node, width=probe_width, before=False)
            p = plain.lookup_overlapping(loc, node, width=probe_width, before=False)
            assert c == p, (str(loc), node.uid, c, p)
            assert d == c, (str(loc), node.uid, d, c)
            lc = cached.lookup(loc, node, before=False)
            lp = plain.lookup(loc, node, before=False)
            assert lc == lp

    assert cached.summary(exit_) == plain.summary(exit_)
    assert dense.summary(exit_) == cached.summary(exit_)
