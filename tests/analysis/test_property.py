"""Property-based tests over generated pointer programs.

Hypothesis builds small-but-gnarly C programs from a pool of globals,
pointers and pointer-pointers with conditional control flow and calls, and
checks cross-cutting invariants:

* the sparse (§4.2) and dense state representations compute identical
  points-to sets;
* Wilson-Lam results are a subset of Andersen's on every variable
  (context sensitivity only ever removes spurious values);
* Andersen's are a subset of Steensgaard's pointee classes;
* analysis is deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AnalyzerOptions, analyze_source, load_program
from repro.baselines import andersen_analyze, steensgaard_analyze

INTS = ["x", "y", "z"]
PTRS = ["p", "q", "r"]
PPTRS = ["pp", "qq"]


@st.composite
def statements(draw, depth=0):
    kind = draw(
        st.sampled_from(
            ["addr", "copy", "load", "store", "ppaddr", "null", "if", "while", "call"]
            if depth < 2
            else ["addr", "copy", "load", "store", "ppaddr", "null", "call"]
        )
    )
    if kind == "addr":
        p = draw(st.sampled_from(PTRS))
        x = draw(st.sampled_from(INTS))
        return f"{p} = &{x};"
    if kind == "copy":
        a, b = draw(st.sampled_from(PTRS)), draw(st.sampled_from(PTRS))
        return f"{a} = {b};"
    if kind == "load":
        p = draw(st.sampled_from(PTRS))
        pp = draw(st.sampled_from(PPTRS))
        return f"{p} = *{pp};"
    if kind == "store":
        pp = draw(st.sampled_from(PPTRS))
        p = draw(st.sampled_from(PTRS))
        return f"*{pp} = {p};"
    if kind == "ppaddr":
        pp = draw(st.sampled_from(PPTRS))
        p = draw(st.sampled_from(PTRS))
        return f"{pp} = &{p};"
    if kind == "null":
        p = draw(st.sampled_from(PTRS))
        return f"{p} = 0;"
    if kind == "call":
        p = draw(st.sampled_from(PTRS))
        x = draw(st.sampled_from(INTS))
        which = draw(st.sampled_from(["set_ptr", "get_addr", "rec", "fnptr"]))
        if which == "set_ptr":
            return f"set_ptr(&{p}, &{x});"
        if which == "rec":
            return f"rec_store(&{p}, &{x}, 3);"
        if which == "fnptr":
            return f"{p} = table[0]();"
        return f"{p} = get_addr();"
    body = draw(st.lists(statements(depth=depth + 1), min_size=1, max_size=3))
    inner = "\n".join(body)
    if kind == "if":
        has_else = draw(st.booleans())
        if has_else:
            other = draw(st.lists(statements(depth=depth + 1), min_size=1, max_size=2))
            return f"if (cond) {{ {inner} }} else {{ {' '.join(other)} }}"
        return f"if (cond) {{ {inner} }}"
    return f"while (cond) {{ {inner} cond--; }}"


@st.composite
def programs(draw):
    body = draw(st.lists(statements(), min_size=1, max_size=10))
    stmts = "\n    ".join(body)
    return f"""
int {', '.join(INTS)};
int cond;
int *{', *'.join(PTRS)};
int **{', **'.join(PPTRS)};

void set_ptr(int **slot, int *value) {{ *slot = value; }}
int *get_addr(void) {{ return &{INTS[0]}; }}

/* recursion + an indirect call keep the interprocedural machinery honest */
void rec_store(int **slot, int *value, int depth) {{
    if (depth <= 0) {{ *slot = value; return; }}
    rec_store(slot, value, depth - 1);
}}
typedef int *(*getter)(void);
static getter table[1] = {{ get_addr }};

int main(void) {{
    {stmts}
    return 0;
}}
"""


ALL_VARS = PTRS + PPTRS


@given(programs())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_sparse_equals_dense(source):
    sparse = analyze_source(source, options=AnalyzerOptions(state_kind="sparse"))
    dense = analyze_source(source, options=AnalyzerOptions(state_kind="dense"))
    for var in ALL_VARS:
        s = sparse.points_to_names("main", var)
        d = dense.points_to_names("main", var)
        assert s == d, f"{var}: sparse {s} != dense {d}\n{source}"


@given(programs())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_wilson_lam_subset_of_andersen(source):
    wl = analyze_source(source)
    ai = andersen_analyze(load_program(source, "gen.c"))
    for var in ALL_VARS:
        w = wl.points_to_names("main", var)
        a = ai.points_to_names("main", var)
        assert w <= a, f"{var}: WL {w} not within Andersen {a}\n{source}"


@given(programs())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_andersen_subset_of_steensgaard(source):
    ai = andersen_analyze(load_program(source, "gen.c"))
    st_res = steensgaard_analyze(load_program(source, "gen.c"))
    for var in ALL_VARS:
        a = ai.points_to_names("main", var)
        s = st_res.points_to_names("main", var)
        assert a <= s, f"{var}: Andersen {a} not within Steensgaard {s}\n{source}"


@given(programs())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_analysis_deterministic(source):
    r1 = analyze_source(source)
    r2 = analyze_source(source)
    for var in ALL_VARS:
        assert r1.points_to_names("main", var) == r2.points_to_names("main", var)
    assert r1.stats().total_ptfs == r2.stats().total_ptfs


@given(programs())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_strong_updates_only_remove(source):
    """Turning strong updates off can only grow points-to sets."""
    with_su = analyze_source(source, options=AnalyzerOptions(strong_updates=True))
    without = analyze_source(source, options=AnalyzerOptions(strong_updates=False))
    for var in ALL_VARS:
        a = with_su.points_to_names("main", var)
        b = without.points_to_names("main", var)
        assert a <= b, f"{var}: {a} vs {b}\n{source}"
