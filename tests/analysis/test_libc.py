"""Library-function summaries (§1): allocators, copies, callbacks."""

import pytest

from repro import analyze_source, AnalyzerOptions
from repro.analysis.libc import LibcSummaries


def both_kinds(src):
    return [
        analyze_source(src, options=AnalyzerOptions(state_kind=k))
        for k in ("sparse", "dense")
    ]


class TestAllocators:
    def test_malloc_distinct_sites(self):
        src = """
        #include <stdlib.h>
        int main(void) {
            int *p = malloc(4);
            int *q = malloc(4);
            return 0;
        }
        """
        for r in both_kinds(src):
            p = r.points_to_names("main", "p")
            q = r.points_to_names("main", "q")
            assert p and q and p != q  # separate static allocation sites

    def test_calloc(self):
        src = "#include <stdlib.h>\nint main(void){ int *p = calloc(2, 4); return 0; }"
        for r in both_kinds(src):
            assert any("heap" in n for n in r.points_to_names("main", "p"))

    def test_realloc_keeps_contents(self):
        src = """
        #include <stdlib.h>
        int g;
        int main(void) {
            int **p = malloc(8);
            *p = &g;
            p = realloc(p, 16);
            int *q = *p;
            return 0;
        }
        """
        for r in both_kinds(src):
            assert "g" in r.points_to_names("main", "q")

    def test_strdup_is_fresh_heap(self):
        src = """
        #include <string.h>
        int main(void) { char *s = strdup("hi"); return 0; }
        """
        for r in both_kinds(src):
            assert any("heap" in n for n in r.points_to_names("main", "s"))

    def test_free_is_noop(self):
        src = """
        #include <stdlib.h>
        int main(void) {
            int *p = malloc(4);
            free(p);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("heap" in n for n in r.points_to_names("main", "p"))


class TestStringFunctions:
    def test_strcpy_returns_dest(self):
        src = """
        #include <string.h>
        int main(void) {
            char buf[16];
            char *r = strcpy(buf, "x");
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("buf" in n for n in r.points_to_names("main", "r"))

    def test_strchr_points_into_argument(self):
        src = """
        #include <string.h>
        int main(void) {
            char buf[16];
            char *r = strchr(buf, 'a');
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("buf" in n for n in r.points_to_names("main", "r"))

    def test_memcpy_moves_pointers(self):
        src = """
        #include <string.h>
        int g;
        int main(void) {
            int *src_arr[2];
            int *dst_arr[2];
            src_arr[0] = &g;
            memcpy(dst_arr, src_arr, sizeof(src_arr));
            int *p = dst_arr[0];
            return 0;
        }
        """
        for r in both_kinds(src):
            assert "g" in r.points_to_names("main", "p")

    def test_strtol_endptr(self):
        src = """
        #include <stdlib.h>
        int main(void) {
            char buf[8];
            char *end;
            long v = strtol(buf, &end, 10);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("buf" in n for n in r.points_to_names("main", "end"))

    def test_getenv_static_storage(self):
        src = """
        #include <stdlib.h>
        int main(void) { char *home = getenv("HOME"); return 0; }
        """
        for r in both_kinds(src):
            assert any("getenv" in n for n in r.points_to_names("main", "home"))


class TestCallbacks:
    def test_qsort_analyzes_comparator(self):
        src = """
        #include <stdlib.h>
        int *seen;
        int cmp(const void *a, const void *b) {
            seen = (int *)a;
            return *(int *)a - *(int *)b;
        }
        int main(void) {
            int vals[8];
            qsort(vals, 8, sizeof(int), cmp);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("vals" in n for n in r.points_to_names("main", "seen"))
            assert len(r.ptfs_of("cmp")) >= 1

    def test_bsearch_return_and_callback(self):
        src = """
        #include <stdlib.h>
        int cmp(const void *a, const void *b) { return 0; }
        int main(void) {
            int vals[8];
            int key = 3;
            int *hit = bsearch(&key, vals, 8, sizeof(int), cmp);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("vals" in n for n in r.points_to_names("main", "hit"))
            assert len(r.ptfs_of("cmp")) >= 1

    def test_atexit_analyzes_handler(self):
        src = """
        #include <stdlib.h>
        int g;
        int *p;
        void cleanup(void) { p = &g; }
        int main(void) { atexit(cleanup); return 0; }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}

    def test_signal_returns_old_handler(self):
        src = """
        #include <signal.h>
        void handler(int sig) { }
        int main(void) {
            void (*old)(int) = signal(SIGINT, handler);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("handler" in n for n in r.points_to_names("main", "old"))


class TestStdio:
    def test_fopen_returns_file_block(self):
        src = """
        #include <stdio.h>
        int main(void) { FILE *f = fopen("x", "r"); return 0; }
        """
        for r in both_kinds(src):
            assert any("heap" in n for n in r.points_to_names("main", "f"))

    def test_fgets_returns_buffer(self):
        src = """
        #include <stdio.h>
        int main(void) {
            char line[64];
            FILE *f = fopen("x", "r");
            char *got = fgets(line, 64, f);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert any("line" in n for n in r.points_to_names("main", "got"))

    def test_printf_harmless(self):
        src = """
        #include <stdio.h>
        int g;
        int main(void) {
            int *p = &g;
            printf("%p\\n", (void *)p);
            return 0;
        }
        """
        for r in both_kinds(src):
            assert r.points_to_names("main", "p") == {"g"}


class TestExternalPolicy:
    def test_unknown_external_havoc(self):
        src = """
        void mystery(int **p);
        int main(void) {
            int *q = 0;
            mystery(&q);
            return 0;
        }
        """
        r = analyze_source(src, options=AnalyzerOptions(external_policy="havoc"))
        # q may now point at the external world
        assert r.points_to_names("main", "q") != set()

    def test_unknown_external_ignore(self):
        src = """
        void mystery(int **p);
        int main(void) {
            int *q = 0;
            mystery(&q);
            return 0;
        }
        """
        r = analyze_source(src, options=AnalyzerOptions(external_policy="ignore"))
        assert r.points_to_names("main", "q") == set()

    def test_registry_covers_common_names(self):
        libc = LibcSummaries()
        for name in ("malloc", "free", "memcpy", "strcpy", "qsort", "printf",
                     "fopen", "strtol", "strchr", "realloc"):
            assert libc.handles(name), name

    def test_registry_rejects_unknown(self):
        assert not LibcSummaries().handles("definitely_not_libc")
