"""Resource guards and the graceful-degradation ladder.

Every guard (deadline, pass budget, call depth, PTF cap, state size,
injected faults) is tripped in isolation and checked for the same
contract:

* **default mode** — the run completes, the degradation report names the
  guard, and the partial result is a *superset* of the precise one
  (degradation is conservative, never unsound);
* **strict mode** — the same trip raises :class:`GuardTripped`.

The hypothesis property at the bottom generalizes the superset claim to
random pointer programs; the frontend tests cover the quarantine path
for unparseable / unlowerable translation units.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import AnalyzerOptions, analyze_source, load_program
from repro.analysis.engine import Analyzer
from repro.analysis.guards import (
    AnalysisBudget,
    DegradationReport,
    GuardTripped,
    conservative_region,
)
from repro.analysis.results import run_analysis
from repro.diagnostics.faults import FaultPlan
from repro.frontend.parser import load_project

from .test_property import ALL_VARS, programs

CHAIN_SRC = """
int x;
int *gp;
void leaf(int *p) { gp = p; }
void mid(int *p) { leaf(p); }
void top(int *p) { mid(p); }
int main(void) { top(&x); return 0; }
"""

LOOP_SRC = """
int a, b, c;
int main(void) {
    int *p = &a;
    while (c) { p = c ? &a : &b; }
    return 0;
}
"""


def _degraded_run(src: str, **option_kwargs):
    result = analyze_source(src, options=AnalyzerOptions(**option_kwargs))
    return result, result.degradation


class TestDeadline:
    def test_zero_deadline_degrades(self):
        result, report = _degraded_run(CHAIN_SRC, deadline_seconds=0.0)
        assert not report.ok
        assert "deadline" in report.reasons()
        assert result.analyzer.metrics.guard_trips >= 1

    def test_zero_deadline_strict_raises(self):
        with pytest.raises(GuardTripped) as exc:
            analyze_source(
                CHAIN_SRC,
                options=AnalyzerOptions(deadline_seconds=0.0, strict=True),
            )
        assert exc.value.reason == "deadline"

    def test_generous_deadline_is_clean(self):
        result, report = _degraded_run(CHAIN_SRC, deadline_seconds=3600.0)
        assert report.ok
        assert result.points_to_names("main", "gp") == {"x"}


class TestCallDepth:
    def test_depth_guard_degrades_but_stays_sound(self):
        precise = analyze_source(CHAIN_SRC)
        result, report = _degraded_run(CHAIN_SRC, max_call_depth=1)
        assert not report.ok
        assert "call_depth" in report.reasons()
        # the havoc stub may over-approximate, but must keep the truth
        assert precise.points_to_names("main", "gp") <= result.points_to_names(
            "main", "gp"
        )
        assert result.analyzer.metrics.degraded_calls >= 1

    def test_depth_guard_strict_raises(self):
        with pytest.raises(GuardTripped) as exc:
            analyze_source(
                CHAIN_SRC, options=AnalyzerOptions(max_call_depth=1, strict=True)
            )
        assert exc.value.reason == "call_depth"

    def test_records_carry_call_sites(self):
        _, report = _degraded_run(CHAIN_SRC, max_call_depth=1)
        assert any(rec.call_site for rec in report.records)

    def test_huge_recursion_does_not_hit_python_limit(self):
        # 500 nested calls with the default budget of 200: the depth
        # guard must fire before CPython's RecursionError does
        parts = ["int x; int *gp;", "void f0(int *p) { gp = p; }"]
        n = 500
        for i in range(1, n):
            parts.append(f"void f{i}(int *p) {{ f{i - 1}(p); }}")
        parts.append(f"int main(void) {{ f{n - 1}(&x); return 0; }}")
        result, report = _degraded_run("\n".join(parts))
        assert "call_depth" in report.reasons()
        # main's own call must still bind soundly
        assert result.points_to_names("main", "gp") >= set()


class TestMaxPasses:
    def test_pass_budget_degrades(self):
        result, report = _degraded_run(LOOP_SRC, max_passes=1)
        assert "max_passes" in report.reasons()
        assert report.partial  # main itself tripped

    def test_pass_budget_on_callee_keeps_main_sound(self):
        src = """
        int a, b, c;
        int *gp;
        void churn(void) {
            int *p = &a;
            while (c) { p = c ? &a : &b; }
            gp = p;
        }
        int main(void) { churn(); return 0; }
        """
        precise = analyze_source(src)
        result, report = _degraded_run(src, max_passes=1)
        assert "max_passes" in report.reasons()
        assert "churn" in report.quarantined
        assert precise.points_to_names("main", "gp") <= result.points_to_names(
            "main", "gp"
        )


class TestPtfCap:
    def test_cap_degrades_unseen_procedures(self):
        result, report = _degraded_run(CHAIN_SRC, max_ptfs_total=1)
        assert "ptf_cap" in report.reasons()
        precise = analyze_source(CHAIN_SRC)
        assert precise.points_to_names("main", "gp") <= result.points_to_names(
            "main", "gp"
        )


class TestStateEntries:
    def test_state_size_guard_trips(self):
        result, report = _degraded_run(CHAIN_SRC, max_state_entries=0)
        assert "state_entries" in report.reasons()


class TestInjectedFaults:
    def test_exhaustion_quarantines_and_stays_sound(self):
        plan = FaultPlan(exhaust_names=frozenset({"leaf"}))
        precise = analyze_source(CHAIN_SRC)
        result, report = _degraded_run(CHAIN_SRC, faults=plan)
        assert "leaf" in report.quarantined
        assert "injected" in report.reasons()
        assert precise.points_to_names("main", "gp") <= result.points_to_names(
            "main", "gp"
        )

    def test_nonconvergence_trips_pass_budget(self):
        plan = FaultPlan(nonconverge_names=frozenset({"leaf"}))
        _, report = _degraded_run(CHAIN_SRC, faults=plan, max_passes=5)
        assert "max_passes" in report.reasons()
        assert "leaf" in report.quarantined

    def test_injection_is_deterministic(self):
        plan = FaultPlan(seed=7, exhaust_rate=0.5)
        first = [plan.exhaust(f"proc{i}") for i in range(50)]
        again = [
            FaultPlan(seed=7, exhaust_rate=0.5).exhaust(f"proc{i}")
            for i in range(50)
        ]
        assert first == again
        assert any(first) and not all(first)

    def test_strict_mode_raises_injected(self):
        plan = FaultPlan(exhaust_names=frozenset({"leaf"}))
        with pytest.raises(GuardTripped) as exc:
            analyze_source(
                CHAIN_SRC, options=AnalyzerOptions(faults=plan, strict=True)
            )
        assert exc.value.reason == "injected"


class TestReportShape:
    def test_clean_run_has_no_degradation_key(self):
        result = analyze_source(CHAIN_SRC)
        assert result.degradation.ok
        assert "degradation" not in result.to_dict()

    def test_degraded_run_serializes(self):
        import json

        result, report = _degraded_run(CHAIN_SRC, max_call_depth=1)
        payload = result.to_dict()["degradation"]
        json.dumps(payload)  # must be JSON-clean
        assert payload["records"]
        assert payload["reasons"]["call_depth"] >= 1
        stats = result.analyzer.stats_dict()
        assert stats["degradation"]["reasons"] == payload["reasons"]

    def test_records_deduplicate_across_passes(self):
        report = DegradationReport()
        for _ in range(5):
            report.record("p", "deadline", "detail", call_site="main@x.c:1")
        assert len(report.records) == 1

    def test_budget_snapshot_in_report(self):
        result, report = _degraded_run(CHAIN_SRC, max_call_depth=1)
        budget = result.to_dict()["degradation"]["budget"]
        assert budget["max_call_depth"] == 1


class TestConservativeRegion:
    def test_region_covers_reached_globals(self):
        prog = load_program(CHAIN_SRC, "t.c")
        region = conservative_region(prog, "leaf")
        assert "gp" in region.globals

    def test_indirect_call_blurs_to_world(self):
        src = """
        int g;
        void a(void) { g = 1; }
        void (*fp)(void) = a;
        void caller(void) { fp(); }
        int main(void) { caller(); return 0; }
        """
        prog = load_program(src, "t.c")
        region = conservative_region(prog, "caller")
        assert region.world


class TestFrontendQuarantine:
    GOOD = (
        "int g; int *gp;\n"
        "void set(int *p) { gp = p; }\n"
        "int main(void) { int x; set(&x); return 0; }\n"
    )

    def test_parse_error_quarantines_unit(self):
        prog = load_project(
            [("good.c", self.GOOD), ("bad.c", "int broken( {{{")], tolerant=True
        )
        assert [f.reason for f in prog.frontend_failures] == ["parse_error"]
        result = run_analysis(prog)
        assert not result.degradation.ok
        assert result.points_to_names("main", "gp") == {"x"}

    def test_lower_error_quarantines_single_procedure(self):
        units = [
            ("a.c", self.GOOD),
            ("b.c", "int *weird(int *q) { break; return q; }"),
        ]
        prog = load_project(units, tolerant=True)
        fault = prog.frontend_failures[0]
        assert fault.reason == "lower_error" and fault.proc == "weird"
        assert "weird" not in prog.procedures
        assert "main" in prog.procedures  # the rest of the project survives

    def test_strict_load_still_raises(self):
        from repro.frontend.parser import ParseError

        with pytest.raises(ParseError):
            load_project([("bad.c", "int broken( {{{")])

    def test_injected_parse_failure(self):
        plan = FaultPlan(parse_names=frozenset({"bad.c"}))
        prog = load_project(
            [("good.c", self.GOOD), ("bad.c", self.GOOD)],
            tolerant=True,
            faults=plan,
        )
        assert [f.reason for f in prog.frontend_failures] == ["injected"]


class TestBudgetObject:
    def test_from_options_copies_knobs(self):
        opts = AnalyzerOptions(
            deadline_seconds=5.0, max_passes=7, max_call_depth=9
        )
        budget = AnalysisBudget.from_options(opts)
        assert budget.deadline_seconds == 5.0
        assert budget.max_passes == 7
        assert budget.max_call_depth == 9

    def test_deadline_clock(self):
        budget = AnalysisBudget(deadline_seconds=3600.0)
        budget.start()
        assert not budget.deadline_exceeded()
        assert budget.remaining_seconds() > 0
        expired = AnalysisBudget(deadline_seconds=0.0)
        expired.start()
        assert expired.deadline_exceeded()


# ---------------------------------------------------------------------------
# the soundness property: degradation only ever *adds* points-to targets
# ---------------------------------------------------------------------------


@given(programs())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_degraded_superset_of_precise(source):
    """With every call from main havoced (depth budget 1), each variable's
    degraded points-to set must contain the precise one."""
    precise = analyze_source(source)
    degraded = analyze_source(source, options=AnalyzerOptions(max_call_depth=1))
    for var in ALL_VARS:
        p = precise.points_to_names("main", var)
        d = degraded.points_to_names("main", var)
        assert p <= d, f"{var}: precise {p} not within degraded {d}\n{source}"


@given(programs())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_injected_exhaustion_superset_of_precise(source):
    """Quarantining every helper procedure keeps main's results a superset."""
    plan = FaultPlan(
        exhaust_names=frozenset({"set_ptr", "get_addr", "rec_store"})
    )
    precise = analyze_source(source)
    degraded = analyze_source(source, options=AnalyzerOptions(faults=plan))
    for var in ALL_VARS:
        p = precise.points_to_names("main", var)
        d = degraded.points_to_names("main", var)
        assert p <= d, f"{var}: precise {p} not within degraded {d}\n{source}"
