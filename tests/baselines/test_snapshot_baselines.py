"""The committed baseline snapshots must match a fresh analysis.

CI's ``regression-gate`` job diffs fresh snapshots of three benchmarks
against ``tests/baselines/snapshots/*.json``; this test runs the same
comparison in-process, so a change that moves a gated digest fails the
ordinary test suite *before* it reaches the CI gate — with the semantic
differ's attribution in the failure message.

If the change is an intended precision improvement, regenerate the
baselines (and review the diff!)::

    for n in allroots grep diff; do
      python -m repro snapshot benchmarks/programs/$n.c \\
        --name $n -o tests/baselines/snapshots/$n.json
    done
"""

import json
import os

import pytest

from repro.bench.harness import analyze_benchmark
from repro.diagnostics.diff import diff_snapshots
from repro.diagnostics.snapshot import SNAPSHOT_FORMAT, build_snapshot
from repro.memory.pointsto import reset_interning

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "snapshots")
GATED = ("allroots", "grep", "diff")


def load_baseline(name):
    with open(os.path.join(BASELINE_DIR, f"{name}.json")) as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", GATED)
def test_fresh_snapshot_matches_committed_baseline(name):
    baseline = load_baseline(name)
    assert baseline["format"] == SNAPSHOT_FORMAT
    reset_interning()
    fresh = build_snapshot(analyze_benchmark(name), program_name=name)
    report = diff_snapshots(baseline, fresh)
    # precision must not move; perf/mem records are host noise here
    drift = report.classes() & {"precision-loss", "precision-gain", "shape-change"}
    assert not drift, (
        f"{name}: gated digest moved — intended? regenerate the baseline "
        f"(see module docstring).\n" + "\n".join(report.summary_lines())
    )
    assert fresh["digest"]["program"] == baseline["digest"]["program"]


@pytest.mark.parametrize("name", GATED)
def test_baselines_carry_the_solution(name):
    # fact-level attribution in CI diffs requires the solution section
    baseline = load_baseline(name)
    assert "solution" in baseline
    assert baseline["precision"]["totals"]["total_ptfs"] > 0
