"""Baseline analyses: Andersen, Steensgaard, invocation graphs."""

import pytest

from repro import analyze_source, load_program
from repro.baselines import (
    andersen_analyze,
    build_invocation_graph,
    steensgaard_analyze,
    syntactic_call_graph,
)

ID_PROGRAM = """
int a, b;
int *id(int *p) { return p; }
int main(void) {
    int *pa = id(&a);
    int *pb = id(&b);
    return 0;
}
"""


class TestAndersen:
    def test_basic_address_of(self):
        prog = load_program("int a; int main(void){ int *p = &a; return 0; }", "t.c")
        res = andersen_analyze(prog)
        assert res.points_to_names("main", "p") == {"a"}

    def test_context_insensitivity_smears(self):
        """The motivating imprecision: Andersen merges all call sites."""
        res = andersen_analyze(load_program(ID_PROGRAM, "t.c"))
        assert res.points_to_names("main", "pa") == {"a", "b"}
        assert res.points_to_names("main", "pb") == {"a", "b"}

    def test_wilson_lam_strictly_more_precise_here(self):
        wl = analyze_source(ID_PROGRAM)
        ai = andersen_analyze(load_program(ID_PROGRAM, "t.c"))
        assert wl.points_to_names("main", "pa") < ai.points_to_names("main", "pa")

    def test_flow_insensitivity_keeps_old_values(self):
        src = "int a, b; int main(void){ int *p = &a; p = &b; return 0; }"
        res = andersen_analyze(load_program(src, "t.c"))
        assert res.points_to_names("main", "p") == {"a", "b"}

    def test_soundness_superset_of_wilson_lam(self):
        """Andersen must over-approximate everything Wilson-Lam reports."""
        src = """
        #include <stdlib.h>
        int g1, g2;
        void store(int **s, int *v) { *s = v; }
        int main(void) {
            int *p, *q;
            store(&p, &g1);
            store(&q, &g2);
            int **h = malloc(sizeof(int *));
            *h = p;
            int *r = *h;
            return 0;
        }
        """
        wl = analyze_source(src)
        ai = andersen_analyze(load_program(src, "t.c"))
        for var in ("p", "q", "r"):
            assert wl.points_to_names("main", var) <= ai.points_to_names("main", var)

    def test_malloc_sites(self):
        src = """
        #include <stdlib.h>
        int main(void){ int *p = malloc(4); int *q = malloc(4); return 0; }
        """
        res = andersen_analyze(load_program(src, "t.c"))
        assert res.points_to_names("main", "p") != res.points_to_names("main", "q")

    def test_function_pointer_call(self):
        src = """
        int g;
        int *get(void){ return &g; }
        int main(void){ int *(*fp)(void) = get; int *p = fp(); return 0; }
        """
        res = andersen_analyze(load_program(src, "t.c"))
        assert res.points_to_names("main", "p") == {"g"}

    def test_converges(self):
        res = andersen_analyze(load_program(ID_PROGRAM, "t.c"))
        assert res.iterations < 50


class TestSteensgaard:
    def test_basic(self):
        prog = load_program("int a; int main(void){ int *p = &a; return 0; }", "t.c")
        res = steensgaard_analyze(prog)
        assert "a" in res.points_to_names("main", "p")

    def test_unification_coarser_than_andersen(self):
        src = """
        int a, b;
        int main(void){
            int *p = &a;
            int *q = &b;
            p = q;          /* unification merges pts(p) and pts(q) */
            return 0;
        }
        """
        st = steensgaard_analyze(load_program(src, "t.c"))
        assert st.points_to_names("main", "q") >= {"a", "b"}

    def test_alias_query(self):
        st = steensgaard_analyze(load_program(ID_PROGRAM, "t.c"))
        assert st.may_alias("main", "pa", "pb")

    def test_superset_of_andersen(self):
        src = """
        int a, b, c;
        int main(void){
            int *p = &a;
            int *q = &b;
            int *r = c ? p : q;
            return 0;
        }
        """
        st = steensgaard_analyze(load_program(src, "t.c"))
        ai = andersen_analyze(load_program(src, "t.c"))
        for var in ("p", "q", "r"):
            assert ai.points_to_names("main", var) <= st.points_to_names(
                "main", var
            ), var


class TestInvocationGraph:
    def test_linear_chain(self):
        src = """
        void c(void) { }
        void b(void) { c(); }
        void a(void) { b(); }
        int main(void) { a(); }
        """
        ig = build_invocation_graph(load_program(src, "t.c"))
        assert ig.nodes == 4
        assert ig.depth == 4

    def test_fanout_multiplies(self):
        src = """
        void leaf(void) { }
        void mid(void) { leaf(); leaf(); }
        int main(void) { mid(); mid(); }
        """
        ig = build_invocation_graph(load_program(src, "t.c"))
        # main + 2*mid + 4*leaf
        assert ig.nodes == 7

    def test_recursion_adds_approximate_node(self):
        src = """
        void r(int n) { if (n) r(n - 1); }
        int main(void) { r(3); }
        """
        ig = build_invocation_graph(load_program(src, "t.c"))
        assert ig.approximate_nodes >= 1
        assert not ig.truncated

    def test_exponential_blowup_truncates(self):
        """A 20-deep binary call tree has ~2^21 nodes: must hit the cap."""
        lines = ["void f0(void) { }"]
        for i in range(1, 21):
            lines.append(f"void f{i}(void) {{ f{i-1}(); f{i-1}(); }}")
        lines.append("int main(void) { f20(); }")
        prog = load_program("\n".join(lines), "t.c")
        ig = build_invocation_graph(prog, limit=100_000)
        assert ig.truncated
        assert ig.nodes >= 100_000

    def test_syntactic_call_graph(self):
        src = """
        void helper(void) { }
        int main(void) { helper(); }
        """
        cg = syntactic_call_graph(load_program(src, "t.c"))
        assert cg["main"] == {"helper"}

    def test_invocation_graph_vs_ptf_counts(self):
        """The §7 comparison in miniature: contexts multiply, PTFs do not."""
        src = """
        int g;
        void leaf(int *p) { g = *p; }
        void mid1(int *p) { leaf(p); leaf(p); }
        void mid2(int *p) { mid1(p); mid1(p); }
        int main(void) { int x; mid2(&x); mid2(&x); }
        """
        prog = load_program(src, "t.c")
        ig = build_invocation_graph(prog)
        wl = analyze_source(src)
        total_ptfs = sum(len(wl.ptfs_of(p)) for p in ("leaf", "mid1", "mid2", "main"))
        assert ig.nodes > total_ptfs
        assert total_ptfs == 4  # exactly one per procedure
