"""Parser driver: error handling, includes, multi-unit projects."""

import pytest

from repro import ParseError, load_program, load_project
from repro.frontend.parser import load_program_from_file, load_project_files, parse_c_source


class TestErrors:
    def test_syntax_error_raises_parse_error(self):
        with pytest.raises(ParseError):
            load_program("int main(void { return 0; }", "bad.c")

    def test_preprocessor_error_raises_parse_error(self):
        with pytest.raises(ParseError):
            load_program("#include <no_such.h>\nint main(void){return 0;}", "bad.c")

    def test_error_directive(self):
        with pytest.raises(ParseError, match="unsupported"):
            load_program("#error unsupported platform\n", "bad.c")


class TestLoadProgram:
    def test_counts_source_lines(self):
        prog = load_program("int x;\nint main(void)\n{ return 0; }\n", "t.c")
        assert prog.source_lines >= 3

    def test_defines_injected(self):
        prog = load_program(
            "#if MODE == 2\nint picked;\n#endif\nint main(void){return 0;}",
            "t.c",
            defines={"MODE": "2"},
        )
        assert "picked" in prog.globals

    def test_include_paths(self, tmp_path):
        (tmp_path / "mine.h").write_text("int from_header;\n")
        prog = load_program(
            '#include "mine.h"\nint main(void){return 0;}',
            "t.c",
            include_paths=[str(tmp_path)],
        )
        assert "from_header" in prog.globals


class TestFiles:
    def test_load_program_from_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text("int g; int main(void){ return 0; }\n")
        prog = load_program_from_file(str(path))
        assert "g" in prog.globals

    def test_file_local_includes_resolve(self, tmp_path):
        (tmp_path / "defs.h").write_text("#define ANSWER 42\n")
        (tmp_path / "prog.c").write_text(
            '#include "defs.h"\nint a[ANSWER]; int main(void){return 0;}\n'
        )
        prog = load_program_from_file(str(tmp_path / "prog.c"))
        assert "a" in prog.globals

    def test_load_project_files(self, tmp_path):
        (tmp_path / "a.c").write_text("int shared; void touch(void){shared=1;}\n")
        (tmp_path / "b.c").write_text(
            "extern int shared; void touch(void); int main(void){touch(); return shared;}\n"
        )
        prog = load_project_files([str(tmp_path / "a.c"), str(tmp_path / "b.c")])
        assert "main" in prog.procedures and "touch" in prog.procedures


class TestProjects:
    def test_extern_links_across_units(self):
        prog = load_project(
            [
                ("a.c", "int v;"),
                ("b.c", "extern int v; int main(void){ return v; }"),
            ]
        )
        # one global block for both declarations
        assert len([g for g in prog.globals if g == "v"]) == 1

    def test_procedures_merged(self):
        prog = load_project(
            [
                ("a.c", "void f(void){}"),
                ("b.c", "void g(void){}"),
                ("c.c", "void f(void); void g(void); int main(void){ f(); g(); return 0; }"),
            ]
        )
        assert set(prog.procedures) == {"f", "g", "main"}

    def test_struct_layout_consistent_across_units(self):
        header = "struct pt { int x; int *payload; };\n"
        prog = load_project(
            [
                ("a.c", header + "int datum; void fill(struct pt *p){ p->payload = &datum; }"),
                ("b.c", header + "void fill(struct pt *p); int main(void){ struct pt v; fill(&v); return 0; }"),
            ]
        )
        assert "fill" in prog.procedures


class TestParseCSource:
    def test_returns_ast(self):
        ast = parse_c_source("int x;", "t.c")
        assert ast.ext

    def test_line_coords_survive_preprocessing(self):
        ast = parse_c_source("#define A 1\n\n\nint late_decl = A;", "t.c")
        decl = ast.ext[0]
        assert decl.coord.line == 4
