"""TypeBuilder: pycparser types -> CType, constant expressions."""

import pytest

from repro.frontend import ctypes_model as tm
from repro.frontend.parser import parse_c_source
from repro.frontend.typebuild import ConstEvalError, TypeBuilder


def first_decl_type(src):
    ast = parse_c_source(src, "t.c")
    tb = TypeBuilder()
    for ext in ast.ext:
        if ext.__class__.__name__ == "Typedef":
            tb.add_typedef(ext.name, ext.type)
            continue
        return tb, tb.type_of(ext.type)
    raise AssertionError("no declaration found")


class TestBasicTypes:
    @pytest.mark.parametrize(
        "decl,expected",
        [
            ("int x;", tm.type_int),
            ("unsigned x;", tm.type_uint),
            ("unsigned int x;", tm.type_uint),
            ("char x;", tm.type_char),
            ("signed char x;", tm.type_schar),
            ("unsigned char x;", tm.type_uchar),
            ("short x;", tm.type_short),
            ("unsigned short x;", tm.type_ushort),
            ("long x;", tm.type_long),
            ("unsigned long x;", tm.type_ulong),
            ("long long x;", tm.type_longlong),
            ("float x;", tm.type_float),
            ("double x;", tm.type_double),
            ("long double x;", tm.type_longdouble),
        ],
    )
    def test_scalar(self, decl, expected):
        _, t = first_decl_type(decl)
        assert t == expected

    def test_pointer(self):
        _, t = first_decl_type("int *p;")
        assert isinstance(t, tm.CPointer) and t.pointee == tm.type_int

    def test_pointer_to_pointer(self):
        _, t = first_decl_type("char **pp;")
        assert t.pointee.pointee == tm.type_char

    def test_array(self):
        _, t = first_decl_type("double a[7];")
        assert isinstance(t, tm.CArray) and t.length == 7

    def test_array_of_pointers(self):
        _, t = first_decl_type("int *a[4];")
        assert isinstance(t, tm.CArray) and t.element.is_pointer

    def test_pointer_to_array(self):
        _, t = first_decl_type("int (*p)[4];")
        assert t.is_pointer and isinstance(t.pointee, tm.CArray)

    def test_function_pointer(self):
        _, t = first_decl_type("int (*fp)(int, char *);")
        assert t.is_pointer and isinstance(t.pointee, tm.CFunction)
        assert len(t.pointee.params) == 2

    def test_varargs_function(self):
        _, t = first_decl_type("int printf(const char *, ...);")
        assert isinstance(t, tm.CFunction) and t.varargs

    def test_void_param_list_empty(self):
        _, t = first_decl_type("int f(void);")
        assert t.params == ()


class TestTypedefs:
    def test_simple_typedef(self):
        src = "typedef unsigned int size_t; size_t n;"
        _, t = first_decl_type(src)
        assert t == tm.type_uint

    def test_typedef_of_pointer(self):
        src = "typedef char *string; string s;"
        _, t = first_decl_type(src)
        assert t.is_pointer and t.pointee == tm.type_char

    def test_typedef_of_struct(self):
        src = "typedef struct { int a; int b; } pair; pair p;"
        _, t = first_decl_type(src)
        assert isinstance(t, tm.CRecord) and t.size == 8


class TestRecords:
    def test_struct_by_tag(self):
        tb, t = first_decl_type("struct point { int x; int y; } p;")
        assert t.field("y").offset == 4
        assert tb.record_by_tag("point") is t

    def test_forward_then_complete(self):
        src = """
        struct node;
        struct node { struct node *next; int v; };
        struct node n;
        """
        ast = parse_c_source(src, "t.c")
        tb = TypeBuilder()
        types = [tb.type_of(ext.type) for ext in ast.ext]
        completed = tb.record_by_tag("node")
        assert completed.complete
        assert completed.field("next").ctype.is_pointer

    def test_refresh_resolves_stale_incomplete(self):
        src = """
        struct late;
        struct late { int a; int b; };
        struct late x;
        """
        ast = parse_c_source(src, "t.c")
        tb = TypeBuilder()
        stale = tb.type_of(ast.ext[0].type)
        tb.type_of(ast.ext[1].type)
        fresh = tb.refresh(stale)
        assert fresh.complete and fresh.size == 8

    def test_refresh_through_pointer(self):
        src = """
        struct late;
        struct late *p;
        struct late { int a; };
        """
        ast = parse_c_source(src, "t.c")
        tb = TypeBuilder()
        tb.type_of(ast.ext[0].type)
        ptr = tb.type_of(ast.ext[1].type)
        tb.type_of(ast.ext[2].type)
        fresh = tb.refresh(ptr)
        assert fresh.pointee.complete

    def test_union(self):
        _, t = first_decl_type("union u { int i; char c[8]; } x;")
        assert t.is_union and t.size == 8

    def test_anonymous_struct_distinct(self):
        src = "struct { int a; } x;"
        _, t = first_decl_type(src)
        assert t.complete and t.size == 4


class TestEnums:
    def test_enum_values_sequential(self):
        tb, t = first_decl_type("enum color { RED, GREEN, BLUE } c;")
        assert tb.enum_constants == {"RED": 0, "GREEN": 1, "BLUE": 2}

    def test_enum_explicit_values(self):
        tb, _ = first_decl_type("enum e { A = 5, B, C = 10 } x;")
        assert tb.enum_constants == {"A": 5, "B": 6, "C": 10}

    def test_enum_size(self):
        _, t = first_decl_type("enum e { A } x;")
        assert t.size == 4


class TestConstEval:
    def eval(self, expr, prelude=""):
        src = f"{prelude}\nint a[{expr}];"
        ast = parse_c_source(src, "t.c")
        tb = TypeBuilder()
        for ext in ast.ext:
            t = tb.type_of(ext.type)
        return t.length

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("3", 3),
            ("2 + 3", 5),
            ("2 * 3 + 1", 7),
            ("(1 << 4)", 16),
            ("0x10", 16),
            ("010", 8),
            ("15 / 4", 3),
            ("15 % 4", 3),
            ("7 & 3", 3),
            ("1 | 4", 5),
            ("5 ^ 1", 4),
            ("1 ? 9 : 2", 9),
            ("0 ? 9 : 2", 2),
            ("'A' - 'A' + 4", 4),
            ("-(-6)", 6),
            ("~0 + 9", 8),
            ("!0 + 1", 2),
            ("sizeof(int)", 4),
            ("sizeof(double)", 8),
            ("sizeof(char *)", 4),
        ],
    )
    def test_expressions(self, expr, expected):
        assert self.eval(expr) == expected

    def test_enum_constant_in_expression(self):
        assert self.eval("N + 1", prelude="enum { N = 7 };") == 8

    def test_sizeof_struct(self):
        assert self.eval(
            "sizeof(struct s)", prelude="struct s { int a; char c; };"
        ) == 8

    def test_negative_division_truncates_toward_zero(self):
        src = "int a[(-7) / 2 + 5];"
        ast = parse_c_source(src, "t.c")
        tb = TypeBuilder()
        t = tb.type_of(ast.ext[0].type)
        assert t.length == 2  # C truncation: -7/2 == -3

    def test_try_const_value_none_for_variables(self):
        ast = parse_c_source("int n; int f(void) { return n; }", "t.c")
        tb = TypeBuilder()
        fn = ast.ext[1]
        ret = fn.body.block_items[0].expr
        assert tb.try_const_value(ret) is None
