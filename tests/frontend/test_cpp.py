"""Tests for the mini C preprocessor."""

import pytest

from repro.frontend.cpp import (
    MacroDefinition,
    Preprocessor,
    PreprocessorError,
    detokenize,
    preprocess,
    strip_comments,
    splice_lines,
    tokenize,
)


def pp(text: str, **kw) -> str:
    import re

    out = preprocess(text, "test.c", **kw)
    # drop #line markers and collapse runs of spaces for easy comparison
    kept = [line for line in out.splitlines() if not line.startswith("#line")]
    return re.sub(r" +", " ", "\n".join(kept)).strip()


class TestTokenize:
    def test_identifiers_and_numbers(self):
        assert [t for t in tokenize("foo bar42 1e3") if t] == ["foo", "bar42", "1e3"]

    def test_strings_are_single_tokens(self):
        toks = [t for t in tokenize('x = "a b c";') if t]
        assert '"a b c"' in toks

    def test_char_constants(self):
        toks = [t for t in tokenize("c = 'x';") if t]
        assert "'x'" in toks

    def test_escaped_quote_in_string(self):
        toks = [t for t in tokenize(r'"a\"b"') if t]
        assert toks == [r'"a\"b"']

    def test_two_char_operators(self):
        toks = [t for t in tokenize("a->b ++c <<= d") if t]
        assert "->" in toks and "++" in toks and "<<=" in toks

    def test_hash_and_double_hash(self):
        toks = [t for t in tokenize("# x ## y") if t]
        assert "#" in toks and "##" in toks

    def test_detokenize_preserves_identifier_separation(self):
        toks = tokenize("int x")
        assert "int" in detokenize(toks) and "intx" not in detokenize(toks)


class TestComments:
    def test_block_comment_removed(self):
        assert "gone" not in strip_comments("a /* gone */ b")

    def test_line_comment_removed(self):
        assert "gone" not in strip_comments("a // gone\nb")

    def test_newlines_preserved_in_block_comment(self):
        out = strip_comments("a /* x\ny\nz */ b")
        assert out.count("\n") == 2

    def test_comment_markers_in_string_kept(self):
        out = strip_comments('s = "/* not a comment */";')
        assert "not a comment" in out

    def test_comment_in_char_literal(self):
        out = strip_comments("c = '/'; d = '*';")
        assert out == "c = '/'; d = '*';"

    def test_unterminated_block_comment(self):
        assert "tail" not in strip_comments("a /* tail")


class TestSplice:
    def test_basic_continuation(self):
        lines = splice_lines("a \\\nb\nc")
        assert lines[0] == (1, "a b")
        assert lines[1] == (3, "c")

    def test_multiple_continuations(self):
        lines = splice_lines("x\\\ny\\\nz")
        assert lines == [(1, "xyz")]


class TestObjectMacros:
    def test_simple_define(self):
        assert pp("#define N 10\nint a = N;") == "int a = 10;"

    def test_redefine(self):
        assert pp("#define N 1\n#define N 2\nint a = N;") == "int a = 2;"

    def test_undef(self):
        assert pp("#define N 1\n#undef N\nint a = N;") == "int a = N;"

    def test_chained_expansion(self):
        assert pp("#define A B\n#define B 42\nint a = A;") == "int a = 42;"

    def test_self_reference_does_not_loop(self):
        assert pp("#define X X\nint a = X;") == "int a = X;"

    def test_mutual_reference_stops(self):
        out = pp("#define A B\n#define B A\nint a = A;")
        assert out in ("int a = A;", "int a = B;")

    def test_empty_body(self):
        assert pp("#define EMPTY\nint a EMPTY = 1;") == "int a = 1;"

    def test_line_macro(self):
        out = pp("int a = __LINE__;")
        assert out == "int a = 1;"

    def test_file_macro(self):
        out = pp('char *f = __FILE__;')
        assert out == 'char *f = "test.c";'


class TestFunctionMacros:
    def test_basic_call(self):
        assert pp("#define SQ(x) ((x)*(x))\nint a = SQ(3);") == "int a = ((3)*(3));"

    def test_two_params(self):
        out = pp("#define ADD(a,b) (a+b)\nint x = ADD(1, 2);")
        assert out == "int x = (1+ 2);"

    def test_nested_call_arguments(self):
        out = pp("#define ID(x) x\nint a = ID(f(1, 2));")
        assert out == "int a = f(1, 2);"

    def test_name_without_parens_not_expanded(self):
        out = pp("#define F(x) x\nint (*g)(int) = F;")
        assert "F" in out

    def test_stringize(self):
        assert pp("#define S(x) #x\nchar *s = S(hi there);") == 'char *s = "hi there";'

    def test_stringize_escapes_quotes(self):
        out = pp('#define S(x) #x\nchar *s = S("q");')
        assert out == 'char *s = "\\"q\\"";'

    def test_token_paste(self):
        assert pp("#define CAT(a,b) a##b\nint xy = 1; int z = CAT(x, y);") == (
            "int xy = 1; int z = xy;"
        )

    def test_paste_builds_macro_name(self):
        out = pp("#define AB 9\n#define CAT(a,b) a##b\nint z = CAT(A, B);")
        assert out == "int z = 9;"

    def test_variadic(self):
        out = pp("#define P(fmt, ...) printf(fmt, __VA_ARGS__)\nP(\"%d\", 1);")
        assert out == 'printf("%d", 1);'

    def test_argument_expansion_before_substitution(self):
        out = pp("#define N 5\n#define ID(x) x\nint a = ID(N);")
        assert out == "int a = 5;"

    def test_zero_arg_macro(self):
        assert pp("#define F() 7\nint a = F();") == "int a = 7;"

    def test_unterminated_args_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define F(x) x\nint a = F(1;", "t.c")

    def test_recursive_function_macro_suppressed(self):
        out = pp("#define F(x) F(x)\nint a = F(1);")
        assert out == "int a = F(1);"


class TestConditionals:
    def test_ifdef_taken(self):
        assert pp("#define A\n#ifdef A\nint x;\n#endif") == "int x;"

    def test_ifdef_not_taken(self):
        assert pp("#ifdef A\nint x;\n#endif") == ""

    def test_ifndef(self):
        assert pp("#ifndef A\nint x;\n#endif") == "int x;"

    def test_else(self):
        assert pp("#ifdef A\nint x;\n#else\nint y;\n#endif") == "int y;"

    def test_elif_chain(self):
        src = "#define B 1\n#if defined(A)\nint a;\n#elif defined(B)\nint b;\n#else\nint c;\n#endif"
        assert pp(src) == "int b;"

    def test_nested_conditionals(self):
        src = "#define A\n#ifdef A\n#ifdef B\nint x;\n#else\nint y;\n#endif\n#endif"
        assert pp(src) == "int y;"

    def test_dead_region_skips_directives(self):
        src = "#ifdef NOPE\n#error should not fire\n#endif\nint x;"
        assert pp(src) == "int x;"

    def test_dead_region_tracks_nesting(self):
        src = "#ifdef NOPE\n#ifdef ALSO\n#endif\nint bad;\n#endif\nint x;"
        assert pp(src) == "int x;"

    def test_unterminated_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef A\nint x;", "t.c")

    def test_else_without_if_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#else\n", "t.c")

    def test_endif_without_if_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif\n", "t.c")

    def test_duplicate_else_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#if 1\n#else\n#else\n#endif\n", "t.c")


class TestIfExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1", True),
            ("0", False),
            ("1 + 1 == 2", True),
            ("3 * 4 != 12", False),
            ("(1 << 4) == 16", True),
            ("10 / 3 == 3", True),
            ("10 % 3 == 1", True),
            ("-5 < 0", True),
            ("!0", True),
            ("~0 == -1", True),
            ("1 && 0", False),
            ("1 || 0", True),
            ("1 ? 2 : 3", True),
            ("0 ? 2 : 0", False),
            ("0x10 == 16", True),
            ("010 == 8", True),
            ("'A' == 65", True),
            ("UNDEFINED_NAME == 0", True),
            ("5 > 4 && 4 > 3", True),
            ("2147483647 > 0", True),
        ],
    )
    def test_expression(self, expr, expected):
        out = pp(f"#if {expr}\nyes\n#else\nno\n#endif")
        assert out == ("yes" if expected else "no")

    def test_defined_with_parens(self):
        assert pp("#define A 1\n#if defined(A)\nyes\n#endif") == "yes"

    def test_defined_without_parens(self):
        assert pp("#define A 1\n#if defined A\nyes\n#endif") == "yes"

    def test_macro_in_condition(self):
        assert pp("#define N 10\n#if N > 5\nyes\n#endif") == "yes"

    def test_division_by_zero_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#if 1/0\n#endif\n", "t.c")


class TestIncludes:
    def test_builtin_header(self):
        out = preprocess("#include <stddef.h>\n", "t.c")
        assert "size_t" in out

    def test_unknown_include_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess('#include <no_such_header.h>\n', "t.c")

    def test_local_include(self, tmp_path):
        (tmp_path / "local.h").write_text("#define FROM_LOCAL 3\n")
        out = preprocess(
            '#include "local.h"\nint a = FROM_LOCAL;\n',
            "t.c",
            include_paths=[str(tmp_path)],
        )
        assert "int a = 3;" in out

    def test_include_guards_idempotent(self):
        out = preprocess("#include <stdio.h>\n#include <stdio.h>\n", "t.c")
        assert out.count("typedef struct _FILE") == 1

    def test_nested_includes(self):
        out = preprocess("#include <stdio.h>\n", "t.c")
        assert "size_t" in out  # stdio includes stddef

    def test_error_directive(self):
        with pytest.raises(PreprocessorError, match="boom"):
            preprocess("#error boom\n", "t.c")

    def test_pragma_ignored(self):
        assert pp("#pragma whatever\nint x;") == "int x;"

    def test_unknown_directive_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#frobnicate\n", "t.c")

    def test_predefines(self):
        p = Preprocessor(defines={"MODE": "2"})
        out = p.preprocess("#if MODE == 2\nint yes;\n#endif\n", "t.c")
        assert "int yes;" in out


class TestLineMarkers:
    def test_line_markers_present(self):
        out = preprocess("int x;\n", "abc.c")
        assert '#line 1 "abc.c"' in out

    def test_line_marker_after_include(self):
        out = preprocess("#include <stddef.h>\nint x;\n", "abc.c")
        lines = out.splitlines()
        idx = lines.index("int x;")
        marker = [l for l in lines[:idx] if l.startswith("#line") and "abc.c" in l]
        assert marker, "expected a #line marker returning to abc.c"
