"""Tests for the C type model and ILP32 layout engine."""

import pytest

from repro.frontend import ctypes_model as tm


class TestScalarSizes:
    @pytest.mark.parametrize(
        "ctype,size,align",
        [
            (tm.type_char, 1, 1),
            (tm.type_uchar, 1, 1),
            (tm.type_short, 2, 2),
            (tm.type_int, 4, 4),
            (tm.type_uint, 4, 4),
            (tm.type_long, 4, 4),
            (tm.type_longlong, 8, 4),
            (tm.type_float, 4, 4),
            (tm.type_double, 8, 4),
            (tm.type_longdouble, 8, 4),
            (tm.type_bool, 1, 1),
        ],
    )
    def test_size_align(self, ctype, size, align):
        assert ctype.size == size
        assert ctype.align == align

    def test_pointer_size(self):
        assert tm.type_voidptr.size == tm.POINTER_SIZE == 4
        assert tm.CPointer(tm.type_double).size == 4

    def test_enum_is_int_sized(self):
        assert tm.CEnum("color").size == 4

    def test_void_has_no_size(self):
        with pytest.raises(tm.TypeLayoutError):
            tm.type_void.size

    def test_function_has_no_size(self):
        with pytest.raises(tm.TypeLayoutError):
            tm.CFunction(tm.type_int).size


class TestArrays:
    def test_array_size(self):
        assert tm.CArray(tm.type_int, 10).size == 40

    def test_array_stride_is_element_size(self):
        assert tm.CArray(tm.type_double, 3).stride == 8

    def test_incomplete_array(self):
        arr = tm.CArray(tm.type_int, None)
        assert not arr.is_complete
        with pytest.raises(tm.TypeLayoutError):
            arr.size

    def test_nested_array(self):
        assert tm.CArray(tm.CArray(tm.type_int, 4), 3).size == 48

    def test_array_align_is_element_align(self):
        assert tm.CArray(tm.type_char, 100).align == 1


class TestStructLayout:
    def test_padding_between_fields(self):
        s = tm.CRecord.build("s", [("c", tm.type_char, None), ("i", tm.type_int, None)])
        assert s.field("c").offset == 0
        assert s.field("i").offset == 4
        assert s.size == 8

    def test_tail_padding(self):
        s = tm.CRecord.build("s", [("i", tm.type_int, None), ("c", tm.type_char, None)])
        assert s.size == 8  # padded to int alignment

    def test_no_padding_when_aligned(self):
        s = tm.CRecord.build("s", [("a", tm.type_int, None), ("b", tm.type_int, None)])
        assert s.size == 8
        assert s.field("b").offset == 4

    def test_char_only_struct(self):
        s = tm.CRecord.build("s", [("a", tm.type_char, None), ("b", tm.type_char, None)])
        assert s.size == 2 and s.align == 1

    def test_double_aligns_to_four(self):
        s = tm.CRecord.build("s", [("c", tm.type_char, None), ("d", tm.type_double, None)])
        assert s.field("d").offset == 4  # i386-style 4-byte double alignment
        assert s.size == 12

    def test_nested_struct_field(self):
        inner = tm.CRecord.build("in", [("x", tm.type_int, None), ("y", tm.type_int, None)])
        outer = tm.CRecord.build(
            "out", [("a", tm.type_char, None), ("inner", inner, None)]
        )
        assert outer.field("inner").offset == 4
        assert outer.size == 12

    def test_array_field(self):
        s = tm.CRecord.build(
            "s", [("tag", tm.type_int, None), ("buf", tm.CArray(tm.type_char, 10), None)]
        )
        assert s.field("buf").offset == 4
        assert s.size == 16  # 4 + 10 padded to 4

    def test_missing_field_raises(self):
        s = tm.CRecord.build("s", [("x", tm.type_int, None)])
        with pytest.raises(tm.TypeLayoutError):
            s.field("nope")

    def test_incomplete_struct_has_no_size(self):
        s = tm.CRecord(tag="fwd", complete=False)
        with pytest.raises(tm.TypeLayoutError):
            s.size

    def test_anonymous_member_lookup(self):
        inner = tm.CRecord.build("in", [("x", tm.type_int, None)])
        outer = tm.CRecord.build("out", [("pad", tm.type_int, None), (None, inner, None)])
        assert outer.field("x").offset == 4


class TestUnionLayout:
    def test_union_size_is_max(self):
        u = tm.CRecord.build(
            "u",
            [("c", tm.type_char, None), ("d", tm.type_double, None)],
            is_union=True,
        )
        assert u.size == 8

    def test_union_offsets_all_zero(self):
        u = tm.CRecord.build(
            "u",
            [("a", tm.type_int, None), ("b", tm.CPointer(tm.type_int), None)],
            is_union=True,
        )
        assert u.field("a").offset == 0
        assert u.field("b").offset == 0

    def test_union_padded_to_align(self):
        u = tm.CRecord.build(
            "u",
            [("c", tm.CArray(tm.type_char, 5), None), ("i", tm.type_int, None)],
            is_union=True,
        )
        assert u.size == 8


class TestBitfields:
    def test_bitfields_pack_into_unit(self):
        s = tm.CRecord.build(
            "s",
            [("a", tm.type_int, 3), ("b", tm.type_int, 5), ("tail", tm.type_int, None)],
        )
        assert s.field("a").offset == 0
        assert s.field("b").offset == 0
        assert s.field("b").bit_offset == 3
        assert s.field("tail").offset == 4

    def test_overflowing_bitfield_starts_new_unit(self):
        s = tm.CRecord.build(
            "s", [("a", tm.type_int, 30), ("b", tm.type_int, 10)]
        )
        assert s.field("b").offset == 4

    def test_zero_width_forces_alignment(self):
        s = tm.CRecord.build(
            "s",
            [("a", tm.type_int, 3), (None, tm.type_int, 0), ("b", tm.type_int, 3)],
        )
        assert s.field("b").offset == 4


class TestPredicates:
    def test_may_hold_pointer(self):
        assert tm.type_voidptr.may_hold_pointer()
        assert tm.type_int.may_hold_pointer()  # casts are common in C
        assert not tm.type_char.may_hold_pointer()
        assert not tm.type_double.may_hold_pointer()

    def test_record_may_hold_pointer(self):
        s = tm.CRecord.build("s", [("p", tm.type_voidptr, None)])
        assert s.may_hold_pointer()
        t = tm.CRecord.build("t", [("c", tm.type_char, None)])
        assert not t.may_hold_pointer()

    def test_is_scalar(self):
        assert tm.type_int.is_scalar
        assert tm.type_voidptr.is_scalar
        assert not tm.CArray(tm.type_int, 2).is_scalar

    def test_str_representations(self):
        assert str(tm.type_uint) == "unsigned int"
        assert str(tm.CPointer(tm.type_char)) == "char*"
        assert "struct" in str(tm.CRecord(tag="s"))
        assert "[3]" in str(tm.CArray(tm.type_int, 3))
