"""Lowering details: initializers, statics, strings, odd C constructs."""

import pytest

from repro import analyze_source, AnalyzerOptions, load_program


class TestInitializers:
    def test_local_pointer_init(self):
        r = analyze_source("int a; int main(void){ int *p = &a; return 0; }")
        assert r.points_to_names("main", "p") == {"a"}

    def test_struct_init_list(self):
        r = analyze_source(
            """
            struct S { int *p; int n; };
            int g;
            int main(void){
                struct S s = { &g, 3 };
                int *q = s.p;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_designated_initializer(self):
        r = analyze_source(
            """
            struct S { int n; int *p; };
            int g;
            int main(void){
                struct S s = { .p = &g };
                int *q = s.p;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_array_initializer(self):
        r = analyze_source(
            """
            int a, b;
            int main(void){
                int *table[2] = { &a, &b };
                int *q = table[0];
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"a", "b"}

    def test_nested_init_list(self):
        r = analyze_source(
            """
            struct In { int *p; };
            struct Out { struct In in; int n; };
            int g;
            int main(void){
                struct Out o = { { &g }, 1 };
                int *q = o.in.p;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_global_initializer(self):
        r = analyze_source(
            """
            int g;
            int *gp = &g;
            int main(void){ int *q = gp; return 0; }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_global_struct_initializer(self):
        r = analyze_source(
            """
            int g;
            struct S { int *p; } s = { &g };
            int main(void){ int *q = s.p; return 0; }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_global_fnptr_table_initializer(self):
        r = analyze_source(
            """
            int one(void) { return 1; }
            int two(void) { return 2; }
            int (*table[])(void) = { one, two };
            int main(void){ int v = table[0](); return v; }
            """
        )
        assert r.call_graph()["main"] >= {"one", "two"}

    def test_string_literal_pointer(self):
        r = analyze_source(
            'int main(void){ char *s = "hello"; return s[0]; }'
        )
        names = r.points_to_names("main", "s")
        assert any("hello" in n for n in names)

    def test_distinct_string_literals_distinct_blocks(self):
        r = analyze_source(
            """
            int main(void){
                char *a = "first";
                char *b = "second";
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "a") != r.points_to_names("main", "b")


class TestStatics:
    def test_static_local_behaves_like_global(self):
        r = analyze_source(
            """
            int g;
            int *remember(int *p) {
                static int *saved;
                if (p) saved = p;
                return saved;
            }
            int main(void){
                remember(&g);
                int *q = remember(0);
                return 0;
            }
            """
        )
        assert "g" in r.points_to_names("main", "q")

    def test_static_locals_in_different_procs_distinct(self):
        r = analyze_source(
            """
            int a, b;
            int *fa(void) { static int *s; s = &a; return s; }
            int *fb(void) { static int *s; s = &b; return s; }
            int main(void){
                int *qa = fa();
                int *qb = fb();
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "qa") == {"a"}
        assert r.points_to_names("main", "qb") == {"b"}

    def test_static_global(self):
        r = analyze_source(
            """
            static int hidden;
            int main(void){ int *p = &hidden; return 0; }
            """
        )
        assert r.points_to_names("main", "p") == {"hidden"}


class TestOddConstructs:
    def test_comma_in_for(self):
        r = analyze_source(
            """
            int a, b;
            int main(void){
                int *p, *q;
                int i;
                for (i = 0, p = &a, q = &b; i < 3; i++) ;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "p") == {"a"}
        assert r.points_to_names("main", "q") == {"b"}

    def test_nested_ternary(self):
        r = analyze_source(
            """
            int a, b, c, s1, s2;
            int main(void){
                int *p = s1 ? &a : (s2 ? &b : &c);
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "p") == {"a", "b", "c"}

    def test_assignment_used_as_condition(self):
        r = analyze_source(
            """
            #include <stdlib.h>
            struct n { struct n *next; };
            int main(void){
                struct n *head = malloc(sizeof(struct n));
                head->next = 0;
                struct n *p;
                while ((p = head) != 0) { head = p->next; }
                return 0;
            }
            """
        )
        assert any("heap" in n for n in r.points_to_names("main", "p"))

    def test_address_of_dereference_cancels(self):
        r = analyze_source(
            """
            int g;
            int main(void){
                int *p = &g;
                int *q = &*p;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_array_decay_in_call(self):
        r = analyze_source(
            """
            char buf[32];
            char *first(char *s) { return s; }
            int main(void){ char *p = first(buf); return 0; }
            """
        )
        assert any("buf" in n for n in r.points_to_names("main", "p"))

    def test_subscript_commutes(self):
        """``i[a]`` is valid C and means ``a[i]``."""
        r = analyze_source(
            """
            int arr[4];
            int main(void){
                int i = 2;
                int *p = &i[arr];
                return 0;
            }
            """
        )
        names = r.points_to_names("main", "p")
        assert any("arr" in n for n in names)

    def test_void_cast_expression_statement(self):
        r = analyze_source(
            """
            int g;
            int main(void){
                int *p = &g;
                (void)p;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "p") == {"g"}

    def test_sizeof_does_not_evaluate(self):
        r = analyze_source(
            """
            int a, b;
            int main(void){
                int *p = &a;
                int n = (int)sizeof(p = &b);   /* unevaluated in C */
                return n;
            }
            """
        )
        # our lowering treats sizeof's operand as unevaluated for values;
        # conservatively p may keep &a
        assert "a" in r.points_to_names("main", "p")

    def test_setjmp_longjmp_program(self):
        r = analyze_source(
            """
            #include <setjmp.h>
            int g;
            jmp_buf env;
            int *p;
            int main(void){
                if (setjmp(env) == 0) p = &g;
                return p != 0;
            }
            """
        )
        assert r.points_to_names("main", "p") == {"g"}

    def test_varargs_pointer_reachable(self):
        r = analyze_source(
            """
            #include <stdarg.h>
            int g;
            int *last;
            void grab(int count, ...) {
                va_list ap;
                va_start(ap, count);
                last = va_arg(ap, int *);
                va_end(ap);
            }
            int main(void){ grab(1, &g); return 0; }
            """
        )
        assert "g" in r.points_to_names("main", "last")

    def test_knr_function_definition(self):
        r = analyze_source(
            """
            int g;
            int *pick(p) int *p; { return p; }
            int main(void){ int *q = pick(&g); return 0; }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_enum_in_switch(self):
        r = analyze_source(
            """
            enum mode { A, B };
            int a, b;
            int main(void){
                enum mode m = A;
                int *p = 0;
                switch (m) {
                case A: p = &a; break;
                case B: p = &b; break;
                }
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "p") == {"a", "b"}
