"""Edge-case C constructs through the full pipeline."""

import pytest

from repro import analyze_source, AnalyzerOptions


class TestDeclarations:
    def test_const_volatile_qualifiers(self):
        r = analyze_source(
            """
            int g;
            int main(void){
                const int *p = &g;
                volatile int *q = &g;
                int *const r = &g;
                return 0;
            }
            """
        )
        for var in ("p", "q", "r"):
            assert r.points_to_names("main", var) == {"g"}

    def test_array_parameter_with_size(self):
        r = analyze_source(
            """
            int g;
            int *first(int *arr[8]) { return arr[0]; }
            int main(void){
                int *table[8];
                table[0] = &g;
                int *q = first(table);
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_multidimensional_arrays(self):
        r = analyze_source(
            """
            int *grid[3][4];
            int g;
            int main(void){
                int i = 1, j = 2;
                grid[i][j] = &g;
                int *q = grid[0][0];
                return 0;
            }
            """
        )
        assert "g" in r.points_to_names("main", "q")

    def test_anonymous_union_in_struct(self):
        r = analyze_source(
            """
            struct S {
                int tag;
                union { int *ip; char *cp; };
            } s;
            int g;
            int main(void){
                s.ip = &g;
                char *q = s.cp;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_bitfields_dont_break_layout(self):
        r = analyze_source(
            """
            struct F {
                unsigned a : 3;
                unsigned b : 5;
                int *p;
            } f;
            int g;
            int main(void){
                f.p = &g;
                int *q = f.p;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_self_referential_struct(self):
        r = analyze_source(
            """
            struct node { struct node *self; };
            int main(void){
                struct node n;
                n.self = &n;
                struct node *q = n.self;
                return 0;
            }
            """
        )
        assert "n" in r.points_to_names("main", "q")

    def test_typedef_chains(self):
        r = analyze_source(
            """
            typedef int base;
            typedef base *bptr;
            typedef bptr *bpptr;
            base g;
            int main(void){
                bptr p = &g;
                bpptr pp = &p;
                base *q = *pp;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "q") == {"g"}

    def test_enum_values_are_not_pointers(self):
        r = analyze_source(
            """
            enum tag { ALPHA = 4, BETA = 8 };
            int main(void){
                int v = ALPHA + BETA;
                return v;
            }
            """
        )
        assert r.points_to_names("main", "v") == set()


class TestPointerTricks:
    def test_offsetof_pattern(self):
        r = analyze_source(
            """
            #include <stddef.h>
            struct S { int a; int b; };
            int main(void){
                unsigned off = offsetof(struct S, b);
                return (int)off;
            }
            """
        )
        assert r.stats().procedures == 1

    def test_container_of_pattern(self):
        """Recover the enclosing struct from a member pointer — the
        negative-offset case (Figure 7) in its idiomatic form."""
        r = analyze_source(
            """
            struct outer { int head; int member; };
            struct outer o;
            int main(void){
                int *mp = &o.member;
                struct outer *op = (struct outer *)((char *)mp - 4);
                int *q = &op->member;
                return 0;
            }
            """
        )
        names = r.points_to_names("main", "op")
        assert any("o" == n for n in names) or names  # conservative ok
        # q must reach o (at some offset)
        assert any("o" == n for n in r.points_to_names("main", "q"))

    def test_pointer_comparison_no_flow(self):
        r = analyze_source(
            """
            int a, b;
            int main(void){
                int *p = &a;
                int *q = &b;
                int same = (p == q);
                return same;
            }
            """
        )
        assert r.points_to_names("main", "same") == set()

    def test_pointer_difference_no_flow(self):
        r = analyze_source(
            """
            int arr[8];
            int main(void){
                int *p = &arr[1];
                int *q = &arr[5];
                int d = (int)(q - p);
                return d;
            }
            """
        )
        assert r.points_to_names("main", "d") == set()

    def test_void_pointer_round_trip(self):
        r = analyze_source(
            """
            int g;
            int main(void){
                void *v = &g;
                int *p = (int *)v;
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "p") == {"g"}

    def test_negative_array_index(self):
        r = analyze_source(
            """
            int arr[8];
            int main(void){
                int *mid = &arr[4];
                int *back = &mid[-2];
                return 0;
            }
            """
        )
        names = r.points_to_names("main", "back")
        assert any("arr" in n for n in names)

    def test_address_of_array_whole(self):
        r = analyze_source(
            """
            int arr[8];
            int main(void){
                int (*pa)[8] = &arr;
                int *p = *pa;
                return 0;
            }
            """
        )
        assert any("arr" in n for n in r.points_to_names("main", "p"))


class TestControlFlowEdges:
    def test_deeply_nested_ifs(self):
        depth = 12
        body = "int *p = &a;"
        for i in range(depth):
            body = f"if (c{i % 3}) {{ {body} }} else {{ p = &b; }}"
        src = f"""
        int a, b, c0, c1, c2;
        int main(void){{
            int *p = 0;
            {body}
            return 0;
        }}
        """
        r = analyze_source(src)
        assert r.points_to_names("main", "p") >= {"b"}

    def test_many_sequential_branches(self):
        parts = []
        for i in range(30):
            parts.append(f"if (c) p = &a;")
        src = f"""
        int a, c;
        int main(void){{
            int *p = 0;
            {' '.join(parts)}
            return 0;
        }}
        """
        r = analyze_source(src)
        assert r.points_to_names("main", "p") == {"a"}

    def test_switch_in_loop(self):
        r = analyze_source(
            """
            int a, b, c, n;
            int main(void){
                int *p = 0;
                int i;
                for (i = 0; i < n; i++) {
                    switch (i % 3) {
                    case 0: p = &a; break;
                    case 1: p = &b; break;
                    default: p = &c;
                    }
                }
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "p") == {"a", "b", "c"}

    def test_labels_and_computed_flow(self):
        r = analyze_source(
            """
            int a, b, c;
            int main(void){
                int *p = &a;
                if (c) goto middle;
                p = &b;
            middle:
                if (c) goto done;
                p = &a;
            done:
                return 0;
            }
            """
        )
        assert r.points_to_names("main", "p") == {"a", "b"}
