"""Property-based tests for the ILP32 struct layout engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import ctypes_model as tm

SCALARS = st.sampled_from(
    [
        tm.type_char,
        tm.type_short,
        tm.type_int,
        tm.type_long,
        tm.type_longlong,
        tm.type_float,
        tm.type_double,
        tm.type_voidptr,
    ]
)


@st.composite
def member_lists(draw):
    n = draw(st.integers(1, 8))
    return [(f"m{i}", draw(SCALARS), None) for i in range(n)]


@given(member_lists())
@settings(max_examples=200, deadline=None)
def test_offsets_are_aligned(members):
    rec = tm.CRecord.build("s", members)
    for f in rec.fields:
        assert f.offset % f.ctype.align == 0, f


@given(member_lists())
@settings(max_examples=200, deadline=None)
def test_offsets_monotone_and_disjoint(members):
    rec = tm.CRecord.build("s", members)
    prev_end = 0
    for f in rec.fields:
        assert f.offset >= prev_end
        prev_end = f.offset + f.ctype.size
    assert rec.size >= prev_end


@given(member_lists())
@settings(max_examples=200, deadline=None)
def test_size_is_multiple_of_align(members):
    rec = tm.CRecord.build("s", members)
    assert rec.size % rec.align == 0
    assert rec.align == max(f.ctype.align for f in rec.fields)


@given(member_lists())
@settings(max_examples=200, deadline=None)
def test_size_bounded_by_padding_worst_case(members):
    rec = tm.CRecord.build("s", members)
    payload = sum(f.ctype.size for f in rec.fields)
    assert payload <= rec.size <= payload + 4 * len(rec.fields)


@given(member_lists())
@settings(max_examples=100, deadline=None)
def test_union_layout(members):
    rec = tm.CRecord.build("u", members, is_union=True)
    assert all(f.offset == 0 for f in rec.fields)
    assert rec.size >= max(f.ctype.size for f in rec.fields)


@given(member_lists(), member_lists())
@settings(max_examples=100, deadline=None)
def test_nesting_preserves_member_alignment(inner_members, outer_members):
    inner = tm.CRecord.build("in", inner_members)
    outer = tm.CRecord.build("out", outer_members + [("nested", inner, None)])
    nested = outer.field("nested")
    assert nested.offset % inner.align == 0
    for f in inner.fields:
        absolute = nested.offset + f.offset
        assert absolute % f.ctype.align == 0
