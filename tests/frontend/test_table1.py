"""Table 1: location sets computed for the paper's seven expression forms.

| Expression    | Location set          |
|---------------|-----------------------|
| scalar        | (scalar, 0, 0)        |
| struct.F      | (struct, f, 0)        |
| array         | (array, 0, 0)         |
| array[i]      | (array, 0, s)         |
| array[i].F    | (array, f, s)         |
| struct.F[i]   | (struct, f%s, s)      |
| *(&p + X)     | (p, 0, 1)             |
"""

from repro import analyze_source


def exit_targets(result, proc, var):
    return result.points_to(proc, var)


def single_target(result, var):
    locs = exit_targets(result, "main", var)
    assert len(locs) == 1, f"{var}: expected one target, got {locs}"
    return next(iter(locs))


def test_scalar_row():
    r = analyze_source(
        """
        int scalar;
        int main(void) { int *p = &scalar; return 0; }
        """
    )
    t = single_target(r, "p")
    assert (t.offset, t.stride) == (0, 0)
    assert r.display_name(t.base) == "scalar"


def test_struct_field_row():
    r = analyze_source(
        """
        struct S { int a; int f; } s;
        int main(void) { int *p = &s.f; return 0; }
        """
    )
    t = single_target(r, "p")
    assert (t.offset, t.stride) == (4, 0)


def test_whole_array_row():
    r = analyze_source(
        """
        int array[10];
        int main(void) { int *p = array; return 0; }
        """
    )
    t = single_target(r, "p")
    assert (t.offset, t.stride) == (0, 0)


def test_array_element_row():
    r = analyze_source(
        """
        int array[10];
        int main(void) { int i = 3; int *p = &array[i]; return 0; }
        """
    )
    t = single_target(r, "p")
    assert (t.offset, t.stride) == (0, 4)


def test_array_of_struct_field_row():
    r = analyze_source(
        """
        struct S { int a; int f; };
        struct S array[8];
        int main(void) { int i = 2; int *p = &array[i].f; return 0; }
        """
    )
    t = single_target(r, "p")
    # field f at offset 4 within an 8-byte element
    assert (t.offset, t.stride) == (4, 8)


def test_array_nested_in_struct_row():
    """struct.F[i] -> (struct, f % s, s): the nested array is treated as
    overlapping the entire structure (out-of-bounds indices are legal C
    in practice, §3.1)."""
    r = analyze_source(
        """
        struct S { int a; int f[4]; int z; } s;
        int main(void) { int i = 1; int *p = &s.f[i]; return 0; }
        """
    )
    t = single_target(r, "p")
    # offset of f is 4, element size 4 -> offset 4 % 4 == 0, stride 4
    assert (t.offset, t.stride) == (0, 4)


def test_unknown_arithmetic_row():
    """*(&p + X) with X unknown -> stride-1 whole-block set (§3.1)."""
    r = analyze_source(
        """
        int x;
        int unknown(void);
        struct P { int *p; int *q; } s;
        int main(void) {
            s.p = &x;
            int **w = (int **)((char *)&s + unknown());
            int *r = *w;
            return 0;
        }
        """
    )
    targets = exit_targets(r, "main", "w")
    assert targets, "w should point into s"
    t = next(t for t in targets if "s" in r.display_name(t.base))
    assert t.stride == 1 and t.offset == 0

    # reading through the blurred pointer still finds &x
    assert "x" in r.points_to_names("main", "r")


def test_pointer_increment_gets_element_stride():
    r = analyze_source(
        """
        int array[10];
        int main(void) { int *p = array; p++; return 0; }
        """
    )
    targets = exit_targets(r, "main", "p")
    strides = {t.stride for t in targets}
    assert 4 in strides  # simple increments fold into strides (§3.1)


def test_constant_pointer_offset_stride():
    r = analyze_source(
        """
        int array[10];
        int main(void) { int *p = array + 3; return 0; }
        """
    )
    targets = exit_targets(r, "main", "p")
    assert any(t.stride == 12 for t in targets)  # 3 * sizeof(int)
