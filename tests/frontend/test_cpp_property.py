"""Property-based tests for the preprocessor's token layer."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.cpp import Preprocessor, detokenize, strip_comments, tokenize

IDENT = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True)
NUMBER = st.from_regex(r"[1-9][0-9]{0,6}", fullmatch=True)
PUNCT = st.sampled_from(["+", "-", "*", "/", "==", "&&", "->", ";", ",", "(", ")"])
STRING = st.from_regex(r'"[a-z ]{0,10}"', fullmatch=True)
TOKEN = st.one_of(IDENT, NUMBER, PUNCT, STRING)


@given(st.lists(TOKEN, max_size=30))
@settings(max_examples=200, deadline=None)
def test_tokenize_detokenize_roundtrip(tokens):
    """tokenize(detokenize(tokens)) preserves the solid tokens."""
    text = " ".join(tokens)
    once = [t for t in tokenize(text) if t]
    again = [t for t in tokenize(detokenize(tokenize(text))) if t]
    assert once == again


@given(st.lists(TOKEN, max_size=20))
@settings(max_examples=100, deadline=None)
def test_preprocess_idempotent_without_directives(tokens):
    """A directive-free line survives preprocessing up to whitespace."""
    line = " ".join(tokens)
    pp = Preprocessor()
    out = pp.preprocess(line + "\n", "t.c")
    body = [l for l in out.splitlines() if not l.startswith("#line")]
    normalized = re.sub(r"\s+", " ", " ".join(body)).strip()
    expected = re.sub(r"\s+", " ", detokenize(tokenize(line))).strip()
    assert normalized == expected


@given(st.text(alphabet="abc/*\n \"'", max_size=60))
@settings(max_examples=300, deadline=None)
def test_strip_comments_never_crashes_and_preserves_lines(text):
    out = strip_comments(text)
    # newlines outside comments/strings must be preserved so that line
    # numbers stay stable; comment newlines are re-emitted
    assert out.count("\n") <= text.count("\n")


@given(IDENT, st.lists(TOKEN, min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_object_macro_substitutes_exactly(name, body_tokens):
    body = " ".join(body_tokens)
    pp = Preprocessor()
    src = f"#define {name} {body}\n{name}\n"
    out = pp.preprocess(src, "t.c")
    lines = [l for l in out.splitlines() if l and not l.startswith("#line")]
    got = re.sub(r"\s+", " ", " ".join(lines)).strip()
    want = re.sub(r"\s+", " ", detokenize(tokenize(body))).strip()
    # self-referential bodies keep the macro name unexpanded
    if name not in body_tokens:
        assert got == want


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=100, deadline=None)
def test_if_arithmetic_matches_python(a, b):
    pp = Preprocessor()
    expr = f"({a}) + ({b}) * 2"
    out = pp.preprocess(f"#if {expr} == {a + b * 2}\nyes\n#endif\n", "t.c")
    assert "yes" in out
